// Not a gtest suite: the kill -9 half of the durability story, driven by
// the CI crash-recovery loop (.github/workflows/ci.yml).
//
//   crash_writer --dir DIR --mode svc|dist run
//     Durable writer: build a base set, then stream insert/delete batches,
//     appending one fsync'd ack line per completed step. Meant to be
//     killed with SIGKILL at a random point.
//
//   crash_writer --dir DIR --mode svc|dist check
//     Recover from DIR and verify the crash contract: the recovered
//     multiset equals the writer's state after some whole number of steps
//     X, with X >= the last acked step (no lost acked commit, no partial
//     batch, no invented points). Exit 0 on success.
//
// The step schedule is deterministic, so the checker re-derives every
// reachable state without any channel besides the ack file.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "psi/net/distributed_service.h"
#include "psi/net/transport.h"
#include "psi/psi.h"

namespace {

using namespace psi;

using ZService = service::SpatialService<SpacZTree2>;
using DService = net::DistributedService<SpacZTree2>;

constexpr std::int64_t kMax = 1 << 16;
constexpr std::size_t kBase = 5000;
constexpr std::size_t kIters = 600;
// Pacing between iterations: stretches the run to ~1.5-2s so a killer
// sleeping a random fraction of a second reliably lands mid-run even on
// fast disks (on slow ones the fsyncs dominate and the sleep is noise).
constexpr unsigned kPaceUs = 2500;
constexpr std::size_t kInsPerIter = 15;
constexpr std::size_t kDelPerIter = 5;
constexpr std::size_t kDelLag = 3;  // iteration i deletes from i - kDelLag

struct Step {
  bool is_delete;
  std::vector<Point2> pts;
};

// Step 0 is the build; steps 1.. are the returned plan entries in order.
std::vector<Step> make_plan() {
  const auto fresh = datagen::uniform<2>(kInsPerIter * kIters, 7, kMax);
  std::vector<Step> plan;
  for (std::size_t i = 0; i < kIters; ++i) {
    Step ins{false, {}};
    ins.pts.assign(fresh.begin() + static_cast<std::ptrdiff_t>(kInsPerIter * i),
                   fresh.begin() +
                       static_cast<std::ptrdiff_t>(kInsPerIter * (i + 1)));
    plan.push_back(std::move(ins));
    if (i >= kDelLag) {
      const std::size_t at = kInsPerIter * (i - kDelLag);
      Step del{true, {}};
      del.pts.assign(fresh.begin() + static_cast<std::ptrdiff_t>(at),
                     fresh.begin() + static_cast<std::ptrdiff_t>(at +
                                                                 kDelPerIter));
      plan.push_back(std::move(del));
    }
  }
  return plan;
}

durability::DurabilityConfig dur_cfg(const std::string& dir) {
  durability::DurabilityConfig d;
  d.enabled = true;
  d.dir = dir + "/state";
  d.fsync = true;
  return d;
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

int ack_open(const std::string& dir) {
  const std::string path = dir + "/acks";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "open %s: %s\n", path.c_str(), std::strerror(errno));
    std::exit(2);
  }
  return fd;
}

void ack(int fd, std::size_t step) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%zu\n", step);
  if (::write(fd, buf, static_cast<std::size_t>(n)) != n || ::fsync(fd) != 0) {
    std::fprintf(stderr, "ack write failed: %s\n", std::strerror(errno));
    std::exit(2);
  }
}

int run_svc(const std::string& dir) {
  service::ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = dur_cfg(dir);
  ZService svc(cfg);
  const int fd = ack_open(dir);
  svc.build(datagen::uniform<2>(kBase, 1, kMax));
  ack(fd, 0);
  const auto plan = make_plan();
  std::size_t step = 0;
  while (step < plan.size()) {
    // One iteration's steps share a flush; both were made durable (WAL
    // fsync precedes the futures' publication) before the ack goes out.
    std::vector<std::vector<ZService::future_t>> futs;
    std::size_t next = step;
    futs.push_back(!plan[next].is_delete
                       ? svc.submit_insert_batch(plan[next].pts)
                       : svc.submit_delete_batch(plan[next].pts));
    ++next;
    if (next < plan.size() && plan[next].is_delete) {
      futs.push_back(svc.submit_delete_batch(plan[next].pts));
      ++next;
    }
    svc.flush();
    for (auto& batch : futs) {
      for (auto& f : batch) f.get();
    }
    step = next;
    ack(fd, step);  // step index of the last completed plan entry
    ::usleep(kPaceUs);
  }
  ::close(fd);
  return 0;
}

int run_dist(const std::string& dir) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = dur_cfg(dir);
  DService svc(fabric, 2, cfg);
  const int fd = ack_open(dir);
  svc.build(datagen::uniform<2>(kBase, 1, kMax));
  ack(fd, 0);
  const auto plan = make_plan();
  for (std::size_t s = 0; s < plan.size(); ++s) {
    // Each call is one commit: hosts fsync before acking, the coordinator
    // fsyncs its marker before returning — durable when ack() runs.
    if (plan[s].is_delete) {
      svc.delete_batch(plan[s].pts);
    } else {
      svc.insert_batch(plan[s].pts);
    }
    ack(fd, s + 1);
    if (!plan[s].is_delete) ::usleep(kPaceUs);  // pace per iteration, not step
  }
  ::close(fd);
  return 0;
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

// Highest acked step, or -1 when nothing was acked.
long last_ack(const std::string& dir) {
  std::FILE* f = std::fopen((dir + "/acks").c_str(), "r");
  if (f == nullptr) return -1;
  long last = -1, v = 0;
  while (std::fscanf(f, "%ld", &v) == 1) last = v;
  std::fclose(f);
  return last;
}

std::vector<Point2> recovered_svc(const std::string& dir) {
  service::ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = dur_cfg(dir);
  ZService svc(cfg);  // recovery runs in the constructor
  Box2 b;
  b.lo[0] = b.lo[1] = 0;
  b.hi[0] = b.hi[1] = kMax;
  auto fut = svc.submit_range_list(b);
  svc.flush();
  return fut.get().points;
}

std::vector<Point2> recovered_dist(const std::string& dir) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = dur_cfg(dir);
  DService svc(fabric, 2, cfg);
  svc.recover_from_disk();
  return svc.flatten();
}

bool erase_one(std::vector<Point2>& pts, const Point2& p) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i] == p) {
      pts[i] = pts.back();
      pts.pop_back();
      return true;
    }
  }
  return false;
}

int check(const std::string& dir, const std::string& mode) {
  const long acked = last_ack(dir);
  std::vector<Point2> got =
      mode == "svc" ? recovered_svc(dir) : recovered_dist(dir);
  std::sort(got.begin(), got.end());

  // Walk the reachable states in order: s = -1 (nothing durable yet),
  // s = 0 (base built), s = k (plan steps 1..k applied).
  if (acked < 0 && got.empty()) {
    std::printf("crash_writer check: OK (state: pre-build, acked: none)\n");
    return 0;
  }
  std::vector<Point2> state = datagen::uniform<2>(kBase, 1, kMax);
  const auto plan = make_plan();
  for (long s = 0; s <= static_cast<long>(plan.size()); ++s) {
    if (s > 0) {
      const Step& st = plan[static_cast<std::size_t>(s) - 1];
      if (st.is_delete) {
        for (const auto& p : st.pts) erase_one(state, p);
      } else {
        state.insert(state.end(), st.pts.begin(), st.pts.end());
      }
    }
    if (state.size() != got.size()) continue;
    std::vector<Point2> sorted = state;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != got) continue;
    if (s < acked) {
      std::fprintf(stderr,
                   "crash_writer check: LOST ACKED COMMIT — recovered state "
                   "matches step %ld but step %ld was acked\n",
                   s, acked);
      return 1;
    }
    std::printf("crash_writer check: OK (state: step %ld of %zu, acked: %ld, "
                "points: %zu)\n",
                s, plan.size(), acked, got.size());
    return 0;
  }
  std::fprintf(stderr,
               "crash_writer check: recovered state (%zu points) matches NO "
               "whole-step state (acked: %ld) — torn or invented data\n",
               got.size(), acked);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir, mode, verb;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (a == "--mode" && i + 1 < argc) {
      mode = argv[++i];
    } else {
      verb = a;
    }
  }
  if (dir.empty() || (mode != "svc" && mode != "dist") ||
      (verb != "run" && verb != "check")) {
    std::fprintf(stderr,
                 "usage: crash_writer --dir DIR --mode svc|dist run|check\n");
    return 2;
  }
  if (!durability::kEnabled) {
    std::fprintf(stderr, "crash_writer: durability compiled out\n");
    return 2;
  }
  if (verb == "check") return check(dir, mode);
  return mode == "svc" ? run_svc(dir) : run_dist(dir);
}
