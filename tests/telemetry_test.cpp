// Telemetry tests: histograms, registry, tracer, heat, and the wiring
// through SpatialService and the distributed stats RPC.
//
//  * Bucket boundaries: bucket_of/bucket_upper partition [0, 2^64).
//  * Percentiles agree with a sorted-vector oracle up to bucket
//    resolution (the reported value is the upper bound of the bucket
//    containing the true rank-p sample).
//  * Concurrent recording loses no samples (also the TSan target).
//  * Snapshot merge is associative and commutative — the property the
//    cluster-wide stats aggregation in distributed_service.h relies on.
//  * Wire codec round-trips histogram snapshots.
//  * ShardHeat: EWMA decay across epochs, realign carries keys.
//  * StatsRegistry JSON + Prometheus exposition; scheduler gauges.
//  * Tracer produces parseable Chrome-trace JSON.
//  * ServiceStats: stats_version, per-op latency, per-shard heat.
//  * 2-node loopback cluster: merged histograms equal per-host sums.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "psi/net/distributed_service.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/task_group.h"
#include "psi/service/service.h"
#include "psi/telemetry/histogram.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/registry.h"
#include "psi/telemetry/trace.h"

namespace psi::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Buckets
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, BucketBoundaries) {
  // bucket 0 holds exactly the value 0; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(1023), 10u);
  EXPECT_EQ(bucket_of(1024), 11u);
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(bucket_upper(0), 0u);
  EXPECT_EQ(bucket_upper(1), 1u);
  EXPECT_EQ(bucket_upper(10), 1023u);
  EXPECT_EQ(bucket_upper(64), ~std::uint64_t{0});

  // Every value lies within its bucket's bounds.
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
                          std::uint64_t{4096}, std::uint64_t{1} << 40}) {
    const std::size_t b = bucket_of(v);
    EXPECT_LE(v, bucket_upper(b));
    if (b > 0) EXPECT_GT(v, bucket_upper(b - 1));
  }
}

TEST(TelemetryHistogram, RecordLandsInExpectedBucket) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  const std::uint64_t vals[] = {0, 1, 2, 3, 1000, 5000};
  for (std::uint64_t v : vals) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 1000 + 5000);
  EXPECT_EQ(s.max, 5000u);
  EXPECT_EQ(s.buckets[bucket_of(0)], 1u);
  EXPECT_EQ(s.buckets[bucket_of(1)], 1u);
  EXPECT_EQ(s.buckets[bucket_of(2)], 2u);  // 2 and 3 share bucket 2
  EXPECT_EQ(s.buckets[bucket_of(1000)], 1u);
  EXPECT_EQ(s.buckets[bucket_of(5000)], 1u);
}

// ---------------------------------------------------------------------------
// Percentiles vs a sorted oracle
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, PercentileMatchesSortedOracle) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  std::vector<std::uint64_t> vals;
  std::uint64_t x = 88172645463325252ull;  // xorshift64
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x % 1000000;  // ns-scale spread
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, vals.size());
  for (double p : {50.0, 90.0, 95.0, 99.0, 100.0}) {
    // The same rank a sorted oracle uses: ceil(p/100 * n), 1-based.
    const double want = p / 100.0 * static_cast<double>(vals.size());
    std::uint64_t rank = static_cast<std::uint64_t>(want) >= want
                             ? static_cast<std::uint64_t>(want)
                             : static_cast<std::uint64_t>(want) + 1;
    rank = std::clamp<std::uint64_t>(rank, 1, vals.size());
    const std::uint64_t oracle = vals[rank - 1];
    // Exact up to bucket resolution: the histogram reports the upper bound
    // of the bucket the true sample lies in.
    EXPECT_EQ(s.percentile(p), bucket_upper(bucket_of(oracle)))
        << "p=" << p << " oracle=" << oracle;
  }
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan target)
// ---------------------------------------------------------------------------

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPer);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPer);
}

// ---------------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------------

HistogramSnapshot snap_of(std::initializer_list<std::uint64_t> vals) {
  Histogram h;
  for (std::uint64_t v : vals) h.record(v);
  return h.snapshot();
}

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
}

TEST(TelemetryHistogram, MergeAssociativeCommutative) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  const HistogramSnapshot a = snap_of({1, 5, 9});
  const HistogramSnapshot b = snap_of({100, 200});
  const HistogramSnapshot c = snap_of({0, 0, 1 << 20});
  expect_same((a + b) + c, a + (b + c));
  expect_same(a + b, b + a);
  const HistogramSnapshot all = a + b + c;
  EXPECT_EQ(all.count, 8u);
  // Merging equals recording everything into one histogram.
  expect_same(all, snap_of({1, 5, 9, 100, 200, 0, 0, 1 << 20}));
}

TEST(TelemetryWire, HistogramSnapshotRoundTrip) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  const HistogramSnapshot s = snap_of({0, 1, 3, 1000, 123456789});
  net::WireWriter w;
  w.put_histogram(s);
  net::Message m = std::move(w).finish(net::MsgType::kTelemetryReply);
  net::WireReader r(m);
  expect_same(r.get_histogram(), s);
}

// ---------------------------------------------------------------------------
// Shard heat
// ---------------------------------------------------------------------------

TEST(TelemetryHeat, DecayAcrossEpochsAndRealign) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  ShardHeat heat;
  heat.realign({10, 20});
  heat.record_write(0, 8);
  record_read(heat.cells(), 1);
  record_read(heat.cells(), 1);

  // Epoch 1: EWMA = decay*0 + delta.
  heat.decay();
  ASSERT_EQ(heat.decayed().size(), 2u);
  EXPECT_DOUBLE_EQ(heat.decayed()[0], 8.0);
  EXPECT_DOUBLE_EQ(heat.decayed()[1], 2.0);

  // Epoch 2, no fresh traffic: heat halves.
  heat.decay();
  EXPECT_DOUBLE_EQ(heat.decayed()[0], 4.0);
  EXPECT_DOUBLE_EQ(heat.decayed()[1], 1.0);

  // Realign: key 20 survives (carries its EWMA and counters to its new
  // position), key 30 starts cold.
  heat.realign({20, 30});
  EXPECT_DOUBLE_EQ(heat.decayed()[0], 1.0);
  EXPECT_DOUBLE_EQ(heat.decayed()[1], 0.0);
  const auto entries = heat.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, 20u);
  EXPECT_EQ(entries[0].reads, 2u);
  EXPECT_EQ(entries[1].key, 30u);
  EXPECT_EQ(entries[1].reads, 0u);

  // Fresh traffic on the surviving shard folds onto the carried EWMA.
  heat.record_write(0, 6);
  heat.decay();
  EXPECT_DOUBLE_EQ(heat.decayed()[0], 0.5 * 1.0 + 6.0);
}

// ---------------------------------------------------------------------------
// Registry + scheduler gauges
// ---------------------------------------------------------------------------

TEST(TelemetryRegistry, JsonAndPrometheusExposition) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  auto& reg = StatsRegistry::instance();
  reg.counter("test.reg.hits").inc(3);
  reg.histogram("test.reg.lat").record(1000);
  reg.register_gauge("test.reg.gauge", [] { return std::uint64_t{42}; });
  const RegistrySnapshot snap = reg.snapshot();

  const std::string json = snap.json();
  EXPECT_NE(json.find("\"test.reg.hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.reg.gauge\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.reg.lat\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);

  const std::string prom = snap.prometheus();
  EXPECT_NE(prom.find("# TYPE test_reg_hits counter"), std::string::npos);
  EXPECT_NE(prom.find("test_reg_lat_count 1"), std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
}

TEST(TelemetryScheduler, CountersAdvanceUnderForeignSubmits) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Scheduler::set_num_workers(2);
  const SchedulerCounters before = Scheduler::telemetry_counters();
  // The scheduler registers the constructing thread as worker 0, so
  // foreign submits need a thread the pool has never seen.
  std::atomic<int> ran{0};
  std::thread outsider([&ran] {
    TaskGroup tg;
    for (int i = 0; i < 64; ++i) {
      tg.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    tg.wait();
  });
  outsider.join();
  EXPECT_EQ(ran.load(), 64);
  const SchedulerCounters after = Scheduler::telemetry_counters();
  EXPECT_GE(after.submits, before.submits + 64);
  EXPECT_GT(after.foreign_jobs, before.foreign_jobs);
  // Steals/parks depend on worker timing — monotonicity is all that is
  // guaranteed on a single-core box.
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(after.parks, before.parks);
  // The scheduler registers its counters as registry gauges.
  const std::string json = StatsRegistry::instance().snapshot().json();
  EXPECT_NE(json.find("\"scheduler.submits\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TelemetryTrace, ChromeTraceCapturesSpans) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  {
    PSI_TRACE_SPAN("test.outer");
    PSI_TRACE_SPAN("test.inner");
  }
  tracer.set_enabled(false);
  EXPECT_GE(tracer.event_count(), 2u);
  const std::string json = tracer.chrome_trace();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  tracer.clear();
}

TEST(TelemetryTrace, DisabledSpansRecordNothing) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  {
    PSI_TRACE_SPAN("test.should.not.appear");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Service wiring
// ---------------------------------------------------------------------------

TEST(TelemetryService, StatsCarryLatencyAndHeat) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  using namespace psi::service;
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = 1u << 20;  // fixed topology
  cfg.merge_threshold = 1;
  SpatialService<SpacZTree2> svc(cfg);
  const auto base = datagen::uniform<2>(2000, 1, 1 << 16);
  svc.build(base);
  svc.start();

  std::vector<std::future<Result<std::int64_t, 2>>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(svc.submit_insert(
        Point2{{static_cast<std::int64_t>(i * 37 % (1 << 16)),
                static_cast<std::int64_t>(i * 101 % (1 << 16))}}));
  }
  for (auto& f : futs) f.get();
  svc.flush();

  auto snap = svc.snapshot();
  Box2 b;
  b.lo = Point2{{0, 0}};
  b.hi = Point2{{1 << 14, 1 << 14}};
  (void)snap.range_count(b);
  (void)snap.knn(Point2{{100, 100}}, 5);
  svc.stop();

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.stats_version, 5u);
  ASSERT_EQ(s.latency.size(), kNumQueuedOps);
  ASSERT_EQ(s.stages.size(), kNumStages);
  // 50 inserts went through the queue; their end-to-end latency is in the
  // insert summary. The snapshot queries land in the read-path histograms
  // which stats() merges into the per-op summaries.
  EXPECT_GE(s.latency[static_cast<std::size_t>(QueuedOp::kInsert)].count, 50u);
  EXPECT_GE(s.latency[static_cast<std::size_t>(QueuedOp::kKnn)].count, 1u);
  EXPECT_GE(s.latency[static_cast<std::size_t>(QueuedOp::kRangeCount)].count,
            1u);
  EXPECT_GT(s.stages[static_cast<std::size_t>(Stage::kPublish)].count, 0u);

  // Heat: 4 shards, all written by build-epoch traffic or the inserts.
  ASSERT_EQ(s.shard_heat.size(), 4u);
  ASSERT_EQ(s.shard_heat_decayed.size(), 4u);
  std::uint64_t writes = 0, reads = 0;
  for (const auto& h : s.shard_heat) {
    writes += h.writes;
    reads += h.reads;
  }
  EXPECT_GE(writes, 50u);  // the queued inserts
  EXPECT_GE(reads, 1u);    // the snapshot queries
  const auto hot = s.top_hot_shards(2);
  ASSERT_LE(hot.size(), 2u);
  ASSERT_GE(hot.size(), 1u);
  EXPECT_GE(hot[0].second, hot.back().second);

  const std::string json = s.json();
  EXPECT_NE(json.find("\"stats_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"cache_torn_skips\":"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"shard_heat\":"), std::string::npos);
  EXPECT_NE(json.find("\"hot_shards\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cluster aggregation
// ---------------------------------------------------------------------------

TEST(TelemetryCluster, MergedHistogramsEqualPerHostSums) {
  if (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  using Service = net::DistributedService<SpacZTree2>;
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = 1u << 20;
  cfg.merge_threshold = 1;
  Service svc(fabric, 2, cfg);
  svc.build(datagen::uniform<2>(2000, 7, 1 << 16));
  svc.insert_batch(datagen::uniform<2>(100, 9, 1 << 16));

  Box2 b;
  b.lo = Point2{{0, 0}};
  b.hi = Point2{{1 << 15, 1 << 15}};
  for (int i = 0; i < 5; ++i) {
    (void)svc.range_count(b);
    (void)svc.knn(Point2{{500, 500}}, 3);
  }

  const net::DistributedStats s = svc.stats();
  ASSERT_EQ(s.hosts.size(), 2u);
  ASSERT_EQ(s.read_hists.size(), kNumReadOps);
  ASSERT_EQ(s.stage_hists.size(), kNumStages);
  ASSERT_EQ(s.read_latency.size(), kNumReadOps);

  // The cluster merge must equal the bucket-wise per-host sums — exactly
  // (histogram merge is associative/commutative, nothing is lost or
  // double-counted by aggregation).
  for (std::size_t op = 0; op < kNumReadOps; ++op) {
    HistogramSnapshot sum;
    for (const auto& host : s.hosts) {
      ASSERT_EQ(host.reads.size(), kNumReadOps);
      sum.merge(host.reads[op]);
    }
    expect_same(s.read_hists[op], sum);
  }
  for (std::size_t st = 0; st < kNumStages; ++st) {
    HistogramSnapshot sum;
    for (const auto& host : s.hosts) {
      ASSERT_EQ(host.stages.size(), kNumStages);
      sum.merge(host.stages[st]);
    }
    expect_same(s.stage_hists[st], sum);
  }

  // Something actually got recorded on the read path.
  EXPECT_GE(
      s.read_hists[static_cast<std::size_t>(ReadOp::kRangeCount)].count, 5u);
  EXPECT_GE(s.read_hists[static_cast<std::size_t>(ReadOp::kKnn)].count, 5u);
  EXPECT_EQ(
      s.read_latency[static_cast<std::size_t>(ReadOp::kKnn)].count,
      s.read_hists[static_cast<std::size_t>(ReadOp::kKnn)].count);

  // Heat: the cluster view sums per-host counters key-wise.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> by_key;
  for (const auto& host : s.hosts) {
    for (const auto& h : host.heat) {
      by_key[h.key].first += h.reads;
      by_key[h.key].second += h.writes;
    }
  }
  ASSERT_EQ(s.heat.size(), by_key.size());
  std::uint64_t total_writes = 0;
  for (const auto& h : s.heat) {
    const auto it = by_key.find(h.key);
    ASSERT_NE(it, by_key.end());
    EXPECT_EQ(h.reads, it->second.first);
    EXPECT_EQ(h.writes, it->second.second);
    total_writes += h.writes;
  }
  EXPECT_GE(total_writes, 100u);  // the insert_batch
}

}  // namespace
}  // namespace psi::telemetry
