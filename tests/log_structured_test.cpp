// Tests for the Log-tree (logarithmic method) and BHL-tree (rebuild-on-
// update) baselines: component structure invariants, query correctness vs
// the oracle, incremental updates. Both treat the index as a set of
// distinct points (paper datasets are deduplicated).

#include <gtest/gtest.h>

#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/baselines/log_structured.h"
#include "psi/datagen/generators.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

std::vector<Point2> distinct_points(std::size_t n, std::uint64_t seed) {
  auto pts = datagen::dedup(datagen::uniform<2>(n + n / 10, seed, kMax));
  pts.resize(std::min(pts.size(), n));
  return pts;
}

TEST(LogTree, BuildAndComponentInvariants) {
  auto pts = distinct_points(20000, 1);
  LogTree2 tree;
  tree.build(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  testutil::expect_same_multiset(tree.flatten(), pts);
}

TEST(LogTree, IncrementalInsertGrowsLogarithmicComponents) {
  auto pts = distinct_points(16000, 2);
  LogTree2 tree;
  const std::size_t batch = 500;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    ASSERT_EQ(tree.size(), hi);
    ASSERT_NO_THROW(tree.check_invariants());
  }
  // The binary-counter invariant bounds the number of components by
  // log2(n / base) + O(1).
  EXPECT_LE(tree.num_components(), 12u);
}

TEST(LogTree, QueriesMatchOracleAcrossComponents) {
  auto pts = distinct_points(8000, 3);
  LogTree2 tree;
  // Insert in uneven chunks so several components of different levels
  // coexist — the case where per-component kNN merging matters.
  std::size_t lo = 0;
  for (std::size_t chunk : {4000u, 100u, 2000u, 300u, 1600u}) {
    const auto hi = std::min(pts.size(), lo + chunk);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    lo = hi;
  }
  EXPECT_GE(tree.num_components(), 2u);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build({pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(lo)});
  auto qs = datagen::ood_queries<2>(25, 3, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(LogTree, DeleteAcrossComponentsAndCompaction) {
  auto pts = distinct_points(8000, 4);
  LogTree2 tree;
  const std::size_t batch = 1000;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
  }
  // Delete 3/4 of everything: compaction must kick in.
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i % 4 != 0) dels.push_back(pts[i]);
  }
  tree.batch_delete(dels);
  EXPECT_EQ(tree.size(), pts.size() - dels.size());
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete(dels);
  auto qs = datagen::ood_queries<2>(20, 4, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(LogTree, DeleteEverythingEmptiesAllComponents) {
  auto pts = distinct_points(3000, 5);
  LogTree2 tree;
  tree.build(pts);
  tree.batch_delete(pts);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.num_components(), 0u);
  tree.batch_insert(pts);
  EXPECT_EQ(tree.size(), pts.size());
}

TEST(BhlTree, RebuildOnEveryBatchKeepsPerfectQuality) {
  auto pts = distinct_points(8000, 6);
  const std::size_t half = pts.size() / 2;
  BhlTree2 tree;
  tree.build({pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(half)});
  tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(half), pts.end()});
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<2>(20, 6, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);

  std::vector<Point2> dels(pts.begin(),
                           pts.begin() + static_cast<std::ptrdiff_t>(half));
  tree.batch_delete(dels);
  oracle.batch_delete(dels);
  EXPECT_EQ(tree.size(), oracle.size());
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(BhlTree, EmptyAndSmall) {
  BhlTree2 tree;
  EXPECT_TRUE(tree.empty());
  tree.batch_insert({Point2{{1, 2}}});
  EXPECT_EQ(tree.size(), 1u);
  tree.batch_delete({Point2{{1, 2}}});
  EXPECT_TRUE(tree.empty());
}

}  // namespace
}  // namespace psi
