// Cross-index integration tests: every index in the library runs the same
// randomized mixed workload (build, interleaved batch inserts/deletes, kNN
// and range queries) and must agree with the brute-force oracle —
// parameterized over distribution × dimension.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax2 = 1'000'000'000;

struct MixCase {
  const char* name;
  int dist;           // 0 uniform, 1 varden, 2 sweepline, 3 osm
  std::size_t batch;  // update batch size
};

class MixedWorkload : public ::testing::TestWithParam<MixCase> {
 protected:
  std::vector<Point2> make_points(std::size_t n, std::uint64_t seed) const {
    switch (GetParam().dist) {
      case 1:
        return datagen::varden<2>(n, seed, kMax2);
      case 2:
        return datagen::sweepline<2>(n, seed, kMax2);
      case 3:
        return datagen::osm_sim(n, seed, kMax2);
      default:
        return datagen::uniform<2>(n, seed, kMax2);
    }
  }

  // Drives `index` and the oracle through the same update stream, checking
  // agreement after every round and full query agreement at the end.
  template <typename Index>
  void run(Index& index) const {
    const std::size_t n = 4000;
    const std::size_t batch = GetParam().batch;
    auto pts = make_points(n, 42);
    BruteForceIndex<std::int64_t, 2> oracle;
    std::vector<Point2> live;
    for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
      const auto hi = std::min(pts.size(), lo + batch);
      std::vector<Point2> ins(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                              pts.begin() + static_cast<std::ptrdiff_t>(hi));
      index.batch_insert(ins);
      oracle.batch_insert(ins);
      live.insert(live.end(), ins.begin(), ins.end());
      if ((lo / batch) % 2 == 1) {
        std::vector<Point2> dels;
        for (std::size_t i = 0; i < live.size(); i += 6) dels.push_back(live[i]);
        index.batch_delete(dels);
        oracle.batch_delete(dels);
        for (const auto& d : dels) {
          auto it = std::find(live.begin(), live.end(), d);
          if (it != live.end()) {
            *it = live.back();
            live.pop_back();
          }
        }
      }
      ASSERT_EQ(index.size(), oracle.size());
    }
    auto ind = datagen::ind_queries(oracle.points(), 15, 42, kMax2);
    auto ood = datagen::ood_queries<2>(15, 42, kMax2);
    auto ranges = datagen::range_boxes(ood, 90'000'000, kMax2);
    testutil::expect_queries_match(index, oracle, ind, 10, ranges);
    testutil::expect_queries_match(index, oracle, ood, 10, ranges);
  }
};

INSTANTIATE_TEST_SUITE_P(
    Workloads, MixedWorkload,
    ::testing::Values(MixCase{"uniform_large", 0, 800},
                      MixCase{"uniform_small", 0, 80},
                      MixCase{"varden_large", 1, 800},
                      MixCase{"varden_small", 1, 80},
                      MixCase{"sweepline", 2, 400},
                      MixCase{"osm", 3, 400}),
    [](const auto& info) { return info.param.name; });

TEST_P(MixedWorkload, POrth) {
  POrthTree2 tree({}, Box2{{{0, 0}}, {{kMax2, kMax2}}});
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, SpacHilbert) {
  SpacHTree2 tree;
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, SpacMorton) {
  SpacZTree2 tree;
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, CpamHilbert) {
  SpacHTree2 tree(cpam_params());
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, Pkd) {
  PkdTree2 tree;
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, Zd) {
  ZdTree2 tree;
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST_P(MixedWorkload, RTreeSequential) {
  RTree2 tree;
  run(tree);
  EXPECT_NO_THROW(tree.check_invariants());
}

// 3D smoke version of the same drill for the primary indexes.
TEST(MixedWorkload3D, AllPrimaryIndexes) {
  auto pts = datagen::cosmo_sim(3000, 7);
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(10, 7, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 120'000, datagen::kDefaultMax3D);

  POrthTree3 porth({}, Box3{{{0, 0, 0}},
                            {{datagen::kDefaultMax3D, datagen::kDefaultMax3D,
                              datagen::kDefaultMax3D}}});
  porth.build(pts);
  testutil::expect_queries_match(porth, oracle, qs, 10, ranges);

  SpacHTree3 spach;
  spach.build(pts);
  testutil::expect_queries_match(spach, oracle, qs, 10, ranges);

  PkdTree3 pkd;
  pkd.build(pts);
  testutil::expect_queries_match(pkd, oracle, qs, 10, ranges);

  ZdTree3 zd;
  zd.build(pts);
  testutil::expect_queries_match(zd, oracle, qs, 10, ranges);
}

}  // namespace
}  // namespace psi
