// Error-path coverage for io/dataset_io.h: nonexistent files, truncated
// binaries, corrupt headers, and malformed CSV rows must all surface a
// clear std::runtime_error naming the file (and line, for CSV) — never a
// silent short read, a garbage-count allocation, or a bare
// std::invalid_argument out of std::stoll.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "psi/io/dataset_io.h"

namespace psi::io {
namespace {

std::vector<Point2> sample_points() {
  return {{{1, 2}}, {{3, 4}}, {{-5, 600}}, {{7, 8}}};
}

// Unique-ish scratch path under the build tree's cwd.
std::string tmp_path(const std::string& tag) {
  return "dataset_io_test_" + tag + ".tmp";
}

struct ScopedFile {
  std::string path;
  explicit ScopedFile(std::string p) : path(std::move(p)) {}
  ~ScopedFile() { std::remove(path.c_str()); }
};

void expect_throw_containing(const std::function<void()>& fn,
                             const std::string& needle) {
  try {
    fn();
    FAIL() << "expected runtime_error containing '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(DatasetIo, BinaryRoundTrip) {
  ScopedFile f(tmp_path("roundtrip"));
  const auto pts = sample_points();
  save_binary(f.path, pts);
  const auto back = load_binary<std::int64_t, 2>(f.path);
  EXPECT_EQ(back, pts);
}

TEST(DatasetIo, BinaryNonexistentFile) {
  expect_throw_containing(
      [] { load_binary<std::int64_t, 2>("no/such/file.bin"); },
      "cannot open for read");
}

TEST(DatasetIo, BinaryTruncatedHeader) {
  ScopedFile f(tmp_path("short_header"));
  std::ofstream(f.path, std::ios::binary) << "PSI";  // 3 bytes, header is 24
  expect_throw_containing([&] { load_binary<std::int64_t, 2>(f.path); },
                          "truncated header");
}

TEST(DatasetIo, BinaryBadMagic) {
  ScopedFile f(tmp_path("bad_magic"));
  BinaryHeader h{0xdeadbeef, kFormatVersion, 2, 8, 0};
  std::ofstream(f.path, std::ios::binary)
      .write(reinterpret_cast<const char*>(&h), sizeof(h));
  expect_throw_containing([&] { load_binary<std::int64_t, 2>(f.path); },
                          "bad magic");
}

TEST(DatasetIo, BinaryWrongVersion) {
  ScopedFile f(tmp_path("bad_version"));
  BinaryHeader h{kMagic, 999, 2, 8, 0};
  std::ofstream(f.path, std::ios::binary)
      .write(reinterpret_cast<const char*>(&h), sizeof(h));
  expect_throw_containing([&] { load_binary<std::int64_t, 2>(f.path); },
                          "version 999");
}

TEST(DatasetIo, BinaryDimensionMismatch) {
  ScopedFile f(tmp_path("dim"));
  save_binary(f.path, sample_points());  // 2D
  expect_throw_containing([&] { load_binary<std::int64_t, 3>(f.path); },
                          "dimension/coordinate mismatch");
}

TEST(DatasetIo, BinaryTruncatedPayload) {
  ScopedFile f(tmp_path("short_payload"));
  save_binary(f.path, sample_points());
  // Chop the last point off the payload; the header still claims 4.
  {
    std::ifstream in(f.path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    all.resize(all.size() - sizeof(Point2) + 3);
    std::ofstream(f.path, std::ios::binary | std::ios::trunc) << all;
  }
  expect_throw_containing([&] { load_binary<std::int64_t, 2>(f.path); },
                          "truncated file");
}

TEST(DatasetIo, BinaryGarbageCountDoesNotAllocate) {
  // A header declaring 2^61 points must be rejected from the file size
  // check, not by attempting (and possibly succeeding at!) a huge
  // allocation then silently short-reading.
  ScopedFile f(tmp_path("garbage_count"));
  BinaryHeader h{kMagic, kFormatVersion, 2, 8,
                 std::uint64_t{1} << 61};
  std::ofstream(f.path, std::ios::binary)
      .write(reinterpret_cast<const char*>(&h), sizeof(h));
  expect_throw_containing([&] { load_binary<std::int64_t, 2>(f.path); },
                          "truncated file");
}

TEST(DatasetIo, CsvRoundTrip) {
  ScopedFile f(tmp_path("csv_roundtrip"));
  const auto pts = sample_points();
  save_csv(f.path, pts);
  EXPECT_EQ((load_csv<std::int64_t, 2>(f.path)), pts);
}

TEST(DatasetIo, CsvNonexistentFile) {
  expect_throw_containing([] { load_csv<std::int64_t, 2>("nope.csv"); },
                          "cannot open for read");
}

TEST(DatasetIo, CsvShortRowNamesLine) {
  ScopedFile f(tmp_path("csv_short"));
  std::ofstream(f.path) << "# comment\n1,2\n3\n";
  expect_throw_containing([&] { load_csv<std::int64_t, 2>(f.path); }, ":3");
}

TEST(DatasetIo, CsvBadCellNamesLineAndCell) {
  ScopedFile f(tmp_path("csv_bad"));
  std::ofstream(f.path) << "1,2\n3,forty\n";
  expect_throw_containing([&] { load_csv<std::int64_t, 2>(f.path); },
                          "bad coordinate 'forty'");
  expect_throw_containing([&] { load_csv<std::int64_t, 2>(f.path); }, ":2");
}

TEST(DatasetIo, CsvTrailingJunkRejected) {
  // stoll would happily parse "12;99" as 12 and drop the rest.
  ScopedFile f(tmp_path("csv_junk"));
  std::ofstream(f.path) << "12;99,3\n";
  expect_throw_containing([&] { load_csv<std::int64_t, 2>(f.path); },
                          "bad coordinate");
}

TEST(DatasetIo, CsvToleratesWindowsLineEndings) {
  ScopedFile f(tmp_path("csv_crlf"));
  std::ofstream(f.path, std::ios::binary) << "1,2\r\n3,4\r\n";
  const auto pts = load_csv<std::int64_t, 2>(f.path);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1], (Point2{{3, 4}}));
}

}  // namespace
}  // namespace psi::io
