// Distributed service tests: the ShardMap + group-commit protocol lifted
// across nodes (src/psi/net/).
//
//  * Wire codec round-trips (points, boxes, runs, frames, version check).
//  * Oracle equivalence over LoopbackTransport AND TcpTransport on
//    localhost: multi-node range/ball/kNN results must match a
//    single-node brute-force oracle exactly.
//  * Commit path: interleaved inserts/deletes across nodes preserve
//    multiset semantics (flatten == oracle).
//  * Rebalance: splits spread shards; balance_nodes migrates them; an
//    explicit handoff under 2 concurrent writers + 2 readers loses and
//    duplicates nothing.
//  * Version piggyback: remote readers get cross-epoch cache hits for
//    shards untouched by an interleaved commit, and commits touching the
//    covered shards invalidate.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "psi/net/distributed_service.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"

namespace psi::net {
namespace {

using Service = DistributedService<SpacZTree2>;
using point_t = Point2;
using box_t = Box2;

constexpr std::int64_t kMax = 1 << 16;

std::vector<point_t> uniform_points(std::size_t n, std::uint64_t seed) {
  return datagen::uniform<2>(n, seed, kMax);
}

// Multiset compare via sorted vectors.
void expect_same_multiset(std::vector<point_t> a, std::vector<point_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, ScalarAndPointRoundTrip) {
  WireWriter w;
  w.put_u8(7);
  w.put_u32(123456789u);
  w.put_u64(~std::uint64_t{0} - 5);
  w.put_f64(-2.5);
  w.put_point(point_t{{-10, 1 << 20}});
  w.put_box(box_t{{{-1, -2}}, {{3, 4}}});
  w.put_string("hello");
  Message m = std::move(w).finish(MsgType::kQuery);

  WireReader r(m);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 123456789u);
  EXPECT_EQ(r.get_u64(), ~std::uint64_t{0} - 5);
  EXPECT_EQ(r.get_f64(), -2.5);
  EXPECT_EQ((r.get_point<std::int64_t, 2>()), (point_t{{-10, 1 << 20}}));
  const auto b = r.get_box<std::int64_t, 2>();
  EXPECT_EQ(b.lo, (point_t{{-1, -2}}));
  EXPECT_EQ(b.hi, (point_t{{3, 4}}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, RunsRoundTripAndFrame) {
  std::vector<service::OpRun<point_t>> runs;
  runs.push_back({false, {{{1, 2}}, {{3, 4}}}});
  runs.push_back({true, {{{5, 6}}}});
  WireWriter w;
  w.put_runs(runs);
  Message m = std::move(w).finish(MsgType::kCommitBatch);

  const std::vector<std::uint8_t> frame = encode_frame(m);
  std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  Message back = decode_frame_body(std::move(body));
  EXPECT_EQ(back.type, MsgType::kCommitBatch);
  WireReader r(back);
  const auto rt = r.get_runs<point_t>();
  ASSERT_EQ(rt.size(), 2u);
  EXPECT_FALSE(rt[0].is_delete);
  EXPECT_EQ(rt[0].pts.size(), 2u);
  EXPECT_TRUE(rt[1].is_delete);
  EXPECT_EQ(rt[1].pts, runs[1].pts);
}

TEST(Wire, RejectsTruncationVersionSkewAndGarbageCounts) {
  WireWriter w;
  w.put_u64(42);
  Message m = std::move(w).finish(MsgType::kOk);
  WireReader r(m);
  (void)r.get_u32();
  EXPECT_THROW(r.get_u64(), WireError);  // only 4 bytes left

  // Version skew: rewrite the version half-word in the frame prelude.
  std::vector<std::uint8_t> frame = encode_frame(m);
  frame[6] = 99;  // version lo byte (after 4-byte length + 2-byte magic)
  std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  try {
    decode_frame_body(std::move(body));
    FAIL() << "version mismatch not detected";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }

  // A frame declaring 2^40 points must be rejected before allocation.
  WireWriter w2;
  w2.put_u64(std::uint64_t{1} << 40);
  Message corrupt = std::move(w2).finish(MsgType::kQueryResult);
  WireReader r2(corrupt);
  EXPECT_THROW((r2.get_points<std::int64_t, 2>()), WireError);

  // Same for a commit batch declaring 2^32-1 runs.
  WireWriter w3;
  w3.put_u32(~std::uint32_t{0});
  Message corrupt_runs = std::move(w3).finish(MsgType::kCommitBatch);
  WireReader r3(corrupt_runs);
  EXPECT_THROW(r3.get_runs<point_t>(), WireError);
}

// ---------------------------------------------------------------------------
// Loopback: oracle equivalence
// ---------------------------------------------------------------------------

struct Oracle {
  BruteForceIndex<std::int64_t, 2> idx;
  explicit Oracle(const std::vector<point_t>& pts) { idx.build(pts); }
};

void check_query_equivalence(Service& svc, const Oracle& oracle,
                             std::uint64_t seed) {
  const auto queries = uniform_points(24, seed);
  for (const auto& q : queries) {
    const box_t box{{{q[0] - 3000, q[1] - 3000}}, {{q[0] + 3000, q[1] + 3000}}};
    expect_same_multiset(svc.range_list(box), oracle.idx.range_list(box));
    EXPECT_EQ(svc.range_count(box), oracle.idx.range_count(box));
    expect_same_multiset(svc.ball_list(q, 2500.0),
                         oracle.idx.ball_list(q, 2500.0));
    EXPECT_EQ(svc.ball_count(q, 2500.0), oracle.idx.ball_count(q, 2500.0));
    // kNN: distances must match exactly (tie membership may differ).
    const auto got = svc.knn(q, 10);
    const auto want = oracle.idx.knn(q, 10);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(squared_distance(got[i], q),
                       squared_distance(want[i], q));
    }
  }
}

TEST(DistributedLoopback, OracleEquivalenceAcrossNodeCounts) {
  const auto pts = uniform_points(6000, 42);
  const Oracle oracle(pts);
  for (std::size_t nodes : {1u, 2u, 3u}) {
    LoopbackTransport fabric;
    DistributedConfig cfg;
    cfg.initial_shards = 6;
    Service svc(fabric, nodes, cfg);
    svc.build(pts);
    EXPECT_EQ(svc.size(), pts.size());
    check_query_equivalence(svc, oracle, 7 + nodes);
    // Every node hosts ~an equal share of the shards.
    const auto owners = svc.stats().coordinator.shard_owners;
    std::map<NodeId, std::size_t> per_node;
    for (NodeId n : owners) per_node[n]++;
    EXPECT_EQ(per_node.size(), nodes);
  }
}

TEST(DistributedLoopback, CommitsPreserveMultisetSemantics) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  Service svc(fabric, 3, cfg);

  const auto initial = uniform_points(2000, 1);
  svc.build(initial);
  std::vector<point_t> expected = initial;

  const auto extra = uniform_points(500, 2);
  svc.insert_batch(extra);
  expected.insert(expected.end(), extra.begin(), extra.end());

  // Delete an interleaved subset (every 3rd initial point).
  std::vector<point_t> dels;
  for (std::size_t i = 0; i < initial.size(); i += 3) dels.push_back(initial[i]);
  svc.delete_batch(dels);
  for (const auto& d : dels) {
    auto it = std::find(expected.begin(), expected.end(), d);
    ASSERT_NE(it, expected.end());
    expected.erase(it);
  }

  // Mixed FIFO group: delete-then-insert of one point nets to present.
  const point_t probe{{777, 888}};
  svc.commit({{false, probe}, {true, probe}, {false, probe}});
  expected.push_back(probe);

  EXPECT_EQ(svc.size(), expected.size());
  expect_same_multiset(svc.flatten(), expected);

  const Oracle oracle(expected);
  check_query_equivalence(svc, oracle, 99);
}

TEST(DistributedLoopback, SplitsAndNodeBalanceSpreadLoad) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 2;
  cfg.split_threshold = 512;
  cfg.merge_threshold = 64;
  cfg.balance_nodes = true;
  Service svc(fabric, 3, cfg);
  svc.build(uniform_points(6000, 3));

  const auto stats = svc.stats();
  EXPECT_GT(stats.coordinator.splits, 0u);
  EXPECT_GT(svc.num_shards(), 2u);
  // Node balance: per-node shard counts within 1 of each other.
  std::map<NodeId, std::size_t> per_node;
  for (NodeId n : stats.coordinator.shard_owners) per_node[n]++;
  std::size_t lo = ~std::size_t{0}, hi = 0;
  for (const auto& [node, cnt] : per_node) {
    lo = std::min(lo, cnt);
    hi = std::max(hi, cnt);
  }
  EXPECT_LE(hi, lo + 1);

  // Contents survived all the shipping.
  EXPECT_EQ(svc.size(), 6000u);
  const Oracle oracle(uniform_points(6000, 3));
  check_query_equivalence(svc, oracle, 5);
}

TEST(DistributedLoopback, UnsplittableShardDoesNotThrashTheWire) {
  // A shard that is one giant equal-code run can never split. The
  // coordinator must remember that (keyed by stable shard key) instead of
  // re-fetching and re-sorting the whole shard over the transport on
  // every subsequent commit.
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 1;
  cfg.split_threshold = 100;
  cfg.merge_threshold = 1;
  Service svc(fabric, 2, cfg);
  const std::vector<point_t> dups(500, point_t{{42, 42}});
  svc.build(dups);
  for (int i = 0; i < 5; ++i) {
    svc.insert_batch({point_t{{42, 42}}});  // same code: still unsplittable
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.coordinator.splits, 0u);
  EXPECT_EQ(svc.size(), 505u);
  // Deleting more copies than exist of another point stays a no-op.
  svc.delete_batch({point_t{{1, 1}}});
  EXPECT_EQ(svc.size(), 505u);
  EXPECT_EQ(svc.range_count(box_t{{{0, 0}}, {{100, 100}}}), 505u);
}

TEST(DistributedLoopback, ExplicitMigrationKeepsServing) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;  // manual control
  Service svc(fabric, 2, cfg);
  const auto pts = uniform_points(3000, 11);
  svc.build(pts);
  const Oracle oracle(pts);

  // Hand every shard to node 1, then back to node 2, checking queries at
  // each step.
  for (std::size_t round = 0; round < 2; ++round) {
    const NodeId dest = static_cast<NodeId>(1 + round % 2);
    const std::size_t shards = svc.num_shards();
    for (std::size_t i = 0; i < shards; ++i) svc.migrate(i, dest);
    const auto owners = svc.stats().coordinator.shard_owners;
    for (NodeId o : owners) EXPECT_EQ(o, dest);
    check_query_equivalence(svc, oracle, 13 + round);
    expect_same_multiset(svc.flatten(), pts);
  }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: handoff under concurrent writers + readers
// ---------------------------------------------------------------------------

TEST(DistributedLoopback, HandoffUnderConcurrentWritersAndReaders) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;
  Service svc(fabric, 2, cfg);
  const auto base = uniform_points(2000, 21);
  svc.build(base);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  // 2 writers: disjoint coordinate stripes, monotone inserts.
  std::vector<std::vector<point_t>> writer_pts(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40 && !stop.load(); ++i) {
        std::vector<point_t> batch;
        for (int j = 0; j < 25; ++j) {
          // Strictly outside the readers' base box (x > kMax).
          batch.push_back(point_t{{kMax + 1 + 1000 * t + i, j}});
        }
        svc.insert_batch(batch);
        writer_pts[static_cast<std::size_t>(t)].insert(
            writer_pts[static_cast<std::size_t>(t)].end(), batch.begin(),
            batch.end());
      }
    });
  }
  // 2 readers: range counts over the stable base region must always see
  // every base point (writers only add outside it, and handoffs must
  // never lose or duplicate). kNN must always return exactly k.
  const box_t base_box{{{0, 0}}, {{kMax, kMax}}};
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        EXPECT_EQ(svc.range_count(base_box), base.size());
        EXPECT_EQ(svc.knn(point_t{{kMax / 2, kMax / 2}}, 5).size(), 5u);
        reads.fetch_add(1);
      }
    });
  }

  // Meanwhile: bounce every shard between the two nodes, repeatedly.
  for (int round = 0; round < 6; ++round) {
    const NodeId dest = static_cast<NodeId>(1 + round % 2);
    const std::size_t shards = svc.num_shards();
    for (std::size_t i = 0; i < shards; ++i) {
      svc.migrate(i % svc.num_shards(), dest);
    }
  }
  // Let the readers observe the final placement too.
  while (reads.load() < 20) std::this_thread::yield();
  stop.store(true);
  for (auto& th : threads) th.join();

  // No lost or duplicated points anywhere.
  std::vector<point_t> expected = base;
  for (const auto& wp : writer_pts) {
    expected.insert(expected.end(), wp.begin(), wp.end());
  }
  EXPECT_EQ(svc.size(), expected.size());
  expect_same_multiset(svc.flatten(), expected);
  EXPECT_GT(svc.stats().coordinator.migrations, 0u);
}

// ---------------------------------------------------------------------------
// Version piggyback + client cache
// ---------------------------------------------------------------------------

TEST(DistributedLoopback, CrossEpochCacheHitsForUntouchedShards) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;
  Service svc(fabric, 2, cfg);
  svc.build(uniform_points(4000, 31));

  // A box confined to the low-code corner: routed to the first shard(s).
  const box_t cold{{{0, 0}}, {{kMax / 8, kMax / 8}}};
  const std::size_t count0 = svc.range_count_cached(cold);
  const auto list0 = svc.range_list_cached(cold);
  const auto s0 = svc.stats();
  EXPECT_EQ(s0.cache_hits, 0u);

  // Commit confined to the high-code corner: different shards entirely.
  std::vector<point_t> hot;
  for (int i = 0; i < 50; ++i) hot.push_back(point_t{{kMax - 1 - i, kMax - 1}});
  const std::uint64_t epoch_before = svc.epoch();
  svc.insert_batch(hot);
  EXPECT_GT(svc.epoch(), epoch_before);

  // Same queries: served from cache ACROSS the epoch boundary — the
  // piggybacked/route versions of the cold shards did not change.
  EXPECT_EQ(svc.range_count_cached(cold), count0);
  const auto list1 = svc.range_list_cached(cold);
  EXPECT_EQ(list0.get(), list1.get());  // the very same shared vector
  const auto s1 = svc.stats();
  EXPECT_GE(s1.cache_hits, 2u);
  EXPECT_GE(s1.cache_cross_epoch_hits, 2u);

  // Now touch the cold corner itself: entries must invalidate.
  svc.insert_batch({point_t{{1, 1}}});
  EXPECT_EQ(svc.range_count_cached(cold), count0 + 1);
  const auto s2 = svc.stats();
  EXPECT_GT(s2.cache_misses, s1.cache_misses);
}

TEST(DistributedLoopback, BallCacheAndMigrationInvalidation) {
  LoopbackTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;
  Service svc(fabric, 2, cfg);
  const auto pts = uniform_points(3000, 41);
  svc.build(pts);
  const Oracle oracle(pts);

  const point_t q{{kMax / 2, kMax / 2}};
  const auto b0 = svc.ball_list_cached(q, 2000.0);
  expect_same_multiset(*b0, oracle.idx.ball_list(q, 2000.0));
  const auto b1 = svc.ball_list_cached(q, 2000.0);
  EXPECT_EQ(b0.get(), b1.get());  // hit

  // A migration flips the topology stamp: coverage is stale, next lookup
  // misses and recomputes (same result, freshly fetched from new owner).
  svc.migrate(0, 2);
  const auto misses_before = svc.stats().cache_misses;
  const auto b2 = svc.ball_list_cached(q, 2000.0);
  expect_same_multiset(*b2, oracle.idx.ball_list(q, 2000.0));
  EXPECT_GT(svc.stats().cache_misses, misses_before);
}

// ---------------------------------------------------------------------------
// Real TCP on localhost
// ---------------------------------------------------------------------------

TEST(DistributedTcp, OracleEquivalenceOverLocalhost) {
  const auto pts = uniform_points(2500, 51);
  const Oracle oracle(pts);
  TcpTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  Service svc(fabric, 2, cfg);
  svc.build(pts);
  EXPECT_EQ(svc.size(), pts.size());
  check_query_equivalence(svc, oracle, 61);
}

TEST(DistributedTcp, CommitsQueriesAndHandoffOverLocalhost) {
  TcpTransport fabric;
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;
  Service svc(fabric, 2, cfg);
  const auto base = uniform_points(1500, 71);
  svc.build(base);

  std::atomic<bool> stop{false};
  const box_t base_box{{{0, 0}}, {{kMax, kMax}}};
  std::thread reader([&] {
    while (!stop.load()) {
      EXPECT_EQ(svc.range_count(base_box), base.size());
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      svc.insert_batch({point_t{{kMax + 7, i}}});
    }
  });

  for (int round = 0; round < 4; ++round) {
    const NodeId dest = static_cast<NodeId>(1 + round % 2);
    for (std::size_t i = 0; i < svc.num_shards(); ++i) svc.migrate(i, dest);
  }
  writer.join();
  stop.store(true);
  reader.join();

  std::vector<point_t> expected = base;
  for (int i = 0; i < 20; ++i) expected.push_back(point_t{{kMax + 7, i}});
  expect_same_multiset(svc.flatten(), expected);

  // Cross-epoch cache over real sockets too.
  const box_t cold{{{0, 0}}, {{kMax / 8, kMax / 8}}};
  const auto c0 = svc.range_count_cached(cold);
  svc.insert_batch({point_t{{kMax - 2, kMax - 2}}});
  EXPECT_EQ(svc.range_count_cached(cold), c0);
  EXPECT_GE(svc.stats().cache_cross_epoch_hits, 1u);
}

TEST(DistributedTcp, ProtocolVersionSkewIsRejected) {
  TcpTransport fabric;
  std::atomic<int> calls{0};
  fabric.bind(9, [&](NodeId, Message m) {
    ++calls;
    return m;  // echo
  });
  // A well-formed call works.
  WireWriter w;
  w.put_string("ping");
  Message reply = fabric.call(9, std::move(w).finish(MsgType::kOk));
  WireReader r(reply);
  EXPECT_EQ(r.get_string(), "ping");
  EXPECT_EQ(calls.load(), 1);

  // Now a version-skewed frame over the actual socket: the server must
  // drop the connection without invoking the handler, and keep serving
  // well-formed peers afterwards.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fabric.port_of(9));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    WireWriter skew;
    skew.put_string("from the future");
    std::vector<std::uint8_t> frame =
        encode_frame(std::move(skew).finish(MsgType::kOk));
    frame[6] = 99;  // bump the version half-word past kWireVersion
    ASSERT_EQ(::write(fd, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    // Server response to skew: connection closed, no reply bytes.
    std::uint8_t buf[8];
    EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);
    ::close(fd);
  }
  EXPECT_EQ(calls.load(), 1);  // the skewed frame never reached the handler

  // The node still answers well-formed calls on fresh connections.
  WireWriter w2;
  w2.put_string("still here");
  Message reply2 = fabric.call(9, std::move(w2).finish(MsgType::kOk));
  WireReader r2(reply2);
  EXPECT_EQ(r2.get_string(), "still here");
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace psi::net
