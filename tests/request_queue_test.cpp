// Shutdown coverage for service/request_queue.h: what happens to queued
// requests and their futures when the consumer stops?
//
//  * SpatialService::stop() / ~SpatialService drain the queue, so every
//    submitted future resolves — no submitter ever hangs on .get().
//  * A RequestQueue destroyed with requests still queued destroys their
//    promises: waiting futures observe std::future_error
//    (broken_promise), not a hang and not a read of freed queue state.
//  * close() wakes blocked consumers and keeps accepting pushes (flush
//    drains them); reopen() restores blocking waits.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "psi/service/request_queue.h"
#include "psi/service/service.h"
#include "psi/core/spac/spac_tree.h"

namespace psi::service {
namespace {

using Queue = RequestQueue<std::int64_t, 2>;
using Req = Request<std::int64_t, 2>;
using Service = SpatialService<SpacZTree2>;

TEST(RequestQueueShutdown, BrokenPromisesNotHangs) {
  std::future<Queue::result_t> update_fut, query_fut;
  {
    Queue q;
    update_fut = q.push(Req::insert({{1, 2}}));
    query_fut = q.push(Req::knn({{1, 2}}, 3));
    q.close();
    // Queue dies here with both requests still queued.
  }
  EXPECT_THROW(update_fut.get(), std::future_error);
  EXPECT_THROW(query_fut.get(), std::future_error);
}

TEST(RequestQueueShutdown, CloseWakesBlockedConsumer) {
  Queue q;
  std::thread consumer([&] {
    // Must return (empty) once closed instead of blocking forever.
    auto group = q.wait_drain();
    EXPECT_TRUE(group.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(q.closed());

  // close() still accepts pushes (stop() drains them via flush()).
  auto fut = q.push(Req::insert({{3, 4}}));
  EXPECT_EQ(q.size(), 1u);
  q.reopen();
  EXPECT_FALSE(q.closed());
  auto group = q.drain();
  ASSERT_EQ(group.size(), 1u);
  group[0].promise.set_value({});
  fut.get();
}

TEST(RequestQueueShutdown, ServiceStopResolvesQueuedFutures) {
  Service svc;
  svc.start();
  svc.stop();  // committer gone; queue reopens only on start()
  // Submitted after stop: nothing is draining these until the service dies.
  auto f1 = svc.submit_insert({{10, 10}});
  auto f2 = svc.submit_range_count(Box2{{{0, 0}}, {{100, 100}}});
  EXPECT_GE(svc.queued(), 1u);
  svc.flush();  // manual pump resolves them
  // Construction publishes epoch 1; this first commit group is epoch 2.
  EXPECT_EQ(f1.get().epoch, 2u);
  EXPECT_EQ(f2.get().count, 1u);
}

TEST(RequestQueueShutdown, ServiceDestructorResolvesPendingFutures) {
  std::vector<std::future<Service::result_t>> futs;
  {
    Service svc;
    for (int i = 0; i < 64; ++i) {
      futs.push_back(svc.submit_insert({{i, i}}));
    }
    futs.push_back(svc.submit_knn({{0, 0}}, 5));
    // Service destroyed with 65 queued requests: the destructor's
    // stop()+flush() must resolve every one before the promises die.
  }
  for (std::size_t i = 0; i + 1 < futs.size(); ++i) {
    EXPECT_NO_THROW(futs[i].get());
  }
  EXPECT_EQ(futs.back().get().points.size(), 5u);
}

TEST(RequestQueueShutdown, SubmittersRacingStopAllResolve) {
  // 4 submitter threads race a stop(): every future they managed to push
  // must resolve (via the stop-side drain or a later flush), and no
  // submitter may touch freed queue state. Run under TSan in CI.
  auto svc = std::make_unique<Service>();
  svc->start();
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<Service::result_t>>> futs(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        futs[static_cast<std::size_t>(t)].push_back(
            svc->submit_insert({{t * 1000 + i, i}}));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  svc->stop();
  for (auto& th : submitters) th.join();
  svc->flush();  // requests pushed after stop's drain
  std::size_t total = 0;
  for (auto& per_thread : futs) {
    for (auto& f : per_thread) {
      EXPECT_NO_THROW(f.get());
      ++total;
    }
  }
  EXPECT_EQ(total, 800u);
  EXPECT_EQ(svc->size(), 800u);
}

}  // namespace
}  // namespace psi::service
