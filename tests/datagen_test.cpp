// Tests for the dataset generators: determinism, bounds, and the statistical
// shape each distribution is supposed to have (uniform spread, sweepline
// order, varden/osm/cosmo clustering).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "psi/datagen/generators.h"

namespace psi::datagen {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

template <typename P>
void expect_in_bounds(const std::vector<P>& pts, std::int64_t coord_max) {
  for (const auto& p : pts) {
    for (int d = 0; d < P::kDim; ++d) {
      ASSERT_GE(p[d], 0);
      ASSERT_LE(p[d], coord_max);
    }
  }
}

TEST(Datagen, UniformDeterministicAndBounded) {
  auto a = uniform<2>(10000, 42, kMax);
  auto b = uniform<2>(10000, 42, kMax);
  auto c = uniform<2>(10000, 43, kMax);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  expect_in_bounds(a, kMax);
}

TEST(Datagen, UniformCoversAllQuadrantsEvenly) {
  auto pts = uniform<2>(40000, 1, kMax);
  std::array<int, 4> quad{};
  for (const auto& p : pts) {
    const int qi = (p[0] > kMax / 2 ? 1 : 0) + (p[1] > kMax / 2 ? 2 : 0);
    ++quad[static_cast<std::size_t>(qi)];
  }
  for (int q : quad) {
    EXPECT_GT(q, 9000);
    EXPECT_LT(q, 11000);
  }
}

TEST(Datagen, SweeplineSortedOnDim0) {
  auto pts = sweepline<2>(20000, 7, kMax);
  EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end(),
                             [](const auto& a, const auto& b) { return a[0] < b[0]; }));
  expect_in_bounds(pts, kMax);
  // Still uniform overall on dim 1.
  std::size_t above = 0;
  for (const auto& p : pts) above += p[1] > kMax / 2 ? 1 : 0;
  EXPECT_GT(above, pts.size() * 2 / 5);
  EXPECT_LT(above, pts.size() * 3 / 5);
}

TEST(Datagen, VardenIsClustered) {
  // Clustering proxy: the average nearest-consecutive-point distance within
  // a segment is tiny relative to the space, while uniform data is not.
  const std::size_t n = 50000;
  auto v = varden<2>(n, 11, kMax);
  auto u = uniform<2>(n, 11, kMax);
  expect_in_bounds(v, kMax);
  auto mean_step = [](const std::vector<Point2>& pts) {
    double acc = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      acc += std::sqrt(squared_distance(pts[i - 1], pts[i]));
    }
    return acc / static_cast<double>(pts.size() - 1);
  };
  EXPECT_LT(mean_step(v) * 100, mean_step(u));
}

TEST(Datagen, VardenDeterministic) {
  EXPECT_EQ((varden<3>(5000, 3, 1000000)), (varden<3>(5000, 3, 1000000)));
}

TEST(Datagen, OsmSimClusteredAndBounded) {
  const std::size_t n = 50000;
  auto pts = osm_sim(n, 5);
  ASSERT_EQ(pts.size(), n);
  expect_in_bounds(pts, kDefaultMax2D);
  // Clustered: the occupied fraction of a coarse grid is well below uniform.
  auto occupied = [](const std::vector<Point2>& ps, std::int64_t mx) {
    std::set<std::pair<int, int>> cells;
    for (const auto& p : ps) {
      cells.insert({static_cast<int>(p[0] * 64 / (mx + 1)),
                    static_cast<int>(p[1] * 64 / (mx + 1))});
    }
    return cells.size();
  };
  const auto occ_osm = occupied(pts, kDefaultMax2D);
  const auto occ_uni = occupied(uniform<2>(n, 5, kDefaultMax2D), kDefaultMax2D);
  EXPECT_LT(occ_osm, occ_uni);
}

TEST(Datagen, CosmoSimClusteredAndBounded) {
  const std::size_t n = 50000;
  auto pts = cosmo_sim(n, 9);
  ASSERT_EQ(pts.size(), n);
  expect_in_bounds(pts, kDefaultMax3D);
  // Heavy clustering: median pairwise-consecutive distances are small.
  double small = 0;
  for (std::size_t i = 1; i < n; i += 7) {
    if (squared_distance(pts[i - 1], pts[i]) <
        1e-4 * static_cast<double>(kDefaultMax3D) *
            static_cast<double>(kDefaultMax3D)) {
      ++small;
    }
  }
  EXPECT_GT(small, 0);
}

TEST(Datagen, DedupRemovesDuplicatesOnly) {
  std::vector<Point2> pts = {{{1, 1}}, {{2, 2}}, {{1, 1}}, {{3, 3}}, {{2, 2}}};
  auto d = dedup(pts);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
}

TEST(Datagen, IndQueriesNearData) {
  auto data = varden<2>(20000, 13, kMax);
  auto qs = ind_queries(data, 500, 13, kMax);
  ASSERT_EQ(qs.size(), 500u);
  expect_in_bounds(qs, kMax);
  // Each InD query must be close to *some* data point (it was jittered from
  // one by <= kMax/100000 per axis).
  const double max_jit = 2.0 * (kMax / 100000.0) * (kMax / 100000.0) * 2;
  for (std::size_t i = 0; i < 20; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : data) best = std::min(best, squared_distance(qs[i], p));
    EXPECT_LE(best, max_jit);
  }
}

TEST(Datagen, OodQueriesUniform) {
  auto qs = ood_queries<2>(10000, 17, kMax);
  expect_in_bounds(qs, kMax);
  std::size_t above = 0;
  for (const auto& q : qs) above += q[0] > kMax / 2 ? 1 : 0;
  EXPECT_GT(above, 4000u);
  EXPECT_LT(above, 6000u);
}

TEST(Datagen, RangeBoxesClampedAndSized) {
  std::vector<Point2> anchors = {{{0, 0}}, {{kMax, kMax}}, {{kMax / 2, kMax / 2}}};
  auto boxes = range_boxes(anchors, 1000, kMax);
  ASSERT_EQ(boxes.size(), 3u);
  EXPECT_EQ(boxes[0].lo, (Point2{{0, 0}}));
  EXPECT_EQ(boxes[1].hi, (Point2{{kMax, kMax}}));
  EXPECT_EQ(boxes[2].hi[0] - boxes[2].lo[0], 1000);
  for (const auto& b : boxes) {
    EXPECT_FALSE(b.is_empty());
    EXPECT_TRUE(b.contains(Point2{{b.lo[0], b.lo[1]}}));
  }
}

}  // namespace
}  // namespace psi::datagen
