// Tests for the space-filling-curve substrate: Morton bit interleaving,
// Hilbert (Skilling transform) bijectivity and locality, and the codec
// wrappers' order properties.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "psi/parallel/random.h"
#include "psi/sfc/codec.h"
#include "psi/sfc/hilbert.h"
#include "psi/sfc/morton.h"

namespace psi::sfc {
namespace {

// ---------------------------------------------------------------------------
// Morton
// ---------------------------------------------------------------------------

TEST(Morton, SpreadCompactRoundTrip2D) {
  Rng rng(1);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.ith(i) & 0xffffffffULL;
    EXPECT_EQ(compact_bits_2d(spread_bits_2d(x)), x);
  }
}

TEST(Morton, SpreadCompactRoundTrip3D) {
  Rng rng(2);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.ith(i) & 0x1fffffULL;
    EXPECT_EQ(compact_bits_3d(spread_bits_3d(x)), x);
  }
}

TEST(Morton, EncodeDecodeRoundTrip2D) {
  Rng rng(3);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.ith(2 * i) & 0xffffffffULL;
    const std::uint64_t y = rng.ith(2 * i + 1) & 0xffffffffULL;
    std::uint64_t dx, dy;
    morton2d_decode(morton2d(x, y), dx, dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(Morton, EncodeDecodeRoundTrip3D) {
  Rng rng(4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.ith(3 * i) & 0x1fffffULL;
    const std::uint64_t y = rng.ith(3 * i + 1) & 0x1fffffULL;
    const std::uint64_t z = rng.ith(3 * i + 2) & 0x1fffffULL;
    std::uint64_t dx, dy, dz;
    morton3d_decode(morton3d(x, y, z), dx, dy, dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, KnownSmallValues) {
  // Interleave of (x=1, y=0) -> bit 0; (x=0, y=1) -> bit 1.
  EXPECT_EQ(morton2d(0, 0), 0u);
  EXPECT_EQ(morton2d(1, 0), 1u);
  EXPECT_EQ(morton2d(0, 1), 2u);
  EXPECT_EQ(morton2d(1, 1), 3u);
  EXPECT_EQ(morton2d(2, 0), 4u);
  EXPECT_EQ(morton3d(1, 0, 0), 1u);
  EXPECT_EQ(morton3d(0, 1, 0), 2u);
  EXPECT_EQ(morton3d(0, 0, 1), 4u);
}

TEST(Morton, ZOrderVisitsQuadrantsInOrder) {
  // All points of quadrant (x<2^31, y<2^31) come before any point with the
  // top y bit set — the defining prefix property of the Z curve.
  const std::uint64_t half = 1ULL << 31;
  EXPECT_LT(morton2d(half - 1, half - 1), morton2d(0, half));
  EXPECT_LT(morton2d(0, half), morton2d(half, half));
}

// ---------------------------------------------------------------------------
// Hilbert
// ---------------------------------------------------------------------------

TEST(Hilbert, FirstOrder2DCurveIsUShape) {
  // The 4 cells of the order-1 2D Hilbert curve in visit order:
  // (0,0) (0,1) (1,1) (1,0).
  std::vector<std::array<std::uint64_t, 2>> visit(4);
  for (std::uint64_t c = 0; c < 4; ++c) visit[c] = hilbert_decode<2>(c, 1);
  EXPECT_EQ(visit[0], (std::array<std::uint64_t, 2>{0, 0}));
  EXPECT_EQ(visit[3][0] + visit[3][1], 1u);  // ends adjacent to start quadrant
  // All distinct.
  std::set<std::pair<std::uint64_t, std::uint64_t>> cells;
  for (auto& v : visit) cells.insert({v[0], v[1]});
  EXPECT_EQ(cells.size(), 4u);
}

class HilbertBits : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Bits, HilbertBits, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_P(HilbertBits, Bijection2DOnFullGrid) {
  const int bits = GetParam();
  const std::uint64_t side = 1ULL << bits;
  std::set<std::uint64_t> codes;
  for (std::uint64_t x = 0; x < side; ++x) {
    for (std::uint64_t y = 0; y < side; ++y) {
      const std::uint64_t c = hilbert_encode<2>({x, y}, bits);
      EXPECT_LT(c, side * side);
      codes.insert(c);
      const auto back = hilbert_decode<2>(c, bits);
      EXPECT_EQ(back[0], x);
      EXPECT_EQ(back[1], y);
    }
  }
  EXPECT_EQ(codes.size(), side * side);
}

TEST_P(HilbertBits, Adjacency2D) {
  // Consecutive Hilbert indexes are 4-neighbours on the grid: the locality
  // property that makes Hilbert better for queries than Morton (Sec 5.1.3).
  const int bits = GetParam();
  const std::uint64_t total = 1ULL << (2 * bits);
  auto prev = hilbert_decode<2>(0, bits);
  for (std::uint64_t c = 1; c < total; ++c) {
    const auto cur = hilbert_decode<2>(c, bits);
    const std::uint64_t manhattan =
        (cur[0] > prev[0] ? cur[0] - prev[0] : prev[0] - cur[0]) +
        (cur[1] > prev[1] ? cur[1] - prev[1] : prev[1] - cur[1]);
    ASSERT_EQ(manhattan, 1u) << "at code " << c;
    prev = cur;
  }
}

TEST(Hilbert, Adjacency3D) {
  const int bits = 3;
  const std::uint64_t total = 1ULL << (3 * bits);
  auto prev = hilbert_decode<3>(0, bits);
  for (std::uint64_t c = 1; c < total; ++c) {
    const auto cur = hilbert_decode<3>(c, bits);
    std::uint64_t manhattan = 0;
    for (int d = 0; d < 3; ++d) {
      manhattan += cur[static_cast<std::size_t>(d)] > prev[static_cast<std::size_t>(d)]
                       ? cur[static_cast<std::size_t>(d)] - prev[static_cast<std::size_t>(d)]
                       : prev[static_cast<std::size_t>(d)] - cur[static_cast<std::size_t>(d)];
    }
    ASSERT_EQ(manhattan, 1u) << "at code " << c;
    prev = cur;
  }
}

TEST(Hilbert, Bijection3DSample) {
  const int bits = 21;
  Rng rng(7);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    std::array<std::uint64_t, 3> p = {rng.ith(3 * i) & 0x1fffffULL,
                                      rng.ith(3 * i + 1) & 0x1fffffULL,
                                      rng.ith(3 * i + 2) & 0x1fffffULL};
    const std::uint64_t c = hilbert_encode<3>(p, bits);
    EXPECT_EQ(hilbert_decode<3>(c, bits), p);
  }
}

TEST(Hilbert, Bijection2DFullPrecisionSample) {
  const int bits = 32;
  Rng rng(8);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    std::array<std::uint64_t, 2> p = {rng.ith(2 * i) & 0xffffffffULL,
                                      rng.ith(2 * i + 1) & 0xffffffffULL};
    const std::uint64_t c = hilbert_encode<2>(p, bits);
    EXPECT_EQ(hilbert_decode<2>(c, bits), p);
  }
}

// ---------------------------------------------------------------------------
// Fast 2D Hilbert path (used by the 2D codecs)
// ---------------------------------------------------------------------------

TEST_P(HilbertBits, Fast2DBijectionOnFullGrid) {
  const int bits = GetParam();
  const std::uint64_t side = 1ULL << bits;
  std::set<std::uint64_t> codes;
  for (std::uint64_t x = 0; x < side; ++x) {
    for (std::uint64_t y = 0; y < side; ++y) {
      const std::uint64_t c = hilbert2d_fast(x, y, bits);
      EXPECT_LT(c, side * side);
      codes.insert(c);
      std::uint64_t dx, dy;
      hilbert2d_fast_decode(c, bits, dx, dy);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
    }
  }
  EXPECT_EQ(codes.size(), side * side);
}

TEST_P(HilbertBits, Fast2DAdjacency) {
  const int bits = GetParam();
  const std::uint64_t total = 1ULL << (2 * bits);
  std::uint64_t px, py;
  hilbert2d_fast_decode(0, bits, px, py);
  for (std::uint64_t c = 1; c < total; ++c) {
    std::uint64_t x, y;
    hilbert2d_fast_decode(c, bits, x, y);
    const std::uint64_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "at code " << c;
    px = x;
    py = y;
  }
}

TEST(Hilbert, LutMatchesRotateFormulationExhaustiveSmall) {
  // The table-driven encoder must trace the exact same curve as the
  // rotate-and-accumulate formulation (hilbert2d_fast at 32 bits).
  for (std::uint64_t x = 0; x < 64; ++x) {
    for (std::uint64_t y = 0; y < 64; ++y) {
      ASSERT_EQ(hilbert2d_lut(x, y), hilbert2d_fast(x, y, 32))
          << "(" << x << "," << y << ")";
    }
  }
}

TEST(Hilbert, LutMatchesRotateFormulationRandom) {
  Rng rng(21);
  for (std::uint64_t i = 0; i < 50000; ++i) {
    const std::uint64_t x = rng.ith(2 * i) & 0xffffffffULL;
    const std::uint64_t y = rng.ith(2 * i + 1) & 0xffffffffULL;
    ASSERT_EQ(hilbert2d_lut(x, y), hilbert2d_fast(x, y, 32));
  }
}

TEST(Hilbert, Fast2DFullPrecisionRoundTrip) {
  Rng rng(12);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const std::uint64_t x = rng.ith(2 * i) & 0xffffffffULL;
    const std::uint64_t y = rng.ith(2 * i + 1) & 0xffffffffULL;
    const std::uint64_t c = hilbert2d_fast(x, y, 32);
    std::uint64_t dx, dy;
    hilbert2d_fast_decode(c, 32, dx, dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

TEST(Codec, MortonCodecMatchesRawMorton) {
  Rng rng(9);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Point2 p{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, 1000000000)),
              static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, 1000000000))}};
    EXPECT_EQ((MortonCodec<std::int64_t, 2>::encode(p)),
              morton2d(static_cast<std::uint64_t>(p[0]),
                       static_cast<std::uint64_t>(p[1])));
  }
}

TEST(Codec, HilbertCodecInjectiveOnSample) {
  Rng rng(10);
  std::set<std::uint64_t> codes;
  const std::size_t n = 10000;
  std::set<std::pair<std::int64_t, std::int64_t>> pts;
  for (std::uint64_t i = 0; pts.size() < n; ++i) {
    Point2 p{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, 1000000000)),
              static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, 1000000000))}};
    if (!pts.insert({p[0], p[1]}).second) continue;
    codes.insert((HilbertCodec<std::int64_t, 2>::encode(p)));
  }
  EXPECT_EQ(codes.size(), n);  // distinct points -> distinct codes
}

TEST(Codec, LocalityHilbertBeatsMortonOnAverage) {
  // Average grid distance between consecutive codes over a random code walk:
  // Hilbert consecutive codes are always adjacent; Morton jumps. We verify
  // the qualitative claim used in Sec 5.1.3.
  const int bits = 8;
  const std::uint64_t total = 1ULL << (2 * bits);
  double morton_jump = 0, hilbert_jump = 0;
  std::uint64_t px_m = 0, py_m = 0;
  auto ph = hilbert_decode<2>(0, bits);
  for (std::uint64_t c = 1; c < total; ++c) {
    std::uint64_t x, y;
    morton2d_decode(c, x, y);
    morton_jump += std::abs(static_cast<double>(x) - static_cast<double>(px_m)) +
                   std::abs(static_cast<double>(y) - static_cast<double>(py_m));
    px_m = x;
    py_m = y;
    const auto cur = hilbert_decode<2>(c, bits);
    hilbert_jump += std::abs(static_cast<double>(cur[0]) - static_cast<double>(ph[0])) +
                    std::abs(static_cast<double>(cur[1]) - static_cast<double>(ph[1]));
    ph = cur;
  }
  EXPECT_LT(hilbert_jump, morton_jump);
  EXPECT_DOUBLE_EQ(hilbert_jump, static_cast<double>(total - 1));
}

TEST(Codec, ThreeDimensionalCodecsRoundTripOrder) {
  // Codes must be monotone along each axis within a fixed cell for the
  // prefix property used by the Zd-tree; spot-check Morton 3D prefix order.
  Point3 a{{0, 0, 0}}, b{{1, 0, 0}}, c{{0, 0, 1}};
  const auto ca = (MortonCodec<std::int64_t, 3>::encode(a));
  const auto cb = (MortonCodec<std::int64_t, 3>::encode(b));
  const auto cc = (MortonCodec<std::int64_t, 3>::encode(c));
  EXPECT_LT(ca, cb);
  EXPECT_LT(cb, cc);
}

}  // namespace
}  // namespace psi::sfc
