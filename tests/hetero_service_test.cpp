// psi::service over psi::api::AnyIndex: heterogeneous per-shard backends.
//
// One SpatialService runs *different index structures on different shards*
// (the per-shard factory receives the shard id): SPaC-Z on hot shards, a
// log-structured baseline on cold shards. These tests drive such services
// through skewed (varden) insert streams that force shard split/merge —
// migrating points across backend types — and validate against the
// brute-force oracle, including the 4-writer/4-reader concurrency stress
// and the ball-query + streaming-sink read paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;
using namespace psi::service;

constexpr std::int64_t kMax = 1'000'000'000;

using AnyService = SpatialService<api::AnyIndex2>;

Box2 box_around(const Point2& c, std::int64_t half) {
  return testutil::box_around(c, half, kMax);
}

// Even shard ids run SPaC-Z, odd ids the given cold backend — after any
// split/merge history the service keeps a mix of both types.
AnyService::factory_t mixed_factory(const std::string& cold) {
  return [cold](std::size_t shard_id) {
    auto& reg = api::BackendRegistry2::instance();
    return shard_id % 2 == 0 ? reg.make("spac-z") : reg.make(cold);
  };
}

// Distinct backend names across the current view's shards.
std::set<std::string> backend_mix(const AnyService& svc) {
  std::set<std::string> names;
  auto snap = svc.snapshot();
  for (const auto& shard : snap.view().shards) {
    names.insert(shard->backend_name());
  }
  return names;
}

// De-duplicated varden stream: keeps the skew, removes duplicate points so
// the set-semantics LogTree backend stays oracle-exact under deletes.
std::vector<Point2> unique_varden(std::size_t n, std::uint64_t seed) {
  auto pts = datagen::varden<2>(n, seed, kMax);
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

// ---------------------------------------------------------------------------
// Two backend types in one service
// ---------------------------------------------------------------------------

TEST(HeteroService, RunsTwoBackendTypesAndMatchesOracle) {
  AnyService svc(ServiceConfig{.initial_shards = 4}, mixed_factory("log"));
  auto pts = unique_varden(12000, 3);
  svc.build(pts);

  const auto mix = backend_mix(svc);
  ASSERT_GE(mix.size(), 2u) << "service is not heterogeneous";
  EXPECT_TRUE(mix.count("spac-z"));
  EXPECT_TRUE(mix.count("log"));

  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto snap = svc.snapshot();
  auto knn_q = datagen::ind_queries(pts, 16, 7, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 30));
  testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
}

TEST(HeteroService, SkewedStreamSplitsAndMergesAcrossBackendTypes) {
  ServiceConfig cfg;
  cfg.initial_shards = 2;
  cfg.split_threshold = 1500;  // force splits on a skewed stream
  cfg.merge_threshold = 400;
  cfg.min_shards = 1;
  AnyService svc(cfg, mixed_factory("log"));
  BruteForceIndex<std::int64_t, 2> oracle;

  // Skewed (varden) insert stream in FIFO batches, with rolling deletes of
  // earlier points: shards covering dense curve ranges overflow and split,
  // migrating points between SPaC-Z and LogTree instances.
  auto pts = unique_varden(16000, 41);
  const std::size_t batch = 2000;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const std::size_t hi = std::min(pts.size(), lo + batch);
    std::vector<Point2> ins(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                            pts.begin() + static_cast<std::ptrdiff_t>(hi));
    svc.submit_insert_batch(ins);
    oracle.batch_insert(ins);
    if (lo >= batch) {
      std::vector<Point2> del(
          pts.begin() + static_cast<std::ptrdiff_t>(lo - batch),
          pts.begin() + static_cast<std::ptrdiff_t>(lo - batch / 2));
      svc.submit_delete_batch(del);
      oracle.batch_delete(del);
    }
    svc.flush();
    ASSERT_EQ(svc.size(), oracle.size());
  }

  auto st = svc.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_GE(backend_mix(svc).size(), 2u)
      << "split/merge history erased the heterogeneity";
  {
    auto snap = svc.snapshot();
    testutil::expect_same_multiset(snap.flatten(), oracle.points());
    auto knn_q = datagen::ind_queries(oracle.points(), 12, 43, kMax);
    std::vector<Box2> ranges;
    for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 30));
    testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
  }  // drop the snapshot before the delete-heavy phase pins replicas

  // Shrink: deletes collapse underfull shards (merges migrate points too).
  std::vector<Point2> survivors = oracle.points();
  std::vector<Point2> del(survivors.begin(), survivors.end() - 200);
  svc.submit_delete_batch(del);
  oracle.batch_delete(del);
  svc.flush();
  st = svc.stats();
  EXPECT_GT(st.merges, 0u);
  ASSERT_EQ(svc.size(), 200u);
  testutil::expect_same_multiset(svc.snapshot().flatten(), oracle.points());
}

// ---------------------------------------------------------------------------
// Ball queries end-to-end (queued dispatch + snapshot path)
// ---------------------------------------------------------------------------

TEST(HeteroService, BallQueriesEndToEnd) {
  AnyService svc(ServiceConfig{.initial_shards = 4}, mixed_factory("bhl"));
  auto pts = datagen::varden<2>(8000, 11, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  // Queued path: the ball query drains in the same group as the inserts
  // and must observe them.
  svc.submit_insert_batch(pts);
  const Point2 centre = pts[100];
  const double radius = static_cast<double>(kMax) / 25;
  auto fut = svc.submit_ball(centre, radius);
  svc.flush();

  auto res = fut.get();
  EXPECT_GT(res.epoch, 0u);
  EXPECT_EQ(res.count, res.points.size());
  testutil::expect_same_multiset(res.points, oracle.ball_list(centre, radius));

  // Snapshot path: count, list, and streaming visit agree with the oracle.
  auto snap = svc.snapshot();
  for (const auto& q : datagen::ind_queries(pts, 12, 13, kMax)) {
    EXPECT_EQ(snap.ball_count(q, radius), oracle.ball_count(q, radius));
    testutil::expect_same_multiset(snap.ball_list(q, radius),
                                   oracle.ball_list(q, radius));
    std::vector<Point2> streamed;
    snap.ball_visit(q, radius, [&](const Point2& p) { streamed.push_back(p); });
    testutil::expect_same_multiset(streamed, oracle.ball_list(q, radius));
  }

  // Stats counted the queued ball op.
  EXPECT_EQ(svc.stats().ops_ball, 1u);
}

// ---------------------------------------------------------------------------
// Streaming snapshot reads
// ---------------------------------------------------------------------------

TEST(HeteroService, SnapshotVisitsStreamAndStopEarly) {
  AnyService svc(ServiceConfig{.initial_shards = 8}, mixed_factory("pkd"));
  auto pts = datagen::uniform<2>(10000, 17, kMax);
  svc.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  auto snap = svc.snapshot();
  const Box2 big{{{0, 0}}, {{kMax, kMax}}};

  // Full stream covers every shard with no intermediate vectors.
  std::size_t streamed = 0;
  snap.range_visit(big, [&](const Point2&) { ++streamed; });
  EXPECT_EQ(streamed, pts.size());

  // Early termination stops across shard boundaries mid-fan-out.
  std::size_t seen = 0;
  snap.range_visit(big, [&](const Point2&) { return ++seen < 100; });
  EXPECT_EQ(seen, 100u);

  // Parity with the materialising adapter on a selective box.
  const Box2 sel = box_around(pts[4], kMax / 20);
  std::vector<Point2> got;
  snap.range_visit(sel, [&](const Point2& p) { got.push_back(p); });
  testutil::expect_same_multiset(got, oracle.range_list(sel));

  // knn_visit streams ranked results.
  const Point2 q = pts[9];
  std::vector<Point2> nn;
  snap.knn_visit(q, 10, [&](const Point2& p) { nn.push_back(p); });
  testutil::expect_knn_equivalent(nn, q, oracle.knn_distances(q, 10));
}

// ---------------------------------------------------------------------------
// Cheap accessors
// ---------------------------------------------------------------------------

TEST(HeteroService, SizeAndEpochAreCheapAndConsistent) {
  AnyService svc(ServiceConfig{.initial_shards = 4}, mixed_factory("log"));
  EXPECT_EQ(svc.size(), 0u);
  const std::uint64_t e0 = svc.epoch();

  auto pts = datagen::uniform<2>(3000, 19, kMax);
  svc.submit_insert_batch(pts);
  EXPECT_EQ(svc.size(), 0u);  // not visible before the commit
  svc.flush();
  EXPECT_EQ(svc.epoch(), e0 + 1);
  EXPECT_EQ(svc.size(), pts.size());

  // The atomic observers agree with a full snapshot, without pinning one.
  auto snap = svc.snapshot();
  EXPECT_EQ(svc.size(), snap.size());
  EXPECT_EQ(svc.epoch(), snap.epoch());
}

// ---------------------------------------------------------------------------
// Concurrency stress: 4 writers + 4 readers over a mixed-backend service
// (same oracle protocol as service_stress_test.cpp).
// ---------------------------------------------------------------------------

class Oracle {
 public:
  void insert(const std::vector<Point2>& pts) {
    std::lock_guard<std::mutex> g(mu_);
    index_.batch_insert(pts);
  }
  void remove(const std::vector<Point2>& pts) {
    std::lock_guard<std::mutex> g(mu_);
    index_.batch_delete(pts);
  }
  BruteForceIndex<std::int64_t, 2> copy() const {
    std::lock_guard<std::mutex> g(mu_);
    return index_;
  }

 private:
  mutable std::mutex mu_;
  BruteForceIndex<std::int64_t, 2> index_;
};

TEST(HeteroServiceStress, WritersAndReadersAgainstOracle) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 2;
  constexpr std::size_t kPerRound = 3000;

  ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = 5000;  // force splits (and type migration) mid-flight
  cfg.merge_threshold = 64;
  cfg.commit_interval_ms = 1;
  // bhl keeps exact multiset semantics under concurrent duplicate-free
  // streams while exercising a rebuild-on-update backend next to SPaC-Z.
  AnyService svc(cfg, mixed_factory("bhl"));
  svc.start();

  Oracle oracle;
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> reader_queries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(2000 + r));
      std::uint64_t i = 0;
      std::uint64_t last_epoch = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        auto snap = svc.snapshot();
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        Point2 q{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, kMax)),
                  static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, kMax))}};
        ++i;
        // Internal consistency of one pinned epoch, across the streaming
        // and materialising read paths.
        const Box2 b = box_around(q, kMax / 25);
        const std::size_t cnt = snap.range_count(b);
        std::size_t streamed = 0;
        snap.range_visit(b, [&](const Point2&) { ++streamed; });
        ASSERT_EQ(cnt, streamed);
        auto nn = snap.knn(q, 8);
        for (std::size_t j = 1; j < nn.size(); ++j) {
          ASSERT_LE(squared_distance(nn[j - 1], q),
                    squared_distance(nn[j], q));
        }
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w, round] {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(round * kWriters + w + 101);
        auto mine = datagen::uniform<2>(kPerRound, seed, kMax);
        const std::size_t chunk = 250;
        std::vector<std::future<Result<std::int64_t, 2>>> futs;
        for (std::size_t lo = 0; lo < mine.size(); lo += chunk) {
          const std::size_t hi = std::min(mine.size(), lo + chunk);
          std::vector<Point2> ins(
              mine.begin() + static_cast<std::ptrdiff_t>(lo),
              mine.begin() + static_cast<std::ptrdiff_t>(hi));
          auto fs = svc.submit_insert_batch(ins);
          oracle.insert(ins);
          futs.insert(futs.end(), std::make_move_iterator(fs.begin()),
                      std::make_move_iterator(fs.end()));
          std::vector<Point2> del(
              ins.begin(),
              ins.begin() + static_cast<std::ptrdiff_t>(chunk / 2));
          auto fs2 = svc.submit_delete_batch(del);
          oracle.remove(del);
          futs.insert(futs.end(), std::make_move_iterator(fs2.begin()),
                      std::make_move_iterator(fs2.end()));
          if (lo % (4 * chunk) == 0) {
            futs.push_back(svc.submit_knn(ins[0], 4));
            futs.push_back(svc.submit_ball(ins[0], kMax / 50.0));
          }
        }
        for (auto& f : futs) f.get();
      });
    }
    for (auto& t : writers) t.join();

    svc.flush();
    auto snap = svc.snapshot();
    auto ref = oracle.copy();
    ASSERT_EQ(snap.size(), ref.size());
    testutil::expect_same_multiset(snap.flatten(), ref.points());
    auto knn_q = datagen::ind_queries(ref.points(), 8,
                                      static_cast<std::uint64_t>(round), kMax);
    std::vector<Box2> ranges;
    for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 30));
    testutil::expect_queries_match(snap, ref, knn_q, 10, ranges);
  }

  stop_readers.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reader_queries.load(), 0u);

  const auto st = svc.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_GE(backend_mix(svc).size(), 2u);
  EXPECT_EQ(st.ops_insert,
            static_cast<std::uint64_t>(kWriters) * kRounds * kPerRound);
  EXPECT_EQ(st.ops_delete, st.ops_insert / 2);
  EXPECT_GT(st.ops_ball, 0u);
  svc.stop();
}

}  // namespace
