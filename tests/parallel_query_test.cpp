// The parallel query execution engine, end to end:
//
//  * parallel vs sequential visit equivalence — every registry backend
//    (native fan-out or sequential shim), uniform and varden inputs,
//    PSI_NUM_WORKERS ∈ {1, 2, 4}, with the fork grain forced tiny so the
//    parallel code paths run even on small trees / 1-core CI;
//  * early termination mid-stream through the ConcurrentSink limit;
//  * Snapshot shard fan-out (TaskGroup path) against the sequential one;
//  * the pipelined group commit against the brute-force oracle, on and
//    off, including concurrent writers/readers;
//  * the epoch-keyed query cache (hits, misses, invalidation on commit);
//  * the PSI_GRAIN / set_fork_grain knob.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;
using namespace psi::service;

constexpr std::int64_t kMax = 1'000'000;

// Restore scheduler/grain defaults after each test so suites stay
// order-independent.
class ParallelQueryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_fork_grain(0);
    Scheduler::set_num_workers(1);
  }
};

std::vector<Point2> dataset(const std::string& kind, std::size_t n,
                            std::uint64_t seed) {
  if (kind == "varden") return datagen::varden<2>(n, seed, kMax);
  return datagen::uniform<2>(n, seed, kMax);
}

Box2 centre_box(std::int64_t half) {
  return Box2{{{kMax / 2 - half, kMax / 2 - half}},
              {{kMax / 2 + half, kMax / 2 + half}}};
}

TEST_F(ParallelQueryTest, AllBackendsParallelEqualsSequential) {
  set_fork_grain(128);  // force forking on test-sized trees
  auto& reg = api::BackendRegistry2::instance();
  for (const std::string kind : {"uniform", "varden"}) {
    const auto pts = dataset(kind, 6000, kind == "varden" ? 7 : 5);
    const Point2 q{{kMax / 2, kMax / 2}};
    const double radius = kMax / 4.0;
    const std::vector<Box2> boxes = {
        centre_box(kMax / 3),                    // selective
        Box2{{{0, 0}}, {{kMax, kMax}}},          // everything
        Box2{{{kMax + 1, kMax + 1}}, {{kMax + 2, kMax + 2}}},  // empty
    };
    for (const auto& name : reg.names()) {
      auto index = reg.make(name);
      index.build(pts);
      for (int workers : {1, 2, 4}) {
        Scheduler::set_num_workers(workers);
        for (const auto& box : boxes) {
          api::ConcurrentSink<std::int64_t, 2> sink;
          index.range_visit_par(box, sink);
          testutil::expect_same_multiset(sink.take(), index.range_list(box));
        }
        api::ConcurrentSink<std::int64_t, 2> ball_sink;
        index.ball_visit_par(q, radius, ball_sink);
        testutil::expect_same_multiset(ball_sink.take(),
                                       index.ball_list(q, radius));
      }
      Scheduler::set_num_workers(1);
    }
  }
}

// The native (fully templated) fan-outs, bypassing AnyIndex.
TEST_F(ParallelQueryTest, NativeTreeParallelVisits) {
  set_fork_grain(64);
  Scheduler::set_num_workers(4);
  const auto pts = dataset("uniform", 8000, 11);
  const Box2 box = centre_box(kMax / 4);
  const Point2 q{{kMax / 3, kMax / 3}};
  const double radius = kMax / 5.0;

  auto check = [&](auto index) {
    index.build(pts);
    api::ConcurrentSink<std::int64_t, 2> rs;
    index.range_visit_par(box, rs);
    testutil::expect_same_multiset(rs.take(), index.range_list(box));
    api::ConcurrentSink<std::int64_t, 2> bs;
    index.ball_visit_par(q, radius, bs);
    testutil::expect_same_multiset(bs.take(), index.ball_list(q, radius));
  };
  check(SpacZTree2{});
  check(SpacHTree2{});
  check(POrthTree2{});
  check(ZdTree2{});
  check(PkdTree<std::int64_t, 2>{});
}

// Early termination mid-stream: a limited sink retains exactly
// min(limit, matches) points, sequentially and under parallel fan-out.
TEST_F(ParallelQueryTest, EarlyTerminationWithLimit) {
  set_fork_grain(64);
  const auto pts = dataset("uniform", 6000, 3);
  const Box2 everything{{{0, 0}}, {{kMax, kMax}}};
  SpacZTree2 tree;
  tree.build(pts);
  const std::size_t total = tree.range_count(everything);
  ASSERT_GT(total, 100u);

  for (int workers : {1, 2, 4}) {
    Scheduler::set_num_workers(workers);
    for (std::size_t limit : {std::size_t{1}, std::size_t{97},
                              total, total + 50}) {
      api::ConcurrentSink<std::int64_t, 2> sink(limit);
      tree.range_visit_par(everything, sink);
      EXPECT_EQ(sink.count(), std::min(limit, total))
          << "workers=" << workers << " limit=" << limit;
      if (limit < total) {
        EXPECT_TRUE(sink.stopped());
      }
    }
  }
}

// Snapshot fan-out: the TaskGroup-parallel read path returns the same
// results as the sequential stream, from plain client threads.
TEST_F(ParallelQueryTest, SnapshotParallelFanOut) {
  set_fork_grain(128);
  Scheduler::set_num_workers(4);
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  const auto pts = dataset("varden", 20000, 23);
  svc.build(pts);

  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  auto snap = svc.snapshot();
  const Point2 q{{kMax / 2, kMax / 2}};
  for (std::int64_t half : {kMax / 20, kMax / 4, kMax}) {
    const Box2 box = testutil::box_around(q, half, kMax);
    // Concurrent-sink visit == sequential list == oracle.
    api::ConcurrentSink<std::int64_t, 2> sink;
    snap.range_visit(box, sink);
    testutil::expect_same_multiset(sink.take(), oracle.range_list(box));
    // Materialising adapters (parallel with 4 workers) agree too.
    testutil::expect_same_multiset(snap.range_list(box),
                                   oracle.range_list(box));
    EXPECT_EQ(snap.range_count(box), oracle.range_count(box));
  }
  const double radius = kMax / 6.0;
  testutil::expect_same_multiset(snap.ball_list(q, radius),
                                 oracle.ball_list(q, radius));
  EXPECT_EQ(snap.ball_count(q, radius), oracle.ball_count(q, radius));

  // Early termination across shards.
  const Box2 everything{{{0, 0}}, {{kMax, kMax}}};
  api::ConcurrentSink<std::int64_t, 2> limited(1000);
  snap.range_visit(everything, limited);
  EXPECT_EQ(limited.count(), 1000u);
}

// Pipelined group commit vs the brute-force oracle: deterministic rounds
// of mixed inserts/deletes with splits forced mid-run, pipeline on and
// off; epochs must stay monotone and every future resolve in order.
TEST_F(ParallelQueryTest, PipelinedCommitMatchesOracle) {
  for (bool pipelined : {true, false}) {
    Scheduler::set_num_workers(4);
    ServiceConfig cfg;
    cfg.initial_shards = 2;
    cfg.split_threshold = 3000;  // force topology changes
    cfg.merge_threshold = 64;
    cfg.pipelined_commits = pipelined;
    SpatialService<SpacZTree2> svc(cfg);
    BruteForceIndex<std::int64_t, 2> oracle;

    std::uint64_t last_epoch = 0;
    for (int round = 0; round < 6; ++round) {
      auto mine =
          datagen::uniform<2>(2000, 100 + static_cast<std::uint64_t>(round),
                              kMax);
      auto futs = svc.submit_insert_batch(mine);
      oracle.batch_insert(mine);
      std::vector<Point2> del(mine.begin(),
                              mine.begin() + static_cast<std::ptrdiff_t>(
                                                 mine.size() / 2));
      auto futs2 = svc.submit_delete_batch(del);
      oracle.batch_delete(del);
      svc.flush();
      for (auto& f : futs) EXPECT_GE(f.get().epoch, last_epoch);
      for (auto& f : futs2) EXPECT_GT(f.get().epoch, 0u);
      auto snap = svc.snapshot();
      EXPECT_GE(snap.epoch(), last_epoch);
      last_epoch = snap.epoch();
      ASSERT_EQ(snap.size(), oracle.size()) << "pipelined=" << pipelined;
      testutil::expect_same_multiset(snap.flatten(), oracle.points());
    }
    const auto st = svc.stats();
    EXPECT_GT(st.splits, 0u);
  }
}

// Pipelined commit under concurrency: background committer, writer threads
// with FIFO-safe delete-after-insert traffic, readers asserting snapshot
// consistency; multiset equality with the oracle at the quiesce point.
TEST_F(ParallelQueryTest, PipelinedCommitStress) {
  Scheduler::set_num_workers(4);
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = 4000;
  cfg.merge_threshold = 64;
  cfg.commit_interval_ms = 1;
  cfg.pipelined_commits = true;
  SpatialService<SpacZTree2> svc(cfg);
  svc.start();

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_epoch = 0;
      Rng rng(static_cast<std::uint64_t>(77 + r));
      std::uint64_t i = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        auto snap = svc.snapshot();
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        Point2 q{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, kMax)),
                  static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, kMax))}};
        ++i;
        const Box2 b = testutil::box_around(q, kMax / 10, kMax);
        ASSERT_EQ(snap.range_count(b), snap.range_list(b).size());
      }
    });
  }

  std::mutex oracle_mu;
  BruteForceIndex<std::int64_t, 2> oracle;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      auto mine = datagen::uniform<2>(6000,
                                      static_cast<std::uint64_t>(500 + w),
                                      kMax);
      const std::size_t chunk = 300;
      std::vector<std::future<Result<std::int64_t, 2>>> futs;
      for (std::size_t lo = 0; lo < mine.size(); lo += chunk) {
        const std::size_t hi = std::min(mine.size(), lo + chunk);
        std::vector<Point2> ins(
            mine.begin() + static_cast<std::ptrdiff_t>(lo),
            mine.begin() + static_cast<std::ptrdiff_t>(hi));
        auto fs = svc.submit_insert_batch(ins);
        std::vector<Point2> del(
            ins.begin(), ins.begin() + static_cast<std::ptrdiff_t>(chunk / 2));
        auto fs2 = svc.submit_delete_batch(del);
        {
          std::lock_guard<std::mutex> g(oracle_mu);
          oracle.batch_insert(ins);
          oracle.batch_delete(del);
        }
        futs.insert(futs.end(), std::make_move_iterator(fs.begin()),
                    std::make_move_iterator(fs.end()));
        futs.insert(futs.end(), std::make_move_iterator(fs2.begin()),
                    std::make_move_iterator(fs2.end()));
      }
      for (auto& f : futs) f.get();
    });
  }
  for (auto& t : writers) t.join();
  svc.flush();
  stop_readers.store(true);
  for (auto& t : readers) t.join();

  auto snap = svc.snapshot();
  ASSERT_EQ(snap.size(), oracle.size());
  testutil::expect_same_multiset(snap.flatten(), oracle.points());
  svc.stop();
}

// The epoch-keyed query cache: repeat queries hit, commits invalidate,
// counters surface in stats()/json().
TEST_F(ParallelQueryTest, QueryCacheHitsAndInvalidation) {
  SpatialService<SpacZTree2> svc(ServiceConfig{.initial_shards = 2});
  const auto pts = dataset("uniform", 5000, 42);
  svc.build(pts);
  const Box2 box = centre_box(kMax / 3);

  const auto first = svc.range_list_cached(box);
  const auto again = svc.range_list_cached(box);
  EXPECT_EQ(first.get(), again.get());  // shared materialised result
  EXPECT_EQ(svc.range_count_cached(box), first->size());

  auto st = svc.stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 2u);
  EXPECT_NE(st.json().find("\"cache_hits\":2"), std::string::npos);

  // A commit bumps the epoch: the same box misses and recomputes.
  auto fut = svc.submit_insert(Point2{{kMax / 2, kMax / 2}});
  svc.flush();  // manual mode: flush pumps the queue and resolves the future
  EXPECT_GT(fut.get().epoch, 0u);
  const auto after = svc.range_list_cached(box);
  EXPECT_EQ(after->size(), first->size() + 1);
  st = svc.stats();
  EXPECT_EQ(st.cache_misses, 2u);

  // The cached answers match an uncached snapshot exactly.
  testutil::expect_same_multiset(*after, svc.snapshot().range_list(box));
}

// The PSI_GRAIN knob: runtime override and restore.
TEST_F(ParallelQueryTest, ForkGrainOverride) {
  const std::size_t base = fork_grain();
  EXPECT_GE(base, 1u);
  set_fork_grain(17);
  EXPECT_EQ(fork_grain(), 17u);
  set_fork_grain(0);  // back to env/default
  EXPECT_EQ(fork_grain(), base);
}

}  // namespace
