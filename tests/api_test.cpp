// psi::api unit tests: the streaming query-sink model, the
// BatchDynamicIndex concept, the type-erased AnyIndex, and the
// BackendRegistry.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;

constexpr std::int64_t kMax = 1'000'000'000;

// ---------------------------------------------------------------------------
// Concept: negative case (the positive cases are the static_asserts in
// src/psi/api/conformance.h, compiled into every TU including psi.h).
// ---------------------------------------------------------------------------

struct NotAnIndex {
  using point_t = Point2;
  using box_t = Box2;
  std::size_t size() const { return 0; }
};
static_assert(!api::BatchDynamicIndex<NotAnIndex>);
static_assert(api::BatchDynamicIndex<api::AnyIndex2>);

// ---------------------------------------------------------------------------
// Sink plumbing
// ---------------------------------------------------------------------------

TEST(QuerySinks, AcceptsVoidAndBoolSinks) {
  std::size_t n = 0;
  auto void_sink = [&](const Point2&) { ++n; };
  auto bool_sink = [&](const Point2&) { return ++n < 3; };
  EXPECT_TRUE(api::sink_accept(void_sink, Point2{{1, 1}}));
  EXPECT_TRUE(api::sink_accept(bool_sink, Point2{{1, 1}}));
  EXPECT_FALSE(api::sink_accept(bool_sink, Point2{{1, 1}}));
  EXPECT_EQ(n, 3u);
}

TEST(QuerySinks, PointSinkErasesBothShapes) {
  std::vector<Point2> got;
  auto collector = [&](const Point2& p) { got.push_back(p); };
  api::PointSink<std::int64_t, 2> sink(collector);
  EXPECT_TRUE(sink(Point2{{1, 2}}));
  std::size_t budget = 1;
  auto limited = [&](const Point2&) { return budget-- > 1; };
  api::PointSink<std::int64_t, 2> sink2(limited);
  EXPECT_FALSE(sink2(Point2{{3, 4}}));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Point2{{1, 2}}));
}

// ---------------------------------------------------------------------------
// Streaming queries vs the materialising adapters, on every backend the
// registry knows.
// ---------------------------------------------------------------------------

TEST(StreamingQueries, VisitMatchesListOnEveryBackend) {
  auto pts = datagen::varden<2>(4000, 7, kMax);
  const Point2 centre = pts[123];
  const Box2 range = testutil::box_around(centre, kMax / 20, kMax);
  const double radius = static_cast<double>(kMax) / 30;

  for (const auto& name : api::BackendRegistry2::instance().names()) {
    SCOPED_TRACE(name);
    auto idx = api::BackendRegistry2::instance().make(name);
    idx.build(pts);
    ASSERT_EQ(idx.size(), pts.size());

    // range
    std::vector<Point2> streamed;
    idx.range_visit(range, [&](const Point2& p) { streamed.push_back(p); });
    testutil::expect_same_multiset(streamed, idx.range_list(range));
    EXPECT_EQ(streamed.size(), idx.range_count(range));

    // ball
    streamed.clear();
    idx.ball_visit(centre, radius,
                   [&](const Point2& p) { streamed.push_back(p); });
    testutil::expect_same_multiset(streamed, idx.ball_list(centre, radius));
    EXPECT_EQ(streamed.size(), idx.ball_count(centre, radius));

    // knn: streamed in increasing distance order, same set as knn()
    streamed.clear();
    idx.knn_visit(centre, 16, [&](const Point2& p) { streamed.push_back(p); });
    auto direct = idx.knn(centre, 16);
    ASSERT_EQ(streamed.size(), direct.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_DOUBLE_EQ(squared_distance(streamed[i], centre),
                       squared_distance(direct[i], centre));
    }
    for (std::size_t i = 1; i < streamed.size(); ++i) {
      EXPECT_LE(squared_distance(streamed[i - 1], centre),
                squared_distance(streamed[i], centre));
    }
  }
}

TEST(StreamingQueries, ZeroKKnnIsEmptyOnEveryBackend) {
  auto pts = datagen::uniform<2>(300, 29, kMax);
  for (const auto& name : api::BackendRegistry2::instance().names()) {
    SCOPED_TRACE(name);
    auto idx = api::BackendRegistry2::instance().make(name);
    idx.build(pts);
    EXPECT_TRUE(idx.knn(pts[0], 0).empty());
    std::size_t seen = 0;
    idx.knn_visit(pts[0], 0, [&](const Point2&) { ++seen; });
    EXPECT_EQ(seen, 0u);
  }
}

TEST(StreamingQueries, SinkReturningFalseStopsEarly) {
  auto pts = datagen::uniform<2>(5000, 11, kMax);
  const Box2 everything{{{0, 0}}, {{kMax, kMax}}};

  for (const auto& name : api::BackendRegistry2::instance().names()) {
    SCOPED_TRACE(name);
    auto idx = api::BackendRegistry2::instance().make(name);
    idx.build(pts);

    std::size_t seen = 0;
    idx.range_visit(everything, [&](const Point2&) { return ++seen < 10; });
    EXPECT_EQ(seen, 10u);

    seen = 0;
    idx.ball_visit(pts[0], 2.0 * kMax, [&](const Point2&) {
      return ++seen < 7;
    });
    EXPECT_EQ(seen, 7u);

    seen = 0;
    idx.knn_visit(pts[0], 50, [&](const Point2&) { return ++seen < 3; });
    EXPECT_EQ(seen, 3u);
  }
}

// ---------------------------------------------------------------------------
// AnyIndex: type erasure preserves semantics
// ---------------------------------------------------------------------------

TEST(AnyIndex, MatchesOracleThroughFullUpdateCycle) {
  api::AnyIndex2 idx(SpacZTree2{}, "spac-z");
  EXPECT_EQ(idx.backend_name(), "spac-z");
  BruteForceIndex<std::int64_t, 2> oracle;

  auto pts = datagen::varden<2>(6000, 13, kMax);
  idx.build(pts);
  oracle.build(pts);

  auto extra = datagen::uniform<2>(1500, 17, kMax);
  idx.batch_insert(extra);
  oracle.batch_insert(extra);
  std::vector<Point2> del(pts.begin(), pts.begin() + 800);
  idx.batch_delete(del);
  oracle.batch_delete(del);

  ASSERT_EQ(idx.size(), oracle.size());
  EXPECT_FALSE(idx.empty());
  testutil::expect_same_multiset(idx.flatten(), oracle.points());

  auto knn_q = datagen::ind_queries(oracle.points(), 12, 19, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : knn_q) {
    ranges.push_back(testutil::box_around(q, kMax / 30, kMax));
  }
  testutil::expect_queries_match(idx, oracle, knn_q, 10, ranges);

  const double radius = static_cast<double>(kMax) / 40;
  for (const auto& q : knn_q) {
    EXPECT_EQ(idx.ball_count(q, radius), oracle.ball_count(q, radius));
    testutil::expect_same_multiset(idx.ball_list(q, radius),
                                   oracle.ball_list(q, radius));
  }
}

TEST(AnyIndex, BoundsMatchWrappedBackend) {
  SpacZTree2 raw;
  std::vector<Point2> pts{{{10, 20}}, {{300, 5}}, {{40, 400}}};
  raw.build(pts);
  api::AnyIndex2 idx(SpacZTree2{}, "spac-z");
  idx.build(pts);
  EXPECT_TRUE(idx.bounds() == raw.bounds());
}

TEST(AnyIndex, MoveTransfersOwnership) {
  api::AnyIndex2 a(PkdTree2{}, "pkd");
  a.build({{{1, 1}}, {{2, 2}}, {{3, 3}}});
  api::AnyIndex2 b(std::move(a));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.backend_name(), "pkd");
  api::AnyIndex2 c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 3u);
  // Default-constructed AnyIndex is a usable empty index.
  api::AnyIndex2 d;
  EXPECT_TRUE(d.empty());
  d.batch_insert({{{5, 5}}});
  EXPECT_EQ(d.size(), 1u);
}

// ---------------------------------------------------------------------------
// BackendRegistry
// ---------------------------------------------------------------------------

TEST(BackendRegistry, CataloguesEveryBuiltin) {
  auto& reg = api::BackendRegistry2::instance();
  for (const char* name : {"porth", "spac-h", "spac-z", "cpam-z", "pkd", "zd",
                           "rtree", "log", "bhl", "brute"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto idx = reg.make(name);
    EXPECT_EQ(idx.backend_name(), name);
    idx.build({{{1, 2}}, {{3, 4}}});
    EXPECT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx.range_count(Box2{{{0, 0}}, {{10, 10}}}), 2u);
  }
}

TEST(BackendRegistry, UnknownNameThrowsWithCatalogue) {
  auto& reg = api::BackendRegistry2::instance();
  try {
    reg.make("no-such-backend");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-backend"), std::string::npos);
    EXPECT_NE(msg.find("spac-z"), std::string::npos);  // lists the catalogue
  }
}

TEST(BackendRegistry, CustomRegistrationsOverride) {
  auto& reg = api::BackendRegistry2::instance();
  reg.add("custom-wide-leaf", [] {
    SpacParams p;
    p.leaf_wrap = 128;
    return api::AnyIndex2(SpacZTree2(p), "custom-wide-leaf");
  });
  EXPECT_TRUE(reg.contains("custom-wide-leaf"));
  auto idx = reg.make("custom-wide-leaf");
  idx.build(datagen::uniform<2>(500, 23, kMax));
  EXPECT_EQ(idx.size(), 500u);
}

}  // namespace
