// Epoch-pinned snapshot reads (api::ReadOptions::pinned, read_options.h):
//
//  * In-process: query-as-of-epoch over the retained publication ring —
//    every pinned read reproduces exactly the multiset that was published
//    at that epoch, stays stable on repeat reads, and raises EpochRetired
//    past the bounded retention horizon without ever blocking a commit.
//  * Distributed (loopback AND real TCP): a PinnedView taken before
//    concurrent writers start keeps answering with the pinned contents —
//    snapshot-consistent across every shard and node, zero torn reads —
//    while read-committed queries on the same service see the new points.
//  * N-writer/M-reader stress against a recorded per-epoch oracle: every
//    pinned read equals the exact multiset recorded at its epoch.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "psi/psi.h"

namespace {

using namespace psi;

using point_t = Point2;
using box_t = Box2;

constexpr std::int64_t kMax = 1 << 16;
const box_t kEverything{{{-kMax, -kMax}}, {{2 * kMax, 2 * kMax}}};

std::vector<point_t> uniform_points(std::size_t n, std::uint64_t seed) {
  return datagen::uniform<2>(n, seed, kMax);
}

void expect_same_multiset(std::vector<point_t> a, std::vector<point_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// In-process: SpatialService::query with ReadOptions::pinned
// ---------------------------------------------------------------------------

using ZService = service::SpatialService<SpacZTree2>;
using desc_t = ZService::desc_t;

std::vector<point_t> pinned_list(const ZService& svc, std::uint64_t epoch) {
  std::vector<point_t> out;
  svc.query(desc_t::range_list(kEverything), api::ReadOptions::pinned(epoch),
            [&](const point_t& p) { out.push_back(p); });
  return out;
}

TEST(PinnedReadService, QueryAsOfEpochReproducesEachPublication) {
  ZService svc(service::ServiceConfig{.initial_shards = 4,
                                      .retained_epochs = 8});
  // Commit 5 batches, recording the exact expected multiset per epoch.
  std::map<std::uint64_t, std::vector<point_t>> published;
  std::vector<point_t> all;
  for (int i = 0; i < 5; ++i) {
    const auto batch = uniform_points(400, 100 + static_cast<unsigned>(i));
    svc.submit_insert_batch(batch);
    svc.flush();
    all.insert(all.end(), batch.begin(), batch.end());
    published[svc.epoch()] = all;
  }

  // Every retained epoch answers with exactly its published multiset;
  // reading it twice gives the identical answer (repeat-read stability).
  for (const auto& [epoch, expected] : published) {
    expect_same_multiset(pinned_list(svc, epoch), expected);
    expect_same_multiset(pinned_list(svc, epoch), expected);
    // Count kinds agree through the same pinned options.
    EXPECT_EQ(svc.query(desc_t::range_count(kEverything),
                        api::ReadOptions::pinned(epoch)),
              expected.size());
  }
  EXPECT_GE(svc.stats().pinned_reads, 3 * published.size());
  EXPECT_EQ(svc.stats().epoch_retired_errors, 0u);
}

TEST(PinnedReadService, RetentionHorizonRaisesEpochRetiredWithoutBlocking) {
  ZService svc(service::ServiceConfig{.initial_shards = 2,
                                      .retained_epochs = 2});
  svc.submit_insert_batch(uniform_points(200, 7));
  svc.flush();
  const std::uint64_t pinned_epoch = svc.epoch();

  // Hold a live pin while committing straight past the retention depth:
  // the committer never blocks on it (bounded ring, oldest view dropped).
  auto held = svc.snapshot_at(pinned_epoch);
  for (int i = 0; i < 4; ++i) {
    svc.submit_insert_batch(uniform_points(100, 70 + static_cast<unsigned>(i)));
    svc.flush();
  }
  EXPECT_EQ(svc.epoch(), pinned_epoch + 4);
  // The held snapshot still answers (its shared_ptr keeps the view alive)…
  EXPECT_EQ(held.epoch(), pinned_epoch);
  // …but a *new* pin at that epoch is beyond the horizon.
  try {
    (void)pinned_list(svc, pinned_epoch);
    FAIL() << "pin past the retention horizon not detected";
  } catch (const api::EpochRetired& e) {
    EXPECT_EQ(e.epoch(), pinned_epoch);
  }
  EXPECT_THROW((void)svc.snapshot_at(0), api::EpochRetired);
  EXPECT_GE(svc.stats().epoch_retired_errors, 2u);
  // The latest epoch still pins fine.
  EXPECT_EQ(pinned_list(svc, svc.epoch()).size(), svc.stats().size_total);
}

TEST(PinnedReadService, WriterReaderStressMatchesPerEpochOracle) {
  ZService svc(service::ServiceConfig{.initial_shards = 4,
                                      .retained_epochs = 16});
  svc.submit_insert_batch(uniform_points(500, 1));
  svc.flush();

  // Writers serialise {commit, record} under a mutex so the oracle maps
  // each epoch to the exact expected multiset. Readers pin recorded epochs
  // concurrently: a pinned read must equal its oracle entry — a mixture of
  // two epochs (torn read) fails the multiset comparison.
  std::mutex mu;
  std::map<std::uint64_t, std::vector<point_t>> oracle;
  std::vector<point_t> all;
  {
    std::lock_guard<std::mutex> g(mu);
    all = pinned_list(svc, svc.epoch());
    oracle[svc.epoch()] = all;
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> pinned_ok{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 12; ++i) {
        const auto batch =
            uniform_points(150, 1000 + 100 * static_cast<unsigned>(w) +
                                    static_cast<unsigned>(i));
        std::lock_guard<std::mutex> g(mu);
        svc.submit_insert_batch(batch);
        svc.flush();
        all.insert(all.end(), batch.begin(), batch.end());
        oracle[svc.epoch()] = all;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!done.load()) {
        std::uint64_t epoch;
        std::vector<point_t> expected;
        {
          std::lock_guard<std::mutex> g(mu);
          // Newest recorded epoch: always within the retention window.
          epoch = oracle.rbegin()->first;
          expected = oracle.rbegin()->second;
        }
        try {
          expect_same_multiset(pinned_list(svc, epoch), expected);
          pinned_ok.fetch_add(1);
        } catch (const api::EpochRetired&) {
          // Possible only if commits raced far ahead after we sampled.
        }
      }
    });
  }
  threads[0].join();
  threads[1].join();
  while (pinned_ok.load() < 8) std::this_thread::yield();
  done.store(true);
  threads[2].join();
  threads[3].join();
  EXPECT_GE(svc.stats().pinned_reads, pinned_ok.load());
}

// ---------------------------------------------------------------------------
// Distributed: PinnedView over loopback and real TCP
// ---------------------------------------------------------------------------

using DService = net::DistributedService<SpacZTree2>;
using ddesc_t = DService::desc_t;

std::vector<point_t> pinned_dlist(const DService& svc,
                                  const DService::PinnedView& pin) {
  std::vector<point_t> out;
  svc.query(ddesc_t::range_list(kEverything), pin,
            [&](const point_t& p) { out.push_back(p); });
  return out;
}

template <typename Fabric>
void run_pinned_under_writers() {
  Fabric fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.retained_epochs = 32;
  DService svc(fabric, 2, cfg);
  const auto base = uniform_points(3000, 51);
  svc.build(base);

  const auto pin = svc.pin();
  const auto stats0 = svc.stats();

  // 2 concurrent writers inserting INSIDE the pinned region: a
  // read-committed read would see them, the pin must not.
  std::atomic<bool> stop{false};
  std::vector<std::vector<point_t>> writer_pts(2);
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 8; ++i) {
        const auto batch =
            uniform_points(120, 5000 + 100 * static_cast<unsigned>(w) +
                                    static_cast<unsigned>(i));
        svc.insert_batch(batch);
        auto& mine = writer_pts[static_cast<std::size_t>(w)];
        mine.insert(mine.end(), batch.begin(), batch.end());
      }
    });
  }
  // 2 concurrent pinned readers: every read is exactly the pinned base.
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        expect_same_multiset(pinned_dlist(svc, pin), base);
        reads.fetch_add(1);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  while (reads.load() < 6) std::this_thread::yield();
  stop.store(true);
  threads[2].join();
  threads[3].join();

  // The pin still answers the pre-write state after the writers finished;
  // pinned count + knn agree with it too.
  expect_same_multiset(pinned_dlist(svc, pin), base);
  EXPECT_EQ(svc.query(ddesc_t::range_count(kEverything),
                      api::ReadOptions::pinned(pin.epoch())),
            base.size());
  std::vector<point_t> knn_out;
  svc.query(ddesc_t::knn(point_t{{kMax / 2, kMax / 2}}, 5), pin,
            [&](const point_t& p) { knn_out.push_back(p); });
  EXPECT_EQ(knn_out.size(), 5u);

  // Read-committed sees everything.
  std::vector<point_t> expected = base;
  for (const auto& wp : writer_pts) {
    expected.insert(expected.end(), wp.begin(), wp.end());
  }
  std::vector<point_t> committed;
  svc.query(ddesc_t::range_list(kEverything), api::ReadOptions::read_committed(),
            [&](const point_t& p) { committed.push_back(p); });
  expect_same_multiset(committed, expected);

  const auto stats1 = svc.stats();
  EXPECT_GT(stats1.pinned_reads, stats0.pinned_reads);
  EXPECT_EQ(stats1.epoch_retired_errors, stats0.epoch_retired_errors);
  // Acceptance: the pinned piggyback always matches by construction — the
  // pinned traffic contributed zero torn-snapshot skips.
  EXPECT_EQ(stats1.cache_torn_skips, stats0.cache_torn_skips);
}

TEST(PinnedReadDistributed, LoopbackPinnedStableUnderConcurrentWriters) {
  run_pinned_under_writers<net::LoopbackTransport>();
}

TEST(PinnedReadDistributed, TcpPinnedStableUnderConcurrentWriters) {
  run_pinned_under_writers<net::TcpTransport>();
}

TEST(PinnedReadDistributed, RetentionExhaustionRaisesEpochRetired) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.retained_epochs = 2;
  DService svc(fabric, 2, cfg);
  svc.build(uniform_points(1000, 61));

  const auto pin = svc.pin();
  const auto old_epoch = pin.epoch();
  // Commit full-range batches straight past the host retention depth —
  // the committer never waits on the outstanding pin.
  for (int i = 0; i < 6; ++i) {
    svc.insert_batch(uniform_points(400, 600 + static_cast<unsigned>(i)));
  }
  // The old pin's shard versions are gone from every host's ring.
  EXPECT_THROW((void)pinned_dlist(svc, pin), api::EpochRetired);
  // Re-pinning at the retired epoch is refused at the coordinator too.
  EXPECT_THROW((void)svc.pin_at(old_epoch), api::EpochRetired);
  EXPECT_GE(svc.stats().epoch_retired_errors, 2u);
  // A fresh pin at the live epoch works.
  const auto fresh = svc.pin();
  EXPECT_EQ(pinned_dlist(svc, fresh).size(), svc.size());
}

}  // namespace
