// Tests for the SPaC-tree family and the CPAM (total-order) baseline:
// balance/order/leaf-wrap invariants under arbitrary update sequences,
// query correctness vs the brute-force oracle, pivot deletion, relaxed vs
// total order equivalence, and both SFC curves.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

// The tests run over {Hilbert, Morton} × {Relaxed, Total order}.
struct SpacCase {
  const char* name;
  bool hilbert;
  bool relaxed;
};

class SpacMatrix : public ::testing::TestWithParam<SpacCase> {
 protected:
  SpacParams params() const {
    SpacParams p;
    if (!GetParam().relaxed) p = cpam_params();
    return p;
  }

  template <typename F>
  void with_tree(F&& f) const {
    if (GetParam().hilbert) {
      SpacHTree2 tree(params());
      f(tree);
    } else {
      SpacZTree2 tree(params());
      f(tree);
    }
  }
};

INSTANTIATE_TEST_SUITE_P(
    Curves, SpacMatrix,
    ::testing::Values(SpacCase{"SPaC_H", true, true},
                      SpacCase{"SPaC_Z", false, true},
                      SpacCase{"CPAM_H", true, false},
                      SpacCase{"CPAM_Z", false, false}),
    [](const auto& info) { return info.param.name; });

TEST_P(SpacMatrix, BuildInvariantsAndContents) {
  auto pts = datagen::uniform<2>(20000, 1, kMax);
  with_tree([&](auto& tree) {
    tree.build(pts);
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_same_multiset(tree.flatten(), pts);
  });
}

TEST_P(SpacMatrix, QueriesMatchOracleAfterBuild) {
  auto pts = datagen::varden<2>(8000, 2, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto ind = datagen::ind_queries(pts, 25, 2, kMax);
  auto ood = datagen::ood_queries<2>(25, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  with_tree([&](auto& tree) {
    tree.build(pts);
    testutil::expect_queries_match(tree, oracle, ind, 10, ranges);
    testutil::expect_queries_match(tree, oracle, ood, 10, ranges);
  });
}

TEST_P(SpacMatrix, BatchInsertKeepsInvariantsAndAnswers) {
  auto pts = datagen::uniform<2>(6000, 3, kMax);
  const std::size_t half = pts.size() / 2;
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<2>(20, 3, kMax);
  auto ranges = datagen::range_boxes(qs, 100'000'000, kMax);
  with_tree([&](auto& tree) {
    tree.build({pts.begin(), pts.begin() + half});
    tree.batch_insert({pts.begin() + half, pts.end()});
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
  });
}

TEST_P(SpacMatrix, BatchDeleteKeepsInvariantsAndAnswers) {
  auto pts = datagen::sweepline<2>(6000, 4, kMax);
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 3) dels.push_back(pts[i]);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete(dels);
  auto qs = datagen::ood_queries<2>(20, 4, kMax);
  auto ranges = datagen::range_boxes(qs, 100'000'000, kMax);
  with_tree([&](auto& tree) {
    tree.build(pts);
    tree.batch_delete(dels);
    EXPECT_EQ(tree.size(), oracle.size());
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
  });
}

TEST_P(SpacMatrix, ManySmallBatchesInsertThenDeleteAll) {
  auto pts = datagen::varden<2>(5000, 5, kMax);
  const std::size_t batch = 200;
  with_tree([&](auto& tree) {
    for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
      const auto hi = std::min(pts.size(), lo + batch);
      tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                         pts.begin() + static_cast<std::ptrdiff_t>(hi)});
      ASSERT_EQ(tree.size(), hi);
      ASSERT_NO_THROW(tree.check_invariants());
    }
    for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
      const auto hi = std::min(pts.size(), lo + batch);
      tree.batch_delete({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                         pts.begin() + static_cast<std::ptrdiff_t>(hi)});
      ASSERT_NO_THROW(tree.check_invariants());
    }
    EXPECT_TRUE(tree.empty());
  });
}

TEST_P(SpacMatrix, PivotDeletion) {
  // Deleting every other point forces many interior pivots to be deleted,
  // exercising join2/split_last.
  auto pts = datagen::uniform<2>(4000, 6, kMax);
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 2) dels.push_back(pts[i]);
  with_tree([&](auto& tree) {
    tree.build(pts);
    tree.batch_delete(dels);
    EXPECT_EQ(tree.size(), pts.size() - dels.size());
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_same_multiset(tree.flatten(), [&] {
      BruteForceIndex<std::int64_t, 2> o;
      o.build(pts);
      o.batch_delete(dels);
      return o.points();
    }());
  });
}

TEST_P(SpacMatrix, HeightStaysLogarithmicUnderChurn) {
  auto pts = datagen::uniform<2>(30000, 7, kMax);
  with_tree([&](auto& tree) {
    tree.build(pts);
    const std::size_t h0 = tree.height();
    // Churn: delete/insert alternating slices.
    for (int round = 0; round < 5; ++round) {
      std::vector<Point2> slice;
      for (std::size_t i = static_cast<std::size_t>(round); i < pts.size();
           i += 5) {
        slice.push_back(pts[i]);
      }
      tree.batch_delete(slice);
      tree.batch_insert(slice);
      ASSERT_NO_THROW(tree.check_invariants());
    }
    // Weight balance bounds the height: churn must not blow it up.
    EXPECT_LE(tree.height(), h0 + 6);
  });
}

TEST(Spac, EmptyAndSingleton) {
  SpacHTree2 tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.knn(Point2{{0, 0}}, 3).empty());
  EXPECT_EQ(tree.range_count(Box2{{{0, 0}}, {{kMax, kMax}}}), 0u);
  tree.batch_insert({Point2{{7, 9}}});
  EXPECT_EQ(tree.size(), 1u);
  auto nn = tree.knn(Point2{{0, 0}}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], (Point2{{7, 9}}));
  tree.batch_delete({Point2{{7, 9}}});
  EXPECT_TRUE(tree.empty());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Spac, InsertIntoEmptyTreeBuilds) {
  auto pts = datagen::uniform<2>(3000, 8, kMax);
  SpacHTree2 tree;
  tree.batch_insert(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Spac, DuplicatePointsSupported) {
  std::vector<Point2> pts(500, Point2{{42, 43}});
  SpacZTree2 tree;
  tree.build(pts);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_NO_THROW(tree.check_invariants());
  EXPECT_EQ(tree.range_count(Box2{{{42, 43}}, {{42, 43}}}), 500u);
  tree.batch_delete(std::vector<Point2>(200, Point2{{42, 43}}));
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Spac, DeleteNonexistentIsNoop) {
  auto pts = datagen::uniform<2>(2000, 9, kMax);
  SpacHTree2 tree;
  tree.build(pts);
  tree.batch_delete({Point2{{1, 1}}, Point2{{2, 2}}, Point2{{3, 3}}});
  EXPECT_GE(tree.size(), pts.size() - 3);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Spac, RelaxedLeavesActuallyGoUnsorted) {
  // The defining behaviour of the SPaC-tree vs CPAM: after *small* batch
  // updates (the highly-dynamic regime of the paper), appended-to leaves
  // stay unsorted in relaxed mode and never in total mode. Large batches
  // overflow leaves and rebuild them sorted, so use a ~1% batch.
  auto pts = datagen::uniform<2>(20000, 10, kMax);
  const std::size_t batch = 200;
  const std::size_t base = pts.size() - batch;

  SpacHTree2 relaxed;  // default params: relaxed
  relaxed.build({pts.begin(), pts.begin() + base});
  relaxed.batch_insert({pts.begin() + base, pts.end()});
  EXPECT_GT(relaxed.unsorted_leaf_fraction(), 0.0);
  EXPECT_NO_THROW(relaxed.check_invariants());

  SpacHTree2 total(cpam_params());
  total.build({pts.begin(), pts.begin() + base});
  total.batch_insert({pts.begin() + base, pts.end()});
  EXPECT_EQ(total.unsorted_leaf_fraction(), 0.0);
}

TEST(Spac, RelaxedAndTotalAgreeOnAllQueries) {
  auto pts = datagen::varden<2>(8000, 11, kMax);
  const std::size_t half = pts.size() / 2;
  SpacHTree2 relaxed;
  SpacHTree2 total(cpam_params());
  for (auto* t : {&relaxed, &total}) {
    t->build({pts.begin(), pts.begin() + half});
    t->batch_insert({pts.begin() + half, pts.end()});
  }
  auto qs = datagen::ood_queries<2>(30, 11, kMax);
  for (const auto& q : qs) {
    auto a = relaxed.knn(q, 10);
    auto b = total.knn(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(squared_distance(a[i], q), squared_distance(b[i], q));
    }
  }
  auto ranges = datagen::range_boxes(qs, 70'000'000, kMax);
  for (const auto& r : ranges) {
    EXPECT_EQ(relaxed.range_count(r), total.range_count(r));
  }
}

TEST(Spac, FusedAndUnfusedBuildsProduceSameTreeAnswers) {
  auto pts = datagen::uniform<2>(10000, 12, kMax);
  SpacParams fused;  // default: fused HybridSort
  SpacParams unfused;
  unfused.fused_build = false;
  SpacHTree2 a(fused), b(unfused);
  a.build(pts);
  b.build(pts);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.height(), b.height());
  auto qs = datagen::ood_queries<2>(20, 12, kMax);
  for (const auto& q : qs) {
    EXPECT_EQ(a.knn(q, 5), b.knn(q, 5));
  }
}

TEST(Spac, ThreeDimensionalHilbertAndMorton) {
  auto pts = datagen::cosmo_sim(6000, 13);
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(15, 13, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 100'000, datagen::kDefaultMax3D);
  {
    SpacHTree3 tree;
    tree.build(pts);
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
    tree.batch_delete({pts.begin(), pts.begin() + 2000});
    EXPECT_NO_THROW(tree.check_invariants());
  }
  {
    SpacZTree3 tree;
    tree.build(pts);
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
  }
}

TEST(Spac, MixedWorkloadAgainstOracle) {
  auto pts = datagen::osm_sim(6000, 14);
  SpacHTree2 tree;
  BruteForceIndex<std::int64_t, 2> oracle;
  std::vector<Point2> live;
  const std::size_t batch = 600;
  for (std::size_t round = 0; round * batch < pts.size(); ++round) {
    const std::size_t lo = round * batch;
    const std::size_t hi = std::min(pts.size(), lo + batch);
    std::vector<Point2> ins(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                            pts.begin() + static_cast<std::ptrdiff_t>(hi));
    tree.batch_insert(ins);
    oracle.batch_insert(ins);
    live.insert(live.end(), ins.begin(), ins.end());
    if (round % 2 == 1) {
      std::vector<Point2> dels;
      for (std::size_t i = 0; i < live.size(); i += 5) dels.push_back(live[i]);
      tree.batch_delete(dels);
      oracle.batch_delete(dels);
      for (const auto& d : dels) {
        auto it = std::find(live.begin(), live.end(), d);
        if (it != live.end()) {
          *it = live.back();
          live.pop_back();
        }
      }
    }
    ASSERT_EQ(tree.size(), oracle.size());
    ASSERT_NO_THROW(tree.check_invariants());
  }
  auto qs = datagen::ood_queries<2>(20, 14, datagen::kDefaultMax2D);
  auto ranges = datagen::range_boxes(qs, 60'000'000, datagen::kDefaultMax2D);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(Spac, LeafWrapSweep) {
  auto pts = datagen::uniform<2>(5000, 15, kMax);
  for (std::size_t wrap : {2, 8, 40, 160}) {
    SpacParams p;
    p.leaf_wrap = wrap;
    SpacHTree2 tree(p);
    tree.build(pts);
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
    tree.batch_delete({pts.begin(), pts.begin() + 2500});
    EXPECT_NO_THROW(tree.check_invariants());
  }
}

}  // namespace
}  // namespace psi
