// Tests for the fork-join scheduler: nesting, determinism of results,
// exception propagation, and parallel_for partitioning.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "psi/parallel/scheduler.h"

namespace psi {
namespace {

TEST(Scheduler, ParDoRunsBothSides) {
  int a = 0, b = 0;
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, ParDo3RunsAllThree) {
  int a = 0, b = 0, c = 0;
  par_do3([&] { a = 1; }, [&] { b = 2; }, [&] { c = 3; });
  EXPECT_EQ(a + b + c, 6);
}

// Deep nesting must not deadlock (stealing joins).
std::uint64_t parallel_fib(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t x = 0, y = 0;
  if (n < 12) return parallel_fib(n - 1) + parallel_fib(n - 2);
  par_do([&] { x = parallel_fib(n - 1); }, [&] { y = parallel_fib(n - 2); });
  return x + y;
}

TEST(Scheduler, NestedForkJoinFib) { EXPECT_EQ(parallel_fib(28), 317811u); }

TEST(Scheduler, ExceptionPropagatesFromForkedTask) {
  EXPECT_THROW(
      par_do([] {}, [] { throw std::runtime_error("forked"); }),
      std::runtime_error);
  EXPECT_THROW(
      par_do([] { throw std::runtime_error("inline"); }, [] {}),
      std::runtime_error);
}

TEST(Scheduler, SchedulerUsableAfterException) {
  try {
    par_do([] {}, [] { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  parallel_for(0, 1000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, ExplicitGranularityStillCovers) {
  const std::size_t n = 12345;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  long total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, static_cast<long>(n));
}

TEST(ParallelForBlocked, BlocksPartitionTheRange) {
  const std::size_t n = 10001, bs = 97;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<std::size_t> blocks{0};
  parallel_for_blocked(n, bs, [&](std::size_t, std::size_t lo, std::size_t hi) {
    EXPECT_LE(hi - lo, bs);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    blocks.fetch_add(1);
  });
  EXPECT_EQ(blocks.load(), (n + bs - 1) / bs);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Scheduler, WorkerCountRespectsEnvironment) {
  // When run under the _mt ctest variant PSI_NUM_WORKERS=4.
  if (const char* s = std::getenv("PSI_NUM_WORKERS")) {
    EXPECT_EQ(num_workers(), std::atoi(s));
  } else {
    EXPECT_GE(num_workers(), 1);
  }
}

TEST(ForkGrain, EnvValidationAndClamp) {
  // Save the ambient PSI_GRAIN (CI sets it) and restore on every exit path.
  const char* prev = std::getenv("PSI_GRAIN");
  const std::string saved = prev ? prev : "";
  const bool had = prev != nullptr;
  auto with_env = [&](const char* v) {
    ::setenv("PSI_GRAIN", v, 1);
    set_fork_grain(0);  // drop the cached value, re-resolve from the env
    return fork_grain();
  };

  EXPECT_EQ(with_env("4096"), 4096u);          // well-formed
  EXPECT_EQ(with_env("0"), kDefaultGrain);     // zero: meaningless, fall back
  EXPECT_EQ(with_env("-5"), kDefaultGrain);    // negative
  EXPECT_EQ(with_env("abc"), kDefaultGrain);   // not a number
  EXPECT_EQ(with_env("12abc"), kDefaultGrain); // trailing junk (atol took 12)
  EXPECT_EQ(with_env(""), kDefaultGrain);      // empty string
  EXPECT_EQ(with_env(" 64"), kDefaultGrain);   // leading space: reject whole
  // Oversized values (including out-of-range parses) clamp, not wrap.
  EXPECT_EQ(with_env("99999999999999999999999999"), kMaxGrain);
  EXPECT_EQ(with_env("2147483648"), kMaxGrain);  // 2^31 > kMaxGrain: clamp

  ::unsetenv("PSI_GRAIN");
  set_fork_grain(0);
  EXPECT_EQ(fork_grain(), kDefaultGrain);      // unset: default

  if (had) {
    ::setenv("PSI_GRAIN", saved.c_str(), 1);
  }
  set_fork_grain(0);  // restore the ambient configuration for later suites
}

TEST(Scheduler, ManySmallForks) {
  // Stress the deques with a large number of tiny tasks.
  std::atomic<long> sum{0};
  parallel_for(0, 50000, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i % 7)); }, 1);
  long expect = 0;
  for (std::size_t i = 0; i < 50000; ++i) expect += static_cast<long>(i % 7);
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
}  // namespace psi
