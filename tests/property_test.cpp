// Property-style randomized tests across the whole library:
//  * randomized operation sequences (seeded) driving every index against
//    the oracle, parameterized over seeds;
//  * batch_diff ≡ batch_delete; batch_insert for every index that has it;
//  * P-Orth with floating-point coordinates (the paper's "flexible to any
//    coordinate types" claim);
//  * SPaC balance parameter α sweep;
//  * scheduler reconfiguration (set_num_workers) mid-session.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

// ---------------------------------------------------------------------------
// Randomized op sequences, parameterized over seeds
// ---------------------------------------------------------------------------

class RandomOps : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // A deterministic random schedule of inserts/deletes with varying batch
  // sizes; checks size and (periodically) full query agreement.
  template <typename Index>
  void drive(Index& index) const {
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    BruteForceIndex<std::int64_t, 2> oracle;
    std::vector<Point2> live;
    std::uint64_t tick = 0;
    for (int round = 0; round < 12; ++round) {
      const bool do_insert =
          live.size() < 500 || rng.ith_bounded(tick++, 3) > 0;
      if (do_insert) {
        const std::size_t b = 1 + rng.ith_bounded(tick++, 700);
        auto pts = datagen::uniform<2>(b, hash64(seed, tick++), kMax);
        index.batch_insert(pts);
        oracle.batch_insert(pts);
        live.insert(live.end(), pts.begin(), pts.end());
      } else {
        const std::size_t b = 1 + rng.ith_bounded(tick++, live.size());
        std::vector<Point2> dels;
        for (std::size_t i = 0; i < b; ++i) {
          dels.push_back(live[rng.ith_bounded(tick + i, live.size())]);
        }
        tick += b;
        index.batch_delete(dels);
        oracle.batch_delete(dels);
        for (const auto& d : dels) {
          auto it = std::find(live.begin(), live.end(), d);
          if (it != live.end()) {
            *it = live.back();
            live.pop_back();
          }
        }
      }
      ASSERT_EQ(index.size(), oracle.size()) << "round " << round;
      if (round % 4 == 3) {
        auto qs = datagen::ood_queries<2>(10, hash64(seed, 1000 + tick), kMax);
        auto ranges = datagen::range_boxes(qs, 120'000'000, kMax);
        testutil::expect_queries_match(index, oracle, qs, 7, ranges);
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOps,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST_P(RandomOps, POrth) {
  POrthTree2 t({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

TEST_P(RandomOps, SpacH) {
  SpacHTree2 t;
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

TEST_P(RandomOps, SpacZ) {
  SpacZTree2 t;
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

TEST_P(RandomOps, CpamH) {
  SpacHTree2 t(cpam_params());
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

TEST_P(RandomOps, Pkd) {
  PkdTree2 t;
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

TEST_P(RandomOps, Zd) {
  ZdTree2 t;
  drive(t);
  EXPECT_NO_THROW(t.check_invariants());
}

// ---------------------------------------------------------------------------
// batch_diff ≡ delete-then-insert
// ---------------------------------------------------------------------------

template <typename Index>
void check_batch_diff(Index&& a, Index&& b) {
  auto pts = datagen::uniform<2>(5000, 1, kMax);
  std::vector<Point2> dels(pts.begin(), pts.begin() + 1500);
  auto ins = datagen::uniform<2>(1500, 2, kMax);
  a.build(pts);
  b.build(pts);
  a.batch_diff(ins, dels);
  b.batch_delete(dels);
  b.batch_insert(ins);
  ASSERT_EQ(a.size(), b.size());
  testutil::expect_same_multiset(a.flatten(), b.flatten());
}

TEST(BatchDiff, AllIndexesMatchComposition) {
  check_batch_diff(POrthTree2({}, Box2{{{0, 0}}, {{kMax, kMax}}}),
                   POrthTree2({}, Box2{{{0, 0}}, {{kMax, kMax}}}));
  check_batch_diff(SpacHTree2(), SpacHTree2());
  check_batch_diff(SpacZTree2(), SpacZTree2());
  check_batch_diff(PkdTree2(), PkdTree2());
  check_batch_diff(ZdTree2(), ZdTree2());
}

TEST(BatchDiff, MoveWorkloadKeepsSizeConstant) {
  auto pts = datagen::uniform<2>(4000, 3, kMax);
  SpacHTree2 tree;
  tree.build(pts);
  for (int round = 0; round < 5; ++round) {
    // Move the first quarter of the points by a small offset.
    std::vector<Point2> old_pos(pts.begin(), pts.begin() + 1000);
    std::vector<Point2> new_pos = old_pos;
    for (auto& p : new_pos) {
      p[0] = std::min<std::int64_t>(kMax, p[0] + 1000);
    }
    tree.batch_diff(new_pos, old_pos);
    std::copy(new_pos.begin(), new_pos.end(), pts.begin());
    ASSERT_EQ(tree.size(), pts.size());
    ASSERT_NO_THROW(tree.check_invariants());
  }
}

// ---------------------------------------------------------------------------
// P-Orth with floating-point coordinates
// ---------------------------------------------------------------------------

TEST(POrthFloat, BuildQueryUpdateWithDoubles) {
  Rng rng(5);
  const std::size_t n = 5000;
  std::vector<Point2f> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = Point2f{{rng.ith_double(2 * i) * 1000.0 - 500.0,
                      rng.ith_double(2 * i + 1) * 1000.0 - 500.0}};
  }
  POrthTree<double, 2> tree(
      {}, Box<double, 2>{{{-500.0, -500.0}}, {{500.0, 500.0}}});
  tree.build(pts);
  EXPECT_EQ(tree.size(), n);
  EXPECT_NO_THROW(tree.check_invariants());

  // kNN against brute force.
  BruteForceIndex<double, 2> oracle;
  oracle.build(pts);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Point2f q{{rng.ith_double(10000 + 2 * i) * 1000.0 - 500.0,
               rng.ith_double(10001 + 2 * i) * 1000.0 - 500.0}};
    testutil::expect_knn_equivalent(tree.knn(q, 5), q,
                                    oracle.knn_distances(q, 5));
  }

  // Updates.
  std::vector<Point2f> dels(pts.begin(), pts.begin() + 2000);
  tree.batch_delete(dels);
  EXPECT_EQ(tree.size(), n - 2000);
  EXPECT_NO_THROW(tree.check_invariants());
  tree.batch_insert(dels);
  EXPECT_EQ(tree.size(), n);
}

TEST(POrthFloat, NearDuplicateDoublesTerminate) {
  // Points within a denormal-scale cluster must not loop the builder.
  std::vector<Point2f> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back(Point2f{{1.0 + i * 1e-13, 2.0 - i * 1e-13}});
  }
  POrthTree<double, 2> tree({}, Box<double, 2>{{{0, 0}}, {{4, 4}}});
  tree.build(pts);
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_NO_THROW(tree.check_invariants());
}

// ---------------------------------------------------------------------------
// SPaC balance parameter sweep
// ---------------------------------------------------------------------------

TEST(SpacAlpha, BalanceSweepKeepsInvariants) {
  auto pts = datagen::varden<2>(8000, 6, kMax);
  for (double alpha : {0.18, 0.2, 0.25, 0.29}) {
    SpacParams p;
    p.alpha = alpha;
    SpacHTree2 tree(p);
    tree.build(pts);
    tree.batch_delete({pts.begin(), pts.begin() + 4000});
    tree.batch_insert({pts.begin(), pts.begin() + 4000});
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants()) << "alpha " << alpha;
  }
}

// ---------------------------------------------------------------------------
// Scheduler reconfiguration
// ---------------------------------------------------------------------------

TEST(SchedulerReconfig, SetNumWorkersMidSession) {
  auto pts = datagen::uniform<2>(20000, 7, kMax);
  std::vector<std::size_t> sizes;
  for (int workers : {1, 3, 2}) {
    Scheduler::set_num_workers(workers);
    EXPECT_EQ(num_workers(), workers);
    SpacHTree2 tree;
    tree.build(pts);
    tree.batch_delete({pts.begin(), pts.begin() + 5000});
    sizes.push_back(tree.size());
    EXPECT_NO_THROW(tree.check_invariants());
  }
  for (auto s : sizes) EXPECT_EQ(s, pts.size() - 5000);
  // Restore the environment-configured default for any subsequent tests.
  if (const char* s = std::getenv("PSI_NUM_WORKERS")) {
    Scheduler::set_num_workers(std::atoi(s));
  } else {
    Scheduler::set_num_workers(1);
  }
}

}  // namespace
}  // namespace psi
