// psi::service unit tests: single-threaded semantics of the sharded,
// epoch-versioned service — routing, group commit, futures, snapshots,
// shard split/merge, and oracle equivalence across backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;
using namespace psi::service;

constexpr std::int64_t kMax = 1'000'000'000;

Box2 box_around(const Point2& c, std::int64_t half) {
  return testutil::box_around(c, half, kMax);
}

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

TEST(ShardMap, RoutesEveryCodeSomewhere) {
  auto m = ShardMap<std::int64_t, 2>::uniform(8);
  EXPECT_EQ(m.num_shards(), 8u);
  EXPECT_EQ(m.shard_of_code(0), 0u);
  EXPECT_EQ(m.shard_of_code(~std::uint64_t{0}), 7u);
  // Boundaries are increasing and adjacent shards tile the code space.
  for (std::size_t i = 0; i + 1 < m.num_shards(); ++i) {
    EXPECT_LT(m.upper_bound_of(i), m.upper_bound_of(i + 1));
    EXPECT_EQ(m.lower_bound_of(i + 1), m.upper_bound_of(i) + 1);
  }
  // Points route to the shard covering their code.
  auto pts = datagen::uniform<2>(2000, 17, kMax);
  for (const auto& p : pts) {
    const std::size_t s = m.shard_of(p);
    const std::uint64_t code = sfc::MortonCodec<std::int64_t, 2>::encode(p);
    EXPECT_GE(code, m.lower_bound_of(s));
    EXPECT_LE(code, m.upper_bound_of(s));
  }
}

TEST(ShardMap, SplitAndMergeKeepTiling) {
  auto m = ShardMap<std::int64_t, 2>::uniform(2);
  const std::uint64_t mid = m.upper_bound_of(0) / 2;
  ASSERT_TRUE(m.split(0, mid));
  EXPECT_EQ(m.num_shards(), 3u);
  EXPECT_EQ(m.upper_bound_of(0), mid);
  EXPECT_EQ(m.lower_bound_of(1), mid + 1);
  ASSERT_TRUE(m.merge(0));
  EXPECT_EQ(m.num_shards(), 2u);
  // Degenerate splits are rejected.
  EXPECT_FALSE(m.split(1, 0));                    // below shard 1's range
  EXPECT_FALSE(m.split(1, ~std::uint64_t{0}));    // == upper bound
  EXPECT_FALSE(m.merge(1));                       // no right neighbour
}

TEST(ShardMap, EqualPopulationPartitionBalancesRealCodes) {
  using Codec = sfc::MortonCodec<std::int64_t, 2>;
  auto pts = datagen::osm_sim(20000, 19);
  std::vector<std::uint64_t> codes(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) codes[i] = Codec::encode(pts[i]);
  std::sort(codes.begin(), codes.end());

  auto m = ShardMap<std::int64_t, 2, Codec>::from_sorted_codes(codes, 8);
  ASSERT_EQ(m.num_shards(), 8u);
  std::vector<std::size_t> pop(m.num_shards(), 0);
  for (const auto& p : pts) ++pop[m.shard_of(p)];
  // Quantile boundaries put every shard within ~2x of the mean; the naive
  // uniform() map would put all real-world codes in shard 0.
  const std::size_t mean = pts.size() / m.num_shards();
  for (std::size_t s = 0; s < pop.size(); ++s) {
    EXPECT_GT(pop[s], mean / 4) << "shard " << s << " starved";
    EXPECT_LT(pop[s], mean * 3) << "shard " << s << " overloaded";
  }
}

TEST(ShardMap, MonotoneBoxRoutingIsConservative) {
  using Codec = sfc::MortonCodec<std::int64_t, 2>;
  auto m = ShardMap<std::int64_t, 2, Codec>::uniform(16);
  auto pts = datagen::uniform<2>(4000, 23, kMax);
  auto anchors = datagen::ind_queries(pts, 32, 5, kMax);
  for (const auto& a : anchors) {
    const Box2 q = box_around(a, kMax / 50);
    const auto [lo, hi] = m.shard_range_for_box(q);
    ASSERT_LE(lo, hi);
    for (const auto& p : pts) {
      if (!q.contains(p)) continue;
      const std::size_t s = m.shard_of(p);
      EXPECT_GE(s, lo);
      EXPECT_LE(s, hi);
    }
  }
}

// ---------------------------------------------------------------------------
// Service semantics (manual pump; SpacZTree backend unless stated)
// ---------------------------------------------------------------------------

using ZService = SpatialService<SpacZTree2>;

TEST(SpatialService, BuildThenQueriesMatchOracle) {
  auto pts = datagen::osm_sim(20000, 3);
  ZService svc(ServiceConfig{.initial_shards = 8});
  svc.build(pts);
  EXPECT_EQ(svc.size(), pts.size());

  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  auto knn_q = datagen::ind_queries(pts, 24, 7, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : datagen::ind_queries(pts, 12, 11, kMax)) {
    ranges.push_back(box_around(q, kMax / 40));
  }
  auto snap = svc.snapshot();
  testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
}

TEST(SpatialService, QueuedRequestsResolveWithFutures) {
  ZService svc(ServiceConfig{.initial_shards = 4});
  auto pts = datagen::uniform<2>(5000, 29, kMax);

  auto ins_futs = svc.submit_insert_batch(pts);
  auto knn_fut = svc.submit_knn(pts[0], 5);
  auto cnt_fut = svc.submit_range_count(box_around(pts[0], kMax / 20));
  auto list_fut = svc.submit_range_list(box_around(pts[0], kMax / 20));
  EXPECT_EQ(svc.size(), 0u);  // nothing visible before a commit
  svc.flush();

  // Updates resolve with the epoch that made them visible.
  const std::uint64_t e = ins_futs[0].get().epoch;
  EXPECT_GT(e, 0u);
  EXPECT_LE(e, svc.epoch());
  EXPECT_EQ(svc.size(), pts.size());

  // Queries drained with the same group observe the inserts.
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto knn = knn_fut.get();
  testutil::expect_knn_equivalent(knn.points, pts[0],
                                  oracle.knn_distances(pts[0], 5));
  const Box2 b = box_around(pts[0], kMax / 20);
  EXPECT_EQ(cnt_fut.get().count, oracle.range_count(b));
  testutil::expect_same_multiset(list_fut.get().points, oracle.range_list(b));
}

TEST(SpatialService, InsertThenDeleteSameGroupIsNetZero) {
  ZService svc;
  const Point2 p{{123, 456}};
  auto f1 = svc.submit_insert(p);
  auto f2 = svc.submit_insert(p);
  auto f3 = svc.submit_delete(p);
  svc.flush();
  f1.get();
  f2.get();
  f3.get();
  EXPECT_EQ(svc.size(), 1u);  // duplicate multiset semantics: 2 in, 1 out
  auto snap = svc.snapshot();
  EXPECT_EQ(snap.range_count(box_around(p, 1)), 1u);
}

TEST(SpatialService, DeleteThenInsertSameGroupKeepsFifoOrder) {
  // The delete precedes the insert in the queue, so it must no-op and the
  // insert must survive — coalescing into batches may not reorder them.
  ZService svc;
  const Point2 p{{777, 888}};
  svc.submit_delete(p);
  svc.submit_insert(p);
  svc.flush();
  EXPECT_EQ(svc.size(), 1u);

  // And interleaved: ins, del, ins, del, ins -> exactly one copy left.
  const Point2 q{{555, 444}};
  svc.submit_insert(q);
  svc.submit_delete(q);
  svc.submit_insert(q);
  svc.submit_delete(q);
  svc.submit_insert(q);
  svc.flush();
  EXPECT_EQ(svc.snapshot().range_count(box_around(q, 0)), 1u);
}

TEST(SpatialService, RestartAfterStopServesTraffic) {
  ZService svc;
  svc.start();
  auto f1 = svc.submit_insert(Point2{{1, 1}});
  svc.stop();
  f1.get();
  svc.start();  // must reopen the queue, not spin on the closed flag
  auto f2 = svc.submit_insert(Point2{{2, 2}});
  EXPECT_GT(f2.get().epoch, 0u);  // background committer picked it up
  svc.stop();
  EXPECT_EQ(svc.size(), 2u);
}

TEST(SpatialService, MixedUpdateStreamMatchesOracle) {
  ZService svc(ServiceConfig{.initial_shards = 4});
  BruteForceIndex<std::int64_t, 2> oracle;
  auto pts = datagen::varden<2>(12000, 41, kMax);

  // Interleave insert groups with deletes of earlier points.
  const std::size_t batch = 1500;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const std::size_t hi = std::min(pts.size(), lo + batch);
    std::vector<Point2> ins(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                            pts.begin() + static_cast<std::ptrdiff_t>(hi));
    svc.submit_insert_batch(ins);
    oracle.batch_insert(ins);
    if (lo >= batch) {
      // Delete a slice of the previous group.
      std::vector<Point2> del(
          pts.begin() + static_cast<std::ptrdiff_t>(lo - batch),
          pts.begin() + static_cast<std::ptrdiff_t>(lo - batch / 2));
      svc.submit_delete_batch(del);
      oracle.batch_delete(del);
    }
    svc.flush();
    ASSERT_EQ(svc.size(), oracle.size());
  }
  auto snap = svc.snapshot();
  testutil::expect_same_multiset(snap.flatten(), oracle.points());

  auto knn_q = datagen::ind_queries(oracle.points(), 16, 13, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 30));
  testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
}

TEST(SpatialService, EpochAdvancesPerCommitAndSnapshotsAreStable) {
  ZService svc;
  const std::uint64_t e0 = svc.epoch();
  auto old_snap = svc.snapshot();

  svc.submit_insert(Point2{{1, 2}});
  svc.flush();
  EXPECT_EQ(svc.epoch(), e0 + 1);
  svc.submit_insert(Point2{{3, 4}});
  svc.flush();
  EXPECT_EQ(svc.epoch(), e0 + 2);

  // The pinned snapshot still sees the pre-update state.
  EXPECT_EQ(old_snap.size(), 0u);
  EXPECT_EQ(old_snap.epoch(), e0);
  EXPECT_EQ(svc.snapshot().size(), 2u);
}

TEST(SpatialService, EmptyFlushAndQueriesOnEmptyService) {
  ZService svc;
  svc.flush();
  EXPECT_EQ(svc.size(), 0u);
  auto snap = svc.snapshot();
  EXPECT_TRUE(snap.knn(Point2{{5, 5}}, 3).empty());
  EXPECT_EQ(snap.range_count(box_around(Point2{{5, 5}}, 100)), 0u);
  auto fut = svc.submit_knn(Point2{{5, 5}}, 3);
  svc.flush();
  EXPECT_TRUE(fut.get().points.empty());
}

TEST(SpatialService, OutOfDomainQueryBoxesStillRoute) {
  // Corners outside the codec domain (negative, or beyond the 32-bit 2D
  // curve precision) must be clamped before code routing, not wrapped —
  // wrapping inverted the shard interval and silently returned 0.
  ZService svc(ServiceConfig{.initial_shards = 8});
  std::vector<Point2> pts{{{5, 5}}, {{700000000, 700000000}}};
  auto filler = datagen::uniform<2>(4000, 97, kMax);
  pts.insert(pts.end(), filler.begin(), filler.end());
  svc.build(pts);
  auto snap = svc.snapshot();

  const Box2 neg{{{-10, -10}}, {{10, 10}}};
  EXPECT_EQ(snap.range_count(neg), 1u);
  EXPECT_EQ(snap.range_list(neg).size(), 1u);

  const Box2 huge{{{0, 0}}, {{std::int64_t{1} << 33, std::int64_t{1} << 33}}};
  EXPECT_EQ(snap.range_count(huge), pts.size());

  const Box2 all_neg{{{-100, -100}}, {{-1, -1}}};  // fully outside: empty
  EXPECT_EQ(snap.range_count(all_neg), 0u);
}

// ---------------------------------------------------------------------------
// Shard split / merge
// ---------------------------------------------------------------------------

TEST(SpatialService, SplitsUnderGrowthAndScattersLoad) {
  ServiceConfig cfg;
  cfg.initial_shards = 1;
  cfg.split_threshold = 2000;
  cfg.merge_threshold = 1;  // effectively disable merging
  ZService svc(cfg);

  auto pts = datagen::uniform<2>(30000, 59, kMax);
  svc.submit_insert_batch(pts);
  svc.flush();

  const auto st = svc.stats();
  EXPECT_GT(st.splits, 0u);
  EXPECT_GT(st.num_shards, 4u);
  EXPECT_EQ(st.size_total, pts.size());
  // No shard still exceeds the split threshold after rebalancing (uniform
  // data has no giant equal-code runs).
  EXPECT_LE(st.max_shard_size(), cfg.split_threshold);

  // Queries remain correct across the new topology.
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto snap = svc.snapshot();
  auto knn_q = datagen::ind_queries(pts, 12, 61, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 40));
  testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
}

TEST(SpatialService, InitialShardsActAsMergeFloor) {
  // Small dataset + large-scale default merge threshold: without the
  // min_shards floor this would collapse to one shard on the first commit.
  ZService svc(ServiceConfig{.initial_shards = 8});
  svc.build(datagen::uniform<2>(5000, 83, kMax));
  EXPECT_EQ(svc.stats().num_shards, 8u);
  svc.submit_insert(Point2{{42, 42}});
  svc.flush();
  EXPECT_EQ(svc.stats().num_shards, 8u);
}

TEST(SpatialService, MergesWhenPopulationShrinks) {
  ServiceConfig cfg;
  cfg.initial_shards = 8;
  cfg.split_threshold = 100000;
  cfg.merge_threshold = 500;
  cfg.min_shards = 1;  // allow shrink below the initial_shards floor
  ZService svc(cfg);

  auto pts = datagen::uniform<2>(20000, 67, kMax);
  svc.submit_insert_batch(pts);
  svc.flush();
  const std::size_t shards_full = svc.stats().num_shards;

  // Delete almost everything; underfull neighbours collapse.
  std::vector<Point2> del(pts.begin(), pts.end() - 100);
  svc.submit_delete_batch(del);
  svc.flush();

  const auto st = svc.stats();
  EXPECT_GT(st.merges, 0u);
  EXPECT_LT(st.num_shards, shards_full);
  EXPECT_EQ(st.size_total, 100u);
  auto snap = svc.snapshot();
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build({pts.end() - 100, pts.end()});
  testutil::expect_same_multiset(snap.flatten(), oracle.points());
}

// ---------------------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------------------

TEST(SpatialService, StatsCountOpsAndRenderJson) {
  ZService svc;
  svc.submit_insert(Point2{{1, 1}});
  svc.submit_insert(Point2{{2, 2}});
  svc.submit_delete(Point2{{1, 1}});
  svc.submit_knn(Point2{{1, 1}}, 1);
  svc.submit_range_count(box_around(Point2{{1, 1}}, 10));
  svc.submit_range_list(box_around(Point2{{1, 1}}, 10));
  auto ball_fut = svc.submit_ball(Point2{{1, 1}}, 5.0);
  svc.flush();

  // The queued ball query observed the surviving insert.
  EXPECT_EQ(ball_fut.get().count, 1u);

  const auto st = svc.stats();
  EXPECT_EQ(st.ops_insert, 2u);
  EXPECT_EQ(st.ops_delete, 1u);
  EXPECT_EQ(st.ops_knn, 1u);
  EXPECT_EQ(st.ops_range_count, 1u);
  EXPECT_EQ(st.ops_range_list, 1u);
  EXPECT_EQ(st.ops_ball, 1u);
  EXPECT_EQ(st.ops_updates(), 3u);
  EXPECT_EQ(st.ops_queries(), 4u);
  EXPECT_EQ(st.size_total, 1u);

  const std::string j = st.json();
  EXPECT_NE(j.find("\"ops_insert\":2"), std::string::npos);
  EXPECT_NE(j.find("\"ops_ball\":1"), std::string::npos);
  EXPECT_NE(j.find("\"num_shards\":"), std::string::npos);
  EXPECT_NE(j.find("\"shard_sizes\":["), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

// ---------------------------------------------------------------------------
// Backend generality: the service is index-agnostic
// ---------------------------------------------------------------------------

template <typename ServiceT>
void exercise_backend(ServiceT&& svc) {
  auto pts = datagen::uniform<2>(8000, 71, kMax);
  svc.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  auto extra = datagen::uniform<2>(2000, 73, kMax);
  svc.submit_insert_batch(extra);
  oracle.batch_insert(extra);
  std::vector<Point2> del(pts.begin(), pts.begin() + 1000);
  svc.submit_delete_batch(del);
  oracle.batch_delete(del);
  svc.flush();

  ASSERT_EQ(svc.size(), oracle.size());
  auto snap = svc.snapshot();
  auto knn_q = datagen::ind_queries(oracle.points(), 8, 79, kMax);
  std::vector<Box2> ranges;
  for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 40));
  testutil::expect_queries_match(snap, oracle, knn_q, 10, ranges);
}

TEST(SpatialServiceBackends, SpacHTree) {
  exercise_backend(SpatialService<SpacHTree2>(ServiceConfig{.initial_shards = 4}));
}

TEST(SpatialServiceBackends, PkdTree) {
  exercise_backend(SpatialService<PkdTree2>(ServiceConfig{.initial_shards = 4}));
}

TEST(SpatialServiceBackends, POrthTreeWithFactory) {
  const Box2 universe{{{0, 0}}, {{kMax, kMax}}};
  SpatialService<POrthTree2> svc(
      ServiceConfig{.initial_shards = 4},
      [&] { return POrthTree2({}, universe); });
  exercise_backend(std::move(svc));
}

}  // namespace
