// psi::durability tests: WAL framing and rotation, torn-tail and bit-flip
// fuzz against a brute-force prefix oracle, checkpoint/manifest atomicity,
// and crash-restart recovery for both SpatialService and the 2-node
// DistributedService (the kill -9 flavour lives in crash_writer.cpp,
// driven by the CI crash-recovery loop).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

#include "psi/durability/checkpoint.h"
#include "psi/durability/recovery.h"
#include "psi/durability/wal.h"
#include "psi/net/distributed_service.h"
#include "psi/net/transport.h"
#include "psi/telemetry/registry.h"

namespace {

using namespace psi;
namespace fs = std::filesystem;

using ZService = service::SpatialService<SpacZTree2>;
using DService = net::DistributedService<SpacZTree2>;

constexpr std::int64_t kMax = 1 << 16;

Box2 whole_domain() {
  Box2 b;
  b.lo[0] = b.lo[1] = 0;
  b.hi[0] = b.hi[1] = kMax;
  return b;
}

// Fresh per-test scratch directory under gtest's temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "psi_durability_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

durability::DurabilityConfig test_cfg(const std::string& dir) {
  durability::DurabilityConfig d;
  d.enabled = true;
  d.dir = dir;
  d.fsync = false;  // media guarantees are not under test here
  return d;
}

std::vector<std::uint8_t> one_point_commit(std::uint64_t epoch,
                                           const Point2& p) {
  std::vector<service::OpRun<Point2>> runs;
  runs.push_back({/*is_delete=*/false, {p}});
  std::vector<durability::CommitShardRef<Point2>> shards;
  shards.push_back({/*key=*/42, /*version=*/epoch, &runs});
  return durability::encode_commit_record(epoch, shards);
}

void expect_same_multiset(std::vector<Point2> a, std::vector<Point2> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(Wal, RoundTripCommitAndMarkerRecords) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("roundtrip");
  durability::WalWriter w;
  w.open(dir, test_cfg(dir));
  const Point2 p{123, 456};
  w.append(one_point_commit(7, p));
  w.append(durability::encode_mark_record(7));
  w.sync();
  EXPECT_EQ(w.appends(), 2u);
  EXPECT_GT(w.bytes(), 0u);
  w.close();

  const auto segs = durability::list_segments(dir);
  ASSERT_EQ(segs.size(), 1u);
  durability::WalSegmentCursor cur(segs[0].second);
  ASSERT_TRUE(cur.valid());
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(cur.next(payload));
  EXPECT_EQ(durability::record_kind(payload), durability::RecordKind::kCommit);
  const auto rec = durability::decode_commit_record<Point2>(payload);
  EXPECT_EQ(rec.epoch, 7u);
  ASSERT_EQ(rec.shards.size(), 1u);
  EXPECT_EQ(rec.shards[0].key, 42u);
  ASSERT_EQ(rec.shards[0].runs.size(), 1u);
  ASSERT_EQ(rec.shards[0].runs[0].pts.size(), 1u);
  EXPECT_EQ(rec.shards[0].runs[0].pts[0], p);
  ASSERT_TRUE(cur.next(payload));
  EXPECT_EQ(durability::decode_mark_record(payload), 7u);
  EXPECT_FALSE(cur.next(payload));
  EXPECT_FALSE(cur.torn());

  EXPECT_EQ(durability::last_marker(dir), 7u);
}

TEST(Wal, RotationAndTruncation) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("rotate");
  auto cfg = test_cfg(dir);
  cfg.segment_bytes = 128;  // force size-based rotation quickly
  durability::WalWriter w;
  w.open(dir, cfg);
  for (std::uint64_t e = 1; e <= 8; ++e) {
    w.append(one_point_commit(e, Point2{static_cast<std::int64_t>(e), 0}));
  }
  EXPECT_GT(durability::list_segments(dir).size(), 1u);

  // Explicit rotation: records so far live strictly below the new seq.
  const std::uint64_t watermark = w.rotate();
  EXPECT_EQ(w.active_seq(), watermark);
  w.append(one_point_commit(9, Point2{9, 0}));
  w.truncate_below(watermark);
  w.close();
  const auto segs = durability::list_segments(dir);
  for (const auto& [seq, path] : segs) EXPECT_GE(seq, watermark) << path;

  // Only the post-rotation record survives truncation.
  const auto rec = durability::recover<std::int64_t, 2>(dir);
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.records_applied, 1u);
  ASSERT_EQ(rec.shards.size(), 1u);
  expect_same_multiset(rec.shards[0].pts, {Point2{9, 0}});
}

// ---------------------------------------------------------------------------
// Torn-tail / corruption fuzz vs a brute-force prefix oracle
// ---------------------------------------------------------------------------

struct FuzzLog {
  std::string segment_name;          // filename inside the WAL dir
  std::vector<std::uint8_t> bytes;   // full segment file image
  std::vector<std::size_t> ends;     // byte offset after record i
  std::vector<Point2> points;        // point inserted by record i
};

// One segment of N single-insert commit records with known boundaries.
FuzzLog build_fuzz_log(std::size_t n) {
  const std::string dir = fresh_dir("fuzz_build");
  durability::WalWriter w;
  w.open(dir, test_cfg(dir));
  FuzzLog log;
  std::size_t off = durability::kSegmentHeaderBytes;
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 p{static_cast<std::int64_t>(100 + i),
                   static_cast<std::int64_t>(200 + i)};
    const auto payload = one_point_commit(i + 1, p);
    w.append(payload);
    off += durability::kRecordPreludeBytes + payload.size();
    log.ends.push_back(off);
    log.points.push_back(p);
  }
  w.sync();
  const auto segs = durability::list_segments(dir);
  EXPECT_EQ(segs.size(), 1u);
  log.segment_name = fs::path(segs[0].second).filename().string();
  std::ifstream in(segs[0].second, std::ios::binary);
  log.bytes.assign(std::istreambuf_iterator<char>(in), {});
  EXPECT_EQ(log.bytes.size(), log.ends.back());
  return log;
}

void write_segment(const std::string& dir, const FuzzLog& log,
                   const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir + "/" + log.segment_name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Number of whole records at or below byte offset `t`.
std::size_t oracle_prefix(const FuzzLog& log, std::size_t t) {
  std::size_t k = 0;
  while (k < log.ends.size() && log.ends[k] <= t) ++k;
  return k;
}

TEST(WalFuzz, TruncationAtEveryByteRecoversLongestValidPrefix) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const FuzzLog log = build_fuzz_log(6);
  const std::string dir = fresh_dir("fuzz_trunc");
  for (std::size_t t = 0; t <= log.bytes.size(); ++t) {
    write_segment(dir, log,
                  {log.bytes.begin(),
                   log.bytes.begin() + static_cast<std::ptrdiff_t>(t)});
    const auto rec = durability::recover<std::int64_t, 2>(dir);
    const std::size_t k = t < durability::kSegmentHeaderBytes
                              ? 0
                              : oracle_prefix(log, t);
    ASSERT_EQ(rec.records_applied, k) << "truncated at byte " << t;
    ASSERT_EQ(rec.found, k > 0) << "truncated at byte " << t;
    // Clean EOF only at an exact record boundary past an intact header.
    const bool clean = t >= durability::kSegmentHeaderBytes &&
                       (k == log.ends.size() || t == (k == 0
                            ? durability::kSegmentHeaderBytes
                            : log.ends[k - 1]));
    ASSERT_EQ(rec.torn_tail, !clean) << "truncated at byte " << t;
    std::vector<Point2> expect(log.points.begin(), log.points.begin() +
                               static_cast<std::ptrdiff_t>(k));
    std::vector<Point2> got;
    for (const auto& s : rec.shards) {
      got.insert(got.end(), s.pts.begin(), s.pts.end());
    }
    expect_same_multiset(got, expect);
  }
}

TEST(WalFuzz, BitFlipsNeverCrashAndRecoverAPrefix) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const FuzzLog log = build_fuzz_log(6);
  const std::string dir = fresh_dir("fuzz_flip");
  for (std::size_t pos = 0; pos < log.bytes.size(); pos += 3) {
    std::vector<std::uint8_t> mutated = log.bytes;
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    write_segment(dir, log, mutated);
    const auto rec = durability::recover<std::int64_t, 2>(dir);
    // CRC framing stops replay at the damaged record: whatever comes back
    // must be an exact prefix of the original insert stream.
    ASSERT_LE(rec.records_applied, log.points.size()) << "flip at " << pos;
    std::vector<Point2> expect(
        log.points.begin(),
        log.points.begin() + static_cast<std::ptrdiff_t>(rec.records_applied));
    std::vector<Point2> got;
    for (const auto& s : rec.shards) {
      got.insert(got.end(), s.pts.begin(), s.pts.end());
    }
    expect_same_multiset(got, expect);
    // A flip inside a record body (past the header) must not replay all
    // records as if nothing happened — CRC32 detects every 1-bit error.
    if (pos >= durability::kSegmentHeaderBytes) {
      ASSERT_LT(rec.records_applied, log.points.size()) << "flip at " << pos;
      ASSERT_TRUE(rec.torn_tail) << "flip at " << pos;
    }
  }
}

TEST(WalFuzz, DeleteTargetingRekeyedShardStillRemovesThePoint) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  // A split between checkpoint and crash re-keys shards: the checkpoint
  // holds the victim under key 1, but the post-split delete record names
  // key 99. Recovery's multiset semantics must still remove it.
  const std::string dir = fresh_dir("rekeyed_delete");
  durability::Manifest m;
  m.epoch = 1;
  m.shards.resize(1);
  m.shards[0] = {/*key=*/1, /*version=*/1, /*factory_id=*/0, ""};
  durability::write_checkpoint<std::int64_t, 2>(
      dir, m, {{{10, 10}, {11, 11}}}, false);

  durability::WalWriter w;
  w.open(dir, test_cfg(dir));
  std::vector<service::OpRun<Point2>> runs;
  runs.push_back({/*is_delete=*/true, {Point2{10, 10}}});
  std::vector<durability::CommitShardRef<Point2>> shards;
  shards.push_back({/*key=*/99, /*version=*/5, &runs});
  w.append(durability::encode_commit_record(2, shards));
  w.sync();
  w.close();

  const auto rec = durability::recover<std::int64_t, 2>(dir);
  EXPECT_EQ(rec.records_applied, 1u);
  expect_same_multiset(rec.all_points(), {{11, 11}});
}

// ---------------------------------------------------------------------------
// Checkpoints and the manifest
// ---------------------------------------------------------------------------

TEST(Checkpoint, WriteReadAndSupersede) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("ckpt");
  durability::Manifest m;
  m.epoch = 5;
  m.watermark = 3;
  m.shards.resize(2);
  m.shards[0] = {/*key=*/1, /*version=*/10, /*factory_id=*/0, ""};
  m.shards[1] = {/*key=*/2, /*version=*/11, /*factory_id=*/1, ""};
  std::vector<std::vector<Point2>> pts = {{{1, 1}, {2, 2}}, {{3, 3}}};
  durability::write_checkpoint<std::int64_t, 2>(dir, m, pts, false);

  const auto back = durability::read_manifest(dir);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 5u);
  EXPECT_EQ(back->watermark, 3u);
  ASSERT_EQ(back->shards.size(), 2u);
  EXPECT_EQ(back->shards[1].factory_id, 1u);

  auto rec = durability::recover<std::int64_t, 2>(dir);
  EXPECT_TRUE(rec.found);
  EXPECT_EQ(rec.checkpoint_epoch, 5u);
  expect_same_multiset(rec.all_points(), {{1, 1}, {2, 2}, {3, 3}});

  // A later checkpoint supersedes atomically and sweeps the old files.
  durability::Manifest m2;
  m2.epoch = 9;
  m2.watermark = 7;
  m2.shards.resize(1);
  m2.shards[0] = {/*key=*/1, /*version=*/20, /*factory_id=*/0, ""};
  durability::write_checkpoint<std::int64_t, 2>(dir, m2, {{{5, 5}}}, false);
  rec = durability::recover<std::int64_t, 2>(dir);
  EXPECT_EQ(rec.checkpoint_epoch, 9u);
  expect_same_multiset(rec.all_points(), {{5, 5}});
  std::size_t ckpt_files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("ckpt-", 0) == 0) ++ckpt_files;
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  EXPECT_EQ(ckpt_files, 1u);  // stale epoch-5 snapshots swept
}

TEST(Checkpoint, StrayTmpFilesAreIgnoredAndSwept) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("ckpt_tmp");
  {
    // A crash mid-write leaves a garbage .tmp; it must not confuse
    // recovery (no manifest yet -> nothing found).
    std::ofstream junk(dir + "/ckpt-1-1.bin.tmp", std::ios::binary);
    junk << "garbage";
  }
  auto rec = durability::recover<std::int64_t, 2>(dir);
  EXPECT_FALSE(rec.found);

  durability::Manifest m;
  m.epoch = 1;
  m.shards.resize(1);
  m.shards[0] = {/*key=*/1, /*version=*/1, /*factory_id=*/0, ""};
  durability::write_checkpoint<std::int64_t, 2>(dir, m, {{{4, 4}}}, false);
  EXPECT_FALSE(fs::exists(dir + "/ckpt-1-1.bin.tmp"));
  rec = durability::recover<std::int64_t, 2>(dir);
  expect_same_multiset(rec.all_points(), {{4, 4}});
}

// ---------------------------------------------------------------------------
// SpatialService crash-restart
// ---------------------------------------------------------------------------

service::ServiceConfig durable_service_cfg(const std::string& dir) {
  service::ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = test_cfg(dir);
  return cfg;
}

std::vector<Point2> service_contents(ZService& svc) {
  auto fut = svc.submit_range_list(whole_domain());
  svc.flush();
  return fut.get().points;
}

TEST(ServiceDurability, RestartRecoversBuildAndCommits) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("svc_restart");
  const auto base = datagen::uniform<2>(2000, 1, kMax);
  const auto extra = datagen::uniform<2>(300, 2, kMax);
  std::vector<Point2> oracle(base.begin() + 100, base.end());
  oracle.insert(oracle.end(), extra.begin(), extra.end());
  {
    ZService svc(durable_service_cfg(dir));
    svc.build(base);
    auto ins = svc.submit_insert_batch(extra);
    auto del = svc.submit_delete_batch(
        {base.begin(), base.begin() + 100});
    svc.flush();
    for (auto& f : ins) f.get();
    for (auto& f : del) f.get();
  }
  {
    ZService svc(durable_service_cfg(dir));
    expect_same_multiset(service_contents(svc), oracle);
    const auto s = svc.stats();
    EXPECT_GE(s.recovery_ms, 0.0);
    // Recovered state keeps accumulating durably: commit, restart again.
    auto more = svc.submit_insert_batch({{7, 7}, {8, 8}});
    svc.flush();
    for (auto& f : more) f.get();
  }
  oracle.push_back({7, 7});
  oracle.push_back({8, 8});
  {
    ZService svc(durable_service_cfg(dir));
    expect_same_multiset(service_contents(svc), oracle);
  }
}

TEST(ServiceDurability, WalTailAloneCarriesPostCheckpointCommits) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("svc_wal_tail");
  std::vector<Point2> oracle;
  {
    // No build(): the only checkpoint is the empty startup one, so the
    // entire state must come back from WAL replay alone.
    ZService svc(durable_service_cfg(dir));
    for (int round = 0; round < 5; ++round) {
      std::vector<Point2> batch;
      for (int i = 0; i < 20; ++i) {
        batch.push_back({round * 100 + i, i});
      }
      auto futs = svc.submit_insert_batch(batch);
      svc.flush();
      for (auto& f : futs) f.get();
      oracle.insert(oracle.end(), batch.begin(), batch.end());
    }
    EXPECT_GE(svc.stats().wal_appends, 5u);
  }
  {
    ZService svc(durable_service_cfg(dir));
    expect_same_multiset(service_contents(svc), oracle);
  }
}

TEST(ServiceDurability, AutoCheckpointTruncatesTheLog) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("svc_auto_ckpt");
  auto cfg = durable_service_cfg(dir);
  cfg.durability.checkpoint_every = 2;  // checkpoint every ~2 epochs
  std::vector<Point2> oracle;
  {
    ZService svc(cfg);
    for (int round = 0; round < 8; ++round) {
      std::vector<Point2> batch{{round, 0}, {round, 1}};
      auto futs = svc.submit_insert_batch(batch);
      svc.flush();
      for (auto& f : futs) f.get();
      oracle.insert(oracle.end(), batch.begin(), batch.end());
    }
    // The log was truncated along the way: the tail holds at most the
    // records since the last auto-checkpoint, not all 8 commits.
    std::size_t tail_records = 0;
    std::vector<std::uint8_t> payload;
    for (const auto& [seq, path] : durability::list_segments(dir)) {
      durability::WalSegmentCursor cur(path);
      while (cur.next(payload)) ++tail_records;
    }
    EXPECT_LT(tail_records, 8u);
  }
  {
    ZService svc(cfg);
    expect_same_multiset(service_contents(svc), oracle);
  }
}

TEST(ServiceDurability, OffByDefaultWritesNothing) {
  const std::string dir = fresh_dir("svc_off");
  fs::remove_all(dir);  // service must not create it
  service::ServiceConfig cfg;
  cfg.initial_shards = 4;
  EXPECT_FALSE(cfg.durability.armed());
  ZService svc(cfg);
  svc.build(datagen::uniform<2>(500, 3, kMax));
  auto futs = svc.submit_insert_batch({{1, 1}});
  svc.flush();
  for (auto& f : futs) f.get();
  const auto s = svc.stats();
  EXPECT_EQ(s.wal_appends, 0u);
  EXPECT_EQ(s.wal_bytes, 0u);
  EXPECT_EQ(s.recovery_ms, 0.0);
  EXPECT_FALSE(fs::exists(dir));
}

TEST(ServiceDurability, StatsAndRegistryExportWalSeries) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("svc_stats");
  ZService svc(durable_service_cfg(dir));
  auto futs = svc.submit_insert_batch({{1, 1}, {2, 2}});
  svc.flush();
  for (auto& f : futs) f.get();
  const auto s = svc.stats();
  EXPECT_EQ(s.stats_version, 5u);
  EXPECT_GE(s.wal_appends, 1u);
  EXPECT_GT(s.wal_bytes, 0u);
  const std::string j = s.json();
  EXPECT_NE(j.find("\"wal_appends\":"), std::string::npos);
  EXPECT_NE(j.find("\"wal_bytes\":"), std::string::npos);
  EXPECT_NE(j.find("\"recovery_ms\":"), std::string::npos);
  EXPECT_NE(j.find("\"wal_fsync\":"), std::string::npos);

  // The registry series ride on the telemetry subsystem; with telemetry
  // compiled out the WAL still counts its own appends (checked above) but
  // exports nothing.
  if (telemetry::kEnabled) {
    bool saw_appends = false, saw_recovery = false;
    const auto snap = telemetry::StatsRegistry::instance().snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name == "psi_wal_appends_total" && value > 0) saw_appends = true;
      if (name == "psi_recovery_ms") saw_recovery = true;
    }
    EXPECT_TRUE(saw_appends);
    EXPECT_TRUE(saw_recovery);
  }
}

// ---------------------------------------------------------------------------
// Distributed crash-restart and host death
// ---------------------------------------------------------------------------

net::DistributedConfig durable_dist_cfg(const std::string& dir) {
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability = test_cfg(dir);
  return cfg;
}

TEST(DistributedDurability, RestartRecoversCommittedState) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("dist_restart");
  const auto cfg = durable_dist_cfg(dir);
  const auto base = datagen::uniform<2>(1500, 11, kMax);
  const auto extra = datagen::uniform<2>(200, 12, kMax);
  std::vector<Point2> oracle(base.begin() + 50, base.end());
  oracle.insert(oracle.end(), extra.begin(), extra.end());
  {
    net::LoopbackTransport fabric;
    DService svc(fabric, 2, cfg);
    svc.build(base);
    svc.insert_batch(extra);
    svc.delete_batch({base.begin(), base.begin() + 50});
  }
  {
    net::LoopbackTransport fabric;
    DService svc(fabric, 2, cfg);
    svc.recover_from_disk();
    expect_same_multiset(svc.flatten(), oracle);
    EXPECT_GT(svc.stats().recovery_ms, 0.0);
    // The revived deployment keeps committing durably.
    svc.insert_batch({{9, 9}});
  }
  {
    net::LoopbackTransport fabric;
    DService svc(fabric, 2, cfg);
    svc.recover_from_disk();
    auto oracle2 = oracle;
    oracle2.push_back({9, 9});
    expect_same_multiset(svc.flatten(), oracle2);
  }
}

TEST(DistributedDurability, HostDeathReinstallsShardsOnSurvivors) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  const std::string dir = fresh_dir("dist_host_death");
  net::LoopbackTransport fabric;
  DService svc(fabric, 2, durable_dist_cfg(dir));
  const auto base = datagen::uniform<2>(1200, 21, kMax);
  svc.build(base);
  const auto extra = datagen::uniform<2>(150, 22, kMax);
  svc.insert_batch(extra);
  std::vector<Point2> oracle = base;
  oracle.insert(oracle.end(), extra.begin(), extra.end());

  svc.crash_host(0);
  svc.recover_host(0);
  expect_same_multiset(svc.flatten(), oracle);
  EXPECT_EQ(svc.size(), oracle.size());

  // The shrunken cluster still serves reads and commits.
  svc.insert_batch({{3, 3}});
  oracle.push_back({3, 3});
  expect_same_multiset(svc.flatten(), oracle);
  EXPECT_EQ(svc.range_count(whole_domain()), oracle.size());
}

}  // namespace
