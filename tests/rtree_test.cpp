// Tests for the sequential Guttman quadratic R-tree baseline: node fill
// invariants (m..M), uniform leaf depth, query correctness, deletion with
// condense-tree reinsertion.

#include <gtest/gtest.h>

#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/baselines/rtree.h"
#include "psi/datagen/generators.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

TEST(RTreeBase, InsertInvariantsAndSize) {
  auto pts = datagen::uniform<2>(5000, 1, kMax);
  RTree2 tree;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.insert(pts[i]);
    if (i % 500 == 0) {
      ASSERT_NO_THROW(tree.check_invariants());
    }
  }
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(RTreeBase, QueriesMatchOracle) {
  auto pts = datagen::varden<2>(4000, 2, kMax);
  RTree2 tree;
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto ind = datagen::ind_queries(pts, 25, 2, kMax);
  auto ood = datagen::ood_queries<2>(25, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, ind, 10, ranges);
  testutil::expect_queries_match(tree, oracle, ood, 10, ranges);
}

TEST(RTreeBase, EraseCondensesAndMatchesOracle) {
  auto pts = datagen::uniform<2>(3000, 3, kMax);
  RTree2 tree;
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  for (std::size_t i = 0; i < pts.size(); i += 2) {
    ASSERT_TRUE(tree.erase(pts[i]));
    if (i % 300 == 0) {
      ASSERT_NO_THROW(tree.check_invariants());
    }
  }
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 2) dels.push_back(pts[i]);
  oracle.batch_delete(dels);
  EXPECT_EQ(tree.size(), oracle.size());
  EXPECT_NO_THROW(tree.check_invariants());
  auto qs = datagen::ood_queries<2>(20, 3, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(RTreeBase, EraseMissingReturnsFalse) {
  RTree2 tree;
  EXPECT_FALSE(tree.erase(Point2{{1, 1}}));
  tree.insert(Point2{{5, 5}});
  EXPECT_FALSE(tree.erase(Point2{{1, 1}}));
  EXPECT_TRUE(tree.erase(Point2{{5, 5}}));
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeBase, DeleteEverythingThenReuse) {
  auto pts = datagen::uniform<2>(1500, 4, kMax);
  RTree2 tree;
  tree.build(pts);
  for (const auto& p : pts) ASSERT_TRUE(tree.erase(p));
  EXPECT_TRUE(tree.empty());
  tree.build(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(RTreeBase, DuplicatesSupported) {
  RTree2 tree;
  for (int i = 0; i < 100; ++i) tree.insert(Point2{{3, 3}});
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_NO_THROW(tree.check_invariants());
  EXPECT_EQ(tree.range_count(Box2{{{3, 3}}, {{3, 3}}}), 100u);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(tree.erase(Point2{{3, 3}}));
  EXPECT_EQ(tree.size(), 60u);
}

TEST(RTreeBase, KnnBestFirstMatchesOracleOnClusteredData) {
  auto pts = datagen::osm_sim(3000, 5);
  RTree2 tree;
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ind_queries(pts, 30, 5, datagen::kDefaultMax2D);
  for (const auto& q : qs) {
    testutil::expect_knn_equivalent(tree.knn(q, 7), q,
                                    oracle.knn_distances(q, 7));
  }
}

TEST(RTreeBase, NodeCapacitySweep) {
  auto pts = datagen::uniform<2>(2000, 6, kMax);
  for (std::size_t cap : {4, 8, 16, 32}) {
    RTreeParams params;
    params.max_entries = cap;
    params.min_entries = cap / 2 - cap / 4;
    RTree2 tree(params);
    tree.build(pts);
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
  }
}

TEST(RTreeBase, ThreeDimensional) {
  auto pts = datagen::cosmo_sim(2500, 7);
  RTree3 tree;
  tree.build(pts);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(15, 7, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 150'000, datagen::kDefaultMax3D);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

}  // namespace
}  // namespace psi
