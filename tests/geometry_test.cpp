// Tests for points, boxes (containment, intersection, min-distance), and
// the kNN buffer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/random.h"

namespace psi {
namespace {

TEST(Point, ComparisonAndAccess) {
  Point2 a{{1, 2}}, b{{1, 3}}, c{{1, 2}};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a[1], 2);
  a[1] = 9;
  EXPECT_EQ(a[1], 9);
}

TEST(Point, SquaredDistance) {
  Point2 a{{0, 0}}, b{{3, 4}};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  Point3 c{{1, 1, 1}}, d{{2, 2, 2}};
  EXPECT_DOUBLE_EQ(squared_distance(c, d), 3.0);
}

TEST(Point, SquaredDistanceNoOverflowAtCoordinateExtremes) {
  Point2 a{{0, 0}}, b{{1'000'000'000, 1'000'000'000}};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 2e18);
}

TEST(Box, EmptyBoxProperties) {
  auto e = Box2::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.contains(Point2{{0, 0}}));
  auto b = Box2::of_point(Point2{{5, 5}});
  EXPECT_FALSE(b.is_empty());
  // Merging with empty is identity.
  auto m = merged(e, b);
  EXPECT_EQ(m, b);
}

TEST(Box, ExpandAndContains) {
  auto b = Box2::of_point(Point2{{0, 0}});
  b.expand(Point2{{10, -5}});
  EXPECT_TRUE(b.contains(Point2{{5, -2}}));
  EXPECT_TRUE(b.contains(Point2{{10, 0}}));  // boundary inclusive
  EXPECT_FALSE(b.contains(Point2{{11, 0}}));
  EXPECT_FALSE(b.contains(Point2{{5, 1}}));
}

TEST(Box, BoxContainsBox) {
  Box2 outer{{{0, 0}}, {{10, 10}}};
  Box2 inner{{{2, 2}}, {{8, 8}}};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  Box2 straddle{{{5, 5}}, {{15, 15}}};
  EXPECT_FALSE(outer.contains(straddle));
  EXPECT_TRUE(outer.intersects(straddle));
}

TEST(Box, IntersectsIsSymmetricAndBoundaryInclusive) {
  Box2 a{{{0, 0}}, {{5, 5}}};
  Box2 b{{{5, 5}}, {{9, 9}}};  // touch at a corner
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  Box2 c{{{6, 0}}, {{9, 4}}};
  EXPECT_FALSE(a.intersects(c));
}

TEST(Box, MinSquaredDistanceRegions) {
  Box2 b{{{0, 0}}, {{10, 10}}};
  EXPECT_DOUBLE_EQ(min_squared_distance(b, Point2{{5, 5}}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(min_squared_distance(b, Point2{{10, 10}}), 0.0);  // corner
  EXPECT_DOUBLE_EQ(min_squared_distance(b, Point2{{13, 14}}), 25.0);  // corner out
  EXPECT_DOUBLE_EQ(min_squared_distance(b, Point2{{-3, 5}}), 9.0);    // face out
}

TEST(Box, MinSquaredDistanceMatchesBruteForceOverGrid) {
  Box2 b{{{3, 4}}, {{7, 9}}};
  Rng rng(5);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    Point2 q{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, 20)) - 5,
              static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, 20)) - 5}};
    double best = std::numeric_limits<double>::infinity();
    for (std::int64_t x = b.lo[0]; x <= b.hi[0]; ++x) {
      for (std::int64_t y = b.lo[1]; y <= b.hi[1]; ++y) {
        best = std::min(best, squared_distance(q, Point2{{x, y}}));
      }
    }
    EXPECT_DOUBLE_EQ(min_squared_distance(b, q), best) << q;
  }
}

TEST(Box, AreaAndEnlargement) {
  Box2 b{{{0, 0}}, {{4, 5}}};
  EXPECT_DOUBLE_EQ(box_area(b), 20.0);
  EXPECT_DOUBLE_EQ(enlargement(b, Point2{{2, 2}}), 0.0);
  EXPECT_DOUBLE_EQ(enlargement(b, Point2{{8, 5}}), 20.0);  // 8*5 - 4*5
  Box2 o{{{4, 0}}, {{6, 5}}};
  EXPECT_DOUBLE_EQ(enlargement(b, o), 10.0);
}

TEST(KnnBuffer, KeepsKSmallest) {
  KnnBuffer<Point2> buf(3);
  EXPECT_EQ(buf.worst(), std::numeric_limits<double>::infinity());
  buf.offer(9, Point2{{3, 0}});
  buf.offer(1, Point2{{1, 0}});
  buf.offer(16, Point2{{4, 0}});
  EXPECT_TRUE(buf.full());
  EXPECT_DOUBLE_EQ(buf.worst(), 16.0);
  buf.offer(4, Point2{{2, 0}});  // evicts 16
  EXPECT_DOUBLE_EQ(buf.worst(), 9.0);
  buf.offer(25, Point2{{5, 0}});  // ignored
  auto sorted = buf.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].dist2, 1.0);
  EXPECT_DOUBLE_EQ(sorted[1].dist2, 4.0);
  EXPECT_DOUBLE_EQ(sorted[2].dist2, 9.0);
}

TEST(KnnBuffer, MatchesSortOracleOnRandomStream) {
  Rng rng(6);
  const std::size_t k = 10, n = 5000;
  KnnBuffer<Point2> buf(k);
  std::vector<double> all;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(rng.ith_bounded(i, 1000000));
    buf.offer(d, Point2{{static_cast<std::int64_t>(i), 0}});
    all.push_back(d);
  }
  std::sort(all.begin(), all.end());
  auto sorted = buf.sorted();
  ASSERT_EQ(sorted.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(sorted[i].dist2, all[i]);
  }
}

TEST(KnnBuffer, CapacityOneAndUnderfill) {
  KnnBuffer<Point2> one(1);
  one.offer(5, Point2{{1, 1}});
  one.offer(2, Point2{{2, 2}});
  one.offer(7, Point2{{3, 3}});
  ASSERT_EQ(one.sorted().size(), 1u);
  EXPECT_DOUBLE_EQ(one.sorted()[0].dist2, 2.0);

  KnnBuffer<Point2> big(100);
  big.offer(1, Point2{{0, 0}});
  EXPECT_FALSE(big.full());
  EXPECT_EQ(big.size(), 1u);
  EXPECT_EQ(big.worst(), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace psi
