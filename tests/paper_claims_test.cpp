// Tests for specific *claims made in the paper*, beyond basic correctness:
//
//  * Sec 3: P-Orth construction is "conceptually equivalent to integer-
//    sorting SFC codes, but without generating, storing, or using them" —
//    so an in-order traversal of the tree must visit points in Morton
//    order (up to intra-leaf order).
//  * Sec 3.3 / A: orth-tree height is O(log Δ); with bounded aspect ratio
//    O(log n).
//  * Sec 4: SPaC weight balance implies O(log n) height under churn.
//  * Sec 5.1.3: Hilbert's locality gives SPaC-H faster kNN than SPaC-Z
//    (generous margins — this is a performance-shape assertion).
//  * Sec 5.1.2: orth-trees are the only indexes whose *structure* ignores
//    update history (queries after churn match queries after fresh build).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

// ---------------------------------------------------------------------------
// P-Orth ≡ Morton sort (Sec 3)
// ---------------------------------------------------------------------------

TEST(PaperClaims, POrthTraversalIsMortonOrder) {
  // The P-Orth orthant convention (bit d = dimension d) matches the Morton
  // interleave, and children are visited 0..2^D-1, so flatten() — which is
  // an in-order traversal — must produce points whose Morton codes are
  // non-decreasing across leaf boundaries. Sorting within each leaf-sized
  // window and checking global order verifies it without exposing leaves.
  auto pts = datagen::uniform<2>(30000, 1, kMax);
  // A power-of-two universe makes orth-tree midpoints = Morton bit splits.
  const std::int64_t side = std::int64_t{1} << 30;
  for (auto& p : pts) {
    p[0] &= side - 1;
    p[1] &= side - 1;
  }
  POrthParams params;
  params.leaf_wrap = 1;  // leaf order is unspecified; avoid it entirely
  POrthTree2 tree(params, Box2{{{0, 0}}, {{side - 1, side - 1}}});
  tree.build(pts);
  auto flat = tree.flatten();
  ASSERT_EQ(flat.size(), pts.size());
  using Codec = sfc::MortonCodec<std::int64_t, 2>;
  for (std::size_t i = 1; i < flat.size(); ++i) {
    ASSERT_LE(Codec::encode(flat[i - 1]), Codec::encode(flat[i]))
        << "at index " << i;
  }
}

TEST(PaperClaims, ZdTreeTraversalIsMortonOrderByConstruction) {
  auto pts = datagen::varden<2>(20000, 2, kMax);
  ZdTree2 tree;
  tree.build(pts);
  auto flat = tree.flatten();
  using Codec = sfc::MortonCodec<std::int64_t, 2>;
  for (std::size_t i = 1; i < flat.size(); ++i) {
    ASSERT_LE(Codec::encode(flat[i - 1]), Codec::encode(flat[i]));
  }
}

// ---------------------------------------------------------------------------
// Height bounds (Sec 3.3 / Sec 4.3)
// ---------------------------------------------------------------------------

TEST(PaperClaims, POrthHeightBoundedByLogAspectRatio) {
  // Height <= ceil(log2(universe_extent / min_pair_distance)) + O(1):
  // grid-snapped points bound Δ explicitly.
  const std::int64_t grid = 1 << 10;  // min distance ~ kMax/grid
  auto raw = datagen::uniform<2>(20000, 3, kMax);
  for (auto& p : raw) {
    p[0] = (p[0] / (kMax / grid)) * (kMax / grid);
    p[1] = (p[1] / (kMax / grid)) * (kMax / grid);
  }
  POrthTree2 tree({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  tree.build(raw);
  // log2(Δ) = log2(grid * sqrt(2)) ≈ 10.5; each tree level halves the
  // region once per dimension.
  EXPECT_LE(tree.height(), 13u);
}

TEST(PaperClaims, SpacHeightLogarithmicAfterChurn) {
  auto pts = datagen::uniform<2>(40000, 4, kMax);
  SpacHTree2 tree;
  tree.build(pts);
  for (int round = 0; round < 4; ++round) {
    std::vector<Point2> slice;
    for (std::size_t i = static_cast<std::size_t>(round); i < pts.size(); i += 4) {
      slice.push_back(pts[i]);
    }
    tree.batch_delete(slice);
    tree.batch_insert(slice);
  }
  // BB[α] with α=0.2: height <= log_{1/(1-α)}(n) ≈ 3.1 * log2(n/φ) + O(1).
  const double limit =
      3.2 * std::log2(static_cast<double>(pts.size()) / 40.0) + 4;
  EXPECT_LE(static_cast<double>(tree.height()), limit);
}

// ---------------------------------------------------------------------------
// History independence of orth-trees (Sec 5.1.3)
// ---------------------------------------------------------------------------

TEST(PaperClaims, POrthQueriesUnaffectedByUpdateHistory) {
  auto pts = datagen::sweepline<2>(20000, 5, kMax);
  POrthTree2 fresh({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  fresh.build(pts);

  POrthTree2 churned({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  // Adversarial history: insert back-to-front in small batches, delete a
  // third, reinsert it.
  const std::size_t batch = 500;
  for (std::size_t hi = pts.size(); hi > 0;) {
    const std::size_t lo = hi >= batch ? hi - batch : 0;
    churned.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                          pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    hi = lo;
  }
  std::vector<Point2> third;
  for (std::size_t i = 0; i < pts.size(); i += 3) third.push_back(pts[i]);
  churned.batch_delete(third);
  churned.batch_insert(third);

  EXPECT_TRUE(structurally_equal(fresh, churned));
}

// ---------------------------------------------------------------------------
// Hilbert vs Morton query locality (Sec 5.1.3) — generous shape margins
// ---------------------------------------------------------------------------

TEST(PaperClaims, HilbertKnnNotSlowerThanMortonByMuch) {
  auto pts = datagen::uniform<2>(50000, 6, kMax);
  SpacHTree2 h;
  h.build(pts);
  SpacZTree2 z;
  z.build(pts);
  auto qs = datagen::ood_queries<2>(400, 6, kMax);
  auto time_knn = [&](const auto& index) {
    bench::Timer t;
    std::size_t sink = 0;
    for (const auto& q : qs) sink += index.knn(q, 10).size();
    EXPECT_EQ(sink, qs.size() * 10);
    return t.seconds();
  };
  // Warm both once, then measure best-of-3: a single ~5ms sample is at
  // the mercy of co-scheduled test binaries (ctest -j on a small box) —
  // the minimum over a few runs measures the code, not the neighbours.
  time_knn(h);
  time_knn(z);
  double th = time_knn(h), tz = time_knn(z);
  for (int rep = 0; rep < 2; ++rep) {
    th = std::min(th, time_knn(h));
    tz = std::min(tz, time_knn(z));
  }
  // Paper: SPaC-H is ~2-5x faster than SPaC-Z on kNN. Machine noise on CI
  // is real, so only assert H is not meaningfully slower.
  EXPECT_LT(th, tz * 1.5) << "Hilbert lost its locality advantage";
}

// ---------------------------------------------------------------------------
// Relaxed leaves never change answers (Sec 4.2) — exhaustive small case
// ---------------------------------------------------------------------------

TEST(PaperClaims, RelaxedAndTotalOrderAgreeUnderExhaustiveSmallChurn) {
  auto pts = datagen::varden<2>(3000, 7, kMax);
  SpacHTree2 relaxed;
  SpacHTree2 total(cpam_params());
  const std::size_t batch = 60;  // small batches maximise unsorted leaves
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    std::vector<Point2> b(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                          pts.begin() + static_cast<std::ptrdiff_t>(hi));
    relaxed.batch_insert(b);
    total.batch_insert(b);
    ASSERT_EQ(relaxed.size(), total.size());
  }
  EXPECT_GT(relaxed.unsorted_leaf_fraction(), 0.0);
  auto qs = datagen::ind_queries(pts, 40, 7, kMax);
  for (const auto& q : qs) {
    auto a = relaxed.knn(q, 10);
    auto b = total.knn(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_DOUBLE_EQ(squared_distance(a[i], q), squared_distance(b[i], q));
    }
  }
}

}  // namespace
}  // namespace psi
