// Tests for the ball (radius) queries on every index that supports them,
// and for the dataset I/O round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "psi/io/dataset_io.h"
#include "psi/psi.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

class BallRadius : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Radii, BallRadius,
                         ::testing::Values(0.0, 1e6, 2e7, 1e8, 2e9));

TEST_P(BallRadius, AllIndexesMatchOracle) {
  const double radius = GetParam();
  auto pts = datagen::varden<2>(6000, 1, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ind_queries(pts, 10, 1, kMax);
  auto qs_ood = datagen::ood_queries<2>(10, 1, kMax);
  qs.insert(qs.end(), qs_ood.begin(), qs_ood.end());

  POrthTree2 porth({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  porth.build(pts);
  SpacHTree2 spach;
  spach.build(pts);
  SpacZTree2 spacz;
  spacz.build(pts);
  PkdTree2 pkd;
  pkd.build(pts);
  ZdTree2 zd;
  zd.build(pts);

  for (const auto& q : qs) {
    const std::size_t expect = oracle.ball_count(q, radius);
    EXPECT_EQ(porth.ball_count(q, radius), expect);
    EXPECT_EQ(spach.ball_count(q, radius), expect);
    EXPECT_EQ(spacz.ball_count(q, radius), expect);
    EXPECT_EQ(pkd.ball_count(q, radius), expect);
    EXPECT_EQ(zd.ball_count(q, radius), expect);
    testutil::expect_same_multiset(porth.ball_list(q, radius),
                                   oracle.ball_list(q, radius));
    testutil::expect_same_multiset(spach.ball_list(q, radius),
                                   oracle.ball_list(q, radius));
    testutil::expect_same_multiset(pkd.ball_list(q, radius),
                                   oracle.ball_list(q, radius));
  }
}

TEST(BallQuery, CountAndListConsistentAfterUpdates) {
  auto pts = datagen::uniform<2>(4000, 2, kMax);
  SpacHTree2 tree;
  tree.build(pts);
  tree.batch_delete({pts.begin(), pts.begin() + 1000});
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete({pts.begin(), pts.begin() + 1000});
  const Point2 q{{kMax / 3, kMax / 3}};
  for (double r : {5e6, 5e7, 5e8}) {
    EXPECT_EQ(tree.ball_count(q, r), oracle.ball_count(q, r));
    EXPECT_EQ(tree.ball_list(q, r).size(), tree.ball_count(q, r));
  }
}

TEST(BallQuery, ZeroRadiusHitsExactPointOnly) {
  std::vector<Point2> pts = {{{10, 10}}, {{10, 11}}, {{10, 10}}};
  POrthTree2 tree({}, Box2{{{0, 0}}, {{100, 100}}});
  tree.build(pts);
  EXPECT_EQ(tree.ball_count(Point2{{10, 10}}, 0.0), 2u);  // both duplicates
  EXPECT_EQ(tree.ball_count(Point2{{10, 12}}, 0.0), 0u);
  EXPECT_EQ(tree.ball_count(Point2{{10, 12}}, 1.0), 1u);
}

// ---------------------------------------------------------------------------
// Parallel bulk-query helpers
// ---------------------------------------------------------------------------

TEST(BatchQueries, MatchPerQueryCalls) {
  auto pts = datagen::uniform<2>(5000, 8, kMax);
  SpacHTree2 tree;
  tree.build(pts);
  auto qs = datagen::ood_queries<2>(50, 8, kMax);
  auto ranges = datagen::range_boxes(qs, 60'000'000, kMax);

  auto knns = batch_knn(tree, qs, 5);
  ASSERT_EQ(knns.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(knns[i], tree.knn(qs[i], 5));
  }

  auto counts = batch_range_count(tree, ranges);
  auto lists = batch_range_list(tree, ranges);
  ASSERT_EQ(counts.size(), ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(counts[i], tree.range_count(ranges[i]));
    EXPECT_EQ(lists[i].size(), counts[i]);
  }
}

// ---------------------------------------------------------------------------
// Dataset I/O
// ---------------------------------------------------------------------------

TEST(DatasetIo, BinaryRoundTrip2D) {
  auto pts = datagen::uniform<2>(10000, 3, kMax);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psi_io_test.bin").string();
  io::save_binary(path, pts);
  auto loaded = io::load_binary<std::int64_t, 2>(path);
  EXPECT_EQ(loaded, pts);
  std::remove(path.c_str());
}

TEST(DatasetIo, BinaryRoundTrip3D) {
  auto pts = datagen::cosmo_sim(5000, 4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psi_io_test3.bin").string();
  io::save_binary(path, pts);
  auto loaded = io::load_binary<std::int64_t, 3>(path);
  EXPECT_EQ(loaded, pts);
  std::remove(path.c_str());
}

TEST(DatasetIo, BinaryRejectsDimensionMismatch) {
  auto pts = datagen::uniform<2>(100, 5, kMax);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psi_io_mismatch.bin").string();
  io::save_binary(path, pts);
  EXPECT_THROW((io::load_binary<std::int64_t, 3>(path)), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DatasetIo, CsvRoundTrip) {
  auto pts = datagen::varden<2>(2000, 6, kMax);
  const std::string path =
      (std::filesystem::temp_directory_path() / "psi_io_test.csv").string();
  io::save_csv(path, pts);
  auto loaded = io::load_csv<std::int64_t, 2>(path);
  EXPECT_EQ(loaded, pts);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Index diagnostics
// ---------------------------------------------------------------------------

TEST(IndexStats, ReflectsBalanceQuality) {
  auto pts = datagen::uniform<2>(30000, 9, kMax);

  // A freshly built SPaC tree is near-perfectly balanced.
  SpacHTree2 spac;
  spac.build(pts);
  auto s = index_stats(spac, 2.0, 40.0);
  EXPECT_EQ(s.size, pts.size());
  EXPECT_GE(s.height_ratio, 0.8);
  EXPECT_LE(s.height_ratio, 1.6);

  // A P-Orth tree on uniform data is close to a balanced 4-ary tree.
  POrthTree2 porth({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  porth.build(pts);
  auto p = index_stats(porth, 4.0, 32.0);
  EXPECT_EQ(p.size, pts.size());
  EXPECT_GE(p.height_ratio, 0.8);
  EXPECT_LE(p.height_ratio, 2.5);

  // On heavily clustered data the orth-tree's ratio visibly degrades
  // relative to uniform (the skew sensitivity of Sec 5.1.1).
  auto skewed = datagen::varden<2>(30000, 9, kMax);
  POrthTree2 porth_skew({}, Box2{{{0, 0}}, {{kMax, kMax}}});
  porth_skew.build(skewed);
  EXPECT_GT(index_stats(porth_skew, 4.0, 32.0).height_ratio, p.height_ratio);
}

TEST(IndexStats, SmallAndEmptyTrees) {
  SpacHTree2 empty;
  auto e = index_stats(empty, 2.0, 40.0);
  EXPECT_EQ(e.size, 0u);
  EXPECT_EQ(e.height, 0u);
  SpacHTree2 tiny;
  tiny.batch_insert({Point2{{1, 1}}, Point2{{2, 2}}});
  auto t = index_stats(tiny, 2.0, 40.0);
  EXPECT_EQ(t.size, 2u);
  EXPECT_EQ(t.height, 1u);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW((io::load_binary<std::int64_t, 2>("/nonexistent/psi.bin")),
               std::runtime_error);
  EXPECT_THROW((io::load_csv<std::int64_t, 2>("/nonexistent/psi.csv")),
               std::runtime_error);
}

}  // namespace
}  // namespace psi
