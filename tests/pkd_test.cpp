// Tests for the Pkd-tree baseline: splitter invariants, balance after
// partial reconstruction, query correctness vs the oracle, update stress.

#include <gtest/gtest.h>

#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/datagen/generators.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

struct PkdCase {
  const char* name;
  int which;
};

class PkdWorkloads : public ::testing::TestWithParam<PkdCase> {
 protected:
  std::vector<Point2> make_points(std::size_t n, std::uint64_t seed) const {
    switch (GetParam().which) {
      case 1:
        return datagen::varden<2>(n, seed, kMax);
      case 2:
        return datagen::sweepline<2>(n, seed, kMax);
      default:
        return datagen::uniform<2>(n, seed, kMax);
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Distributions, PkdWorkloads,
                         ::testing::Values(PkdCase{"uniform", 0},
                                           PkdCase{"varden", 1},
                                           PkdCase{"sweepline", 2}),
                         [](const auto& info) { return info.param.name; });

TEST_P(PkdWorkloads, BuildInvariantsSizeAndContents) {
  auto pts = make_points(20000, 1);
  PkdTree2 tree;
  tree.build(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  testutil::expect_same_multiset(tree.flatten(), pts);
}

TEST_P(PkdWorkloads, QueriesMatchOracle) {
  auto pts = make_points(8000, 2);
  PkdTree2 tree;
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto ind = datagen::ind_queries(pts, 25, 2, kMax);
  auto ood = datagen::ood_queries<2>(25, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, ind, 10, ranges);
  testutil::expect_queries_match(tree, oracle, ood, 10, ranges);
}

TEST_P(PkdWorkloads, UpdatesKeepInvariantsAndAnswers) {
  auto pts = make_points(6000, 3);
  const std::size_t half = pts.size() / 2;
  PkdTree2 tree;
  tree.build({pts.begin(), pts.begin() + half});
  tree.batch_insert({pts.begin() + half, pts.end()});
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 2) dels.push_back(pts[i]);
  tree.batch_delete(dels);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete(dels);
  EXPECT_EQ(tree.size(), oracle.size());
  auto qs = datagen::ood_queries<2>(20, 3, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST_P(PkdWorkloads, BalanceMaintainedUnderSkewedIncrementalInsert) {
  // Inserting sweep-ordered batches into a kd-tree is the adversarial case
  // for splitters; partial reconstruction must keep the height logarithmic.
  auto pts = make_points(20000, 4);
  PkdTree2 tree;
  const std::size_t batch = 1000;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    ASSERT_NO_THROW(tree.check_invariants());
  }
  EXPECT_EQ(tree.size(), pts.size());
  // log2(20000/32) ~ 9.3; allow generous slack for α=0.3 imbalance.
  EXPECT_LE(tree.height(), 24u);
}

TEST(Pkd, EmptySingletonAndDuplicates) {
  PkdTree2 tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.knn(Point2{{0, 0}}, 5).empty());
  tree.build(std::vector<Point2>(300, Point2{{9, 9}}));
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_NO_THROW(tree.check_invariants());
  auto nn = tree.knn(Point2{{0, 0}}, 3);
  ASSERT_EQ(nn.size(), 3u);
  tree.batch_delete(std::vector<Point2>(100, Point2{{9, 9}}));
  EXPECT_EQ(tree.size(), 200u);
}

TEST(Pkd, DeleteAllThenReinsert) {
  auto pts = datagen::uniform<2>(4000, 5, kMax);
  PkdTree2 tree;
  tree.build(pts);
  tree.batch_delete(pts);
  EXPECT_TRUE(tree.empty());
  tree.batch_insert(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Pkd, ThreeDimensional) {
  auto pts = datagen::cosmo_sim(6000, 6);
  PkdTree3 tree;
  tree.build(pts);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(15, 6, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 150'000, datagen::kDefaultMax3D);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

}  // namespace
}  // namespace psi
