// Tests for the P-Orth tree: structural invariants, query correctness vs
// the brute-force oracle, batch update semantics, history independence,
// and degenerate inputs (duplicates, unsplittable regions, empty trees).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/core/porth/porth_tree.h"
#include "psi/datagen/generators.h"
#include "psi/parallel/random.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

Box2 universe2() { return Box2{{{0, 0}}, {{kMax, kMax}}}; }
Box3 universe3() {
  return Box3{{{0, 0, 0}},
              {{datagen::kDefaultMax3D, datagen::kDefaultMax3D,
                datagen::kDefaultMax3D}}};
}

struct WorkloadCase {
  const char* name;
  int which;  // 0 uniform, 1 varden, 2 sweepline
};

class POrthWorkloads : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  std::vector<Point2> make_points(std::size_t n, std::uint64_t seed) const {
    switch (GetParam().which) {
      case 1:
        return datagen::varden<2>(n, seed, kMax);
      case 2:
        return datagen::sweepline<2>(n, seed, kMax);
      default:
        return datagen::uniform<2>(n, seed, kMax);
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Distributions, POrthWorkloads,
                         ::testing::Values(WorkloadCase{"uniform", 0},
                                           WorkloadCase{"varden", 1},
                                           WorkloadCase{"sweepline", 2}),
                         [](const auto& info) { return info.param.name; });

TEST_P(POrthWorkloads, BuildInvariantsAndSize) {
  auto pts = make_points(20000, 1);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  testutil::expect_same_multiset(tree.flatten(), pts);
}

TEST_P(POrthWorkloads, QueriesMatchOracleAfterBuild) {
  auto pts = make_points(8000, 2);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto ind = datagen::ind_queries(pts, 30, 2, kMax);
  auto ood = datagen::ood_queries<2>(30, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, ind, 10, ranges);
  testutil::expect_queries_match(tree, oracle, ood, 10, ranges);
}

TEST_P(POrthWorkloads, BatchInsertMatchesOracle) {
  auto pts = make_points(6000, 3);
  const std::size_t half = pts.size() / 2;
  std::vector<Point2> first(pts.begin(), pts.begin() + half);
  std::vector<Point2> second(pts.begin() + half, pts.end());

  POrthTree2 tree({}, universe2());
  tree.build(first);
  tree.batch_insert(second);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());

  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<2>(25, 3, kMax);
  auto ranges = datagen::range_boxes(qs, 100'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 5, ranges);
}

TEST_P(POrthWorkloads, BatchDeleteMatchesOracle) {
  auto pts = make_points(6000, 4);
  // Delete a scattered third of the points.
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 3) dels.push_back(pts[i]);

  POrthTree2 tree({}, universe2());
  tree.build(pts);
  tree.batch_delete(dels);
  EXPECT_NO_THROW(tree.check_invariants());

  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete(dels);
  EXPECT_EQ(tree.size(), oracle.size());
  auto qs = datagen::ood_queries<2>(25, 4, kMax);
  auto ranges = datagen::range_boxes(qs, 100'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 8, ranges);
}

TEST_P(POrthWorkloads, HistoryIndependenceInsert) {
  // build(P1 ∪ P2) must be structurally identical to build(P1)+insert(P2):
  // orth-trees are history-independent modulo leaf point order (Sec 5.1.3).
  auto pts = make_points(10000, 5);
  const std::size_t half = pts.size() / 2;
  POrthTree2 direct({}, universe2());
  direct.build(pts);

  POrthTree2 incr({}, universe2());
  incr.build({pts.begin(), pts.begin() + half});
  incr.batch_insert({pts.begin() + half, pts.end()});

  EXPECT_TRUE(structurally_equal(direct, incr));
}

TEST_P(POrthWorkloads, HistoryIndependenceDelete) {
  auto pts = make_points(10000, 6);
  const std::size_t half = pts.size() / 2;
  std::vector<Point2> keep(pts.begin(), pts.begin() + half);
  std::vector<Point2> extra(pts.begin() + half, pts.end());

  POrthTree2 direct({}, universe2());
  direct.build(keep);

  POrthTree2 incr({}, universe2());
  incr.build(pts);
  incr.batch_delete(extra);

  EXPECT_TRUE(structurally_equal(direct, incr));
  EXPECT_NO_THROW(incr.check_invariants());
}

TEST_P(POrthWorkloads, IncrementalManySmallBatches) {
  auto pts = make_points(5000, 7);
  POrthTree2 tree({}, universe2());
  const std::size_t batch = 250;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    ASSERT_EQ(tree.size(), hi);
  }
  EXPECT_NO_THROW(tree.check_invariants());
  // Then delete everything in batches; tree must end empty.
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_delete({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    EXPECT_NO_THROW(tree.check_invariants());
  }
  EXPECT_TRUE(tree.empty());
}

TEST(POrth, EmptyTreeQueries) {
  POrthTree2 tree({}, universe2());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.knn(Point2{{1, 2}}, 5).empty());
  EXPECT_EQ(tree.range_count(universe2()), 0u);
  EXPECT_TRUE(tree.range_list(universe2()).empty());
  EXPECT_NO_THROW(tree.check_invariants());
  tree.batch_delete({Point2{{1, 1}}});  // delete from empty: no-op
  EXPECT_TRUE(tree.empty());
}

TEST(POrth, SinglePointAndSmallTrees) {
  POrthTree2 tree({}, universe2());
  tree.build({Point2{{5, 5}}});
  EXPECT_EQ(tree.size(), 1u);
  auto nn = tree.knn(Point2{{0, 0}}, 3);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], (Point2{{5, 5}}));
  tree.batch_insert({Point2{{6, 6}}, Point2{{7, 7}}});
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.range_count(Box2{{{5, 5}}, {{6, 6}}}), 2u);
}

TEST(POrth, DuplicatePointsTerminateInOversizedLeaf) {
  // 1000 copies of the same point: the region becomes unsplittable and the
  // tree must terminate with an oversized leaf rather than recurse forever.
  std::vector<Point2> pts(1000, Point2{{123, 456}});
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_NO_THROW(tree.check_invariants());
  EXPECT_EQ(tree.range_count(Box2{{{123, 456}}, {{123, 456}}}), 1000u);
  // Deleting 400 instances removes exactly 400.
  std::vector<Point2> dels(400, Point2{{123, 456}});
  tree.batch_delete(dels);
  EXPECT_EQ(tree.size(), 600u);
}

TEST(POrth, DeleteNonexistentIsNoop) {
  auto pts = datagen::uniform<2>(2000, 8, kMax);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  tree.batch_delete({Point2{{-1, -1}}, Point2{{kMax, kMax}}});
  // (kMax,kMax) is almost surely absent; size drops by at most the number
  // of actually-present points.
  EXPECT_GE(tree.size(), pts.size() - 2);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(POrth, DeleteEverythingThenReuse) {
  auto pts = datagen::uniform<2>(3000, 9, kMax);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  tree.batch_delete(pts);
  EXPECT_TRUE(tree.empty());
  tree.batch_insert(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(POrth, KnnKLargerThanTree) {
  auto pts = datagen::uniform<2>(50, 10, kMax);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  auto nn = tree.knn(Point2{{kMax / 2, kMax / 2}}, 100);
  EXPECT_EQ(nn.size(), 50u);
}

TEST(POrth, RangeCountWholeUniverseAndEmptyBox) {
  auto pts = datagen::uniform<2>(4000, 11, kMax);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  EXPECT_EQ(tree.range_count(universe2()), pts.size());
  // A degenerate box far from data.
  EXPECT_EQ(tree.range_count(Box2{{{-10, -10}}, {{-5, -5}}}), 0u);
}

TEST(POrth, ThreeDimensionalBuildAndQueries) {
  auto pts = datagen::uniform<3>(6000, 12, datagen::kDefaultMax3D);
  POrthTree<std::int64_t, 3> tree({}, universe3());
  tree.build(pts);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(20, 12, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 200'000, datagen::kDefaultMax3D);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(POrth, ThreeDimensionalUpdates) {
  auto pts = datagen::varden<3>(6000, 13, datagen::kDefaultMax3D);
  const std::size_t half = pts.size() / 2;
  POrthTree<std::int64_t, 3> tree({}, universe3());
  tree.build({pts.begin(), pts.begin() + half});
  tree.batch_insert({pts.begin() + half, pts.end()});
  EXPECT_NO_THROW(tree.check_invariants());
  tree.batch_delete({pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(half)});
  EXPECT_EQ(tree.size(), pts.size() - half);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(POrth, SkeletonDepthParameterSweep) {
  // λ ∈ {1,2,3,4} must all produce the same query answers (the skeleton
  // depth is a data-movement knob, not a semantic one). Note λ changes the
  // rebuild granularity so structures may legitimately differ.
  auto pts = datagen::uniform<2>(5000, 14, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<2>(15, 14, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  for (int lambda = 1; lambda <= 4; ++lambda) {
    POrthParams params;
    params.skeleton_levels = lambda;
    POrthTree2 tree(params, universe2());
    tree.build(pts);
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
  }
}

TEST(POrth, LeafWrapParameterSweep) {
  auto pts = datagen::uniform<2>(5000, 15, kMax);
  for (std::size_t wrap : {2, 8, 32, 128}) {
    POrthParams params;
    params.leaf_wrap = wrap;
    POrthTree2 tree(params, universe2());
    tree.build(pts);
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
  }
}

TEST(POrth, HeightLogarithmicOnUniform) {
  auto pts = datagen::uniform<2>(50000, 16, kMax);
  POrthTree2 tree({}, universe2());
  tree.build(pts);
  // Uniform data has bounded aspect ratio: height = O(log n) (Lemma A.1).
  EXPECT_LE(tree.height(), 20u);
}

TEST(POrth, UniverseDefaultsToDataBoundingBox) {
  auto pts = datagen::uniform<2>(3000, 17, kMax);
  POrthTree2 tree;  // no universe given
  tree.build(pts);
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  // Inserting points inside the same region keeps working.
  tree.batch_insert(datagen::uniform<2>(1000, 18, kMax));
  EXPECT_EQ(tree.size(), 4000u);
}

TEST(POrth, MixedInsertDeleteStress) {
  Rng rng(19);
  auto pts = datagen::varden<2>(4000, 19, kMax);
  POrthTree2 tree({}, universe2());
  BruteForceIndex<std::int64_t, 2> oracle;
  std::vector<Point2> live;
  const std::size_t batch = 500;
  for (std::size_t round = 0; round < 8; ++round) {
    const std::size_t lo = round * batch;
    std::vector<Point2> ins(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                            pts.begin() + static_cast<std::ptrdiff_t>(lo + batch));
    tree.batch_insert(ins);
    oracle.batch_insert(ins);
    live.insert(live.end(), ins.begin(), ins.end());
    if (round % 2 == 1 && !live.empty()) {
      std::vector<Point2> dels;
      for (std::size_t i = 0; i < live.size(); i += 4) dels.push_back(live[i]);
      tree.batch_delete(dels);
      oracle.batch_delete(dels);
      // Remove the same elements from `live`.
      for (const auto& d : dels) {
        auto it = std::find(live.begin(), live.end(), d);
        if (it != live.end()) {
          *it = live.back();
          live.pop_back();
        }
      }
    }
    ASSERT_EQ(tree.size(), oracle.size());
    ASSERT_NO_THROW(tree.check_invariants());
  }
  auto qs = datagen::ood_queries<2>(20, 19, kMax);
  auto ranges = datagen::range_boxes(qs, 60'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

}  // namespace
}  // namespace psi
