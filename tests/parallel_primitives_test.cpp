// Tests for reduce / scan / pack / tabulate / flatten against serial oracles,
// parameterized over input sizes to cover sequential fast paths and the
// blocked parallel paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"

namespace psi {
namespace {

class PrimitivesSizes : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitivesSizes,
                         ::testing::Values(0, 1, 2, 100, 2047, 2048, 2049,
                                           10000, 100001));

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::int64_t>(rng.ith_bounded(i, 1000)) - 500;
  }
  return v;
}

TEST_P(PrimitivesSizes, ReduceSumMatchesAccumulate) {
  auto v = random_values(GetParam(), 1);
  const auto expect = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  EXPECT_EQ(reduce_sum(v.begin(), v.end()), expect);
}

TEST_P(PrimitivesSizes, ReduceMaxMatchesOracle) {
  auto v = random_values(GetParam(), 2);
  const std::int64_t id = std::numeric_limits<std::int64_t>::min();
  std::int64_t expect = id;
  for (auto x : v) expect = std::max(expect, x);
  const auto got = psi::reduce(
      v.begin(), v.end(), id,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, ScanExclusiveMatchesOracle) {
  auto v = random_values(GetParam(), 3);
  auto expect = v;
  std::int64_t acc = 0;
  for (auto& x : expect) {
    const auto nxt = acc + x;
    x = acc;
    acc = nxt;
  }
  auto got = v;
  const auto total = scan_exclusive(got);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, PackKeepsOrderAndElements) {
  auto v = random_values(GetParam(), 4);
  auto got = pack(v.begin(), v.end(), [&](std::size_t i) { return v[i] % 3 == 0; });
  std::vector<std::int64_t> expect;
  for (auto x : v) {
    if (x % 3 == 0) expect.push_back(x);
  }
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, FilterByValue) {
  auto v = random_values(GetParam(), 5);
  auto got = filter(v, [](std::int64_t x) { return x > 0; });
  std::vector<std::int64_t> expect;
  for (auto x : v) {
    if (x > 0) expect.push_back(x);
  }
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, TabulateIdentity) {
  const std::size_t n = GetParam();
  auto v = tabulate<std::size_t>(n, [](std::size_t i) { return i * 2; });
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], 2 * i);
}

TEST(Primitives, FlattenConcatenatesInOrder) {
  std::vector<std::vector<int>> parts = {{1, 2}, {}, {3}, {4, 5, 6}, {}};
  EXPECT_EQ(flatten(parts), (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Primitives, FlattenManyParts) {
  std::vector<std::vector<int>> parts(1000);
  std::vector<int> expect;
  for (int i = 0; i < 1000; ++i) {
    for (int j = 0; j < i % 5; ++j) {
      parts[static_cast<std::size_t>(i)].push_back(i);
      expect.push_back(i);
    }
  }
  EXPECT_EQ(flatten(parts), expect);
}

TEST(Primitives, MapAppliesFunction) {
  std::vector<int> v = {1, 2, 3};
  auto doubled = map(v, [](int x) { return x * 2.5; });
  ASSERT_EQ(doubled.size(), 3u);
  EXPECT_DOUBLE_EQ(doubled[2], 7.5);
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.ith(7), b.ith(7));
  EXPECT_NE(a.ith(7), c.ith(7));
  EXPECT_NE(a.split(1).ith(0), a.split(2).ith(0));
  // Bounded draws stay in range.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_LT(a.ith_bounded(i, 17), 17u);
    const double d = a.ith_double(i);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace psi
