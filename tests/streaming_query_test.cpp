// Wire v3 streamed query replies (kQueryChunk / kQueryDone / kQueryCredit)
// and the transport StreamWriter contract:
//
//  * Transport level (loopback AND TCP): chunks arrive in order ahead of
//    the final frame; a plain call() refuses a streamed reply; abandoning
//    the stream (on_chunk -> false) stops the producer cleanly; the TCP
//    writer blocks on credit exhaustion and reports backpressure waits.
//  * Bounded buffering: a 1M-point stream never materialises more than one
//    chunk (kDefaultStreamChunkPoints) per send — asserted per frame.
//  * End to end: DistributedService::query with ReadOptions::streamed()
//    flows a full scan into an api::ConcurrentSink with identical results
//    to the buffered path, chunk accounting in stats(), and composes with
//    pinned consistency; CachePolicy::kUse wins over streaming.
//  * Chunked-frame decode rejects garbage counts before allocating.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "psi/psi.h"

namespace {

using namespace psi;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::StreamWriter;
using net::WireReader;
using net::WireWriter;

using point_t = Point2;
using box_t = Box2;

constexpr std::int64_t kMax = 1 << 16;
const box_t kEverything{{{-kMax, -kMax}}, {{2 * kMax, 2 * kMax}}};

std::vector<point_t> uniform_points(std::size_t n, std::uint64_t seed) {
  return datagen::uniform<2>(n, seed, kMax);
}

void expect_same_multiset(std::vector<point_t> a, std::vector<point_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// Streams `total` synthetic points in chunks of `cap`, then a final frame
// carrying the totals. The shape every streaming host handler follows.
void stream_points(StreamWriter& stream, std::size_t total, std::size_t cap,
                   std::uint64_t* chunks_out = nullptr) {
  std::vector<point_t> buf;
  buf.reserve(cap);
  std::uint64_t chunks = 0;
  bool receiving = true;
  for (std::size_t i = 0; i < total && receiving; ++i) {
    buf.push_back(point_t{{static_cast<std::int64_t>(i), 0}});
    if (buf.size() == cap) {
      WireWriter c;
      c.put_points(buf);
      receiving = stream.send(std::move(c).finish(MsgType::kQueryChunk));
      buf.clear();
      ++chunks;
    }
  }
  if (!buf.empty() && receiving) {
    WireWriter c;
    c.put_points(buf);
    stream.send(std::move(c).finish(MsgType::kQueryChunk));
    ++chunks;
  }
  if (chunks_out != nullptr) *chunks_out = chunks;
}

// ---------------------------------------------------------------------------
// Transport-level streaming contract
// ---------------------------------------------------------------------------

template <typename Fabric>
void run_chunked_stream_bounded() {
  constexpr std::size_t kTotal = 1'000'000;
  const std::size_t cap = net::kDefaultStreamChunkPoints;

  Fabric fabric;
  fabric.bind_stream(7, [&](NodeId, Message req, StreamWriter& stream) {
    WireReader r(req);
    stream.arm(r.get_u32());  // initial credit window from the request
    std::uint64_t chunks = 0;
    stream_points(stream, kTotal, cap, &chunks);
    WireWriter done;
    done.put_u64(kTotal);
    done.put_u64(chunks);
    done.put_u64(stream.backpressure_waits());
    return std::move(done).finish(MsgType::kQueryDone);
  });

  WireWriter w;
  w.put_u32(net::kDefaultStreamCredit);
  std::size_t received = 0;
  std::uint64_t chunks_seen = 0;
  Message done = fabric.call_stream(
      7, std::move(w).finish(MsgType::kQuery), [&](Message chunk) {
        EXPECT_EQ(chunk.type, MsgType::kQueryChunk);
        WireReader cr(chunk);
        const auto pts = cr.get_points<std::int64_t, 2>();
        // The bounded-buffer guarantee: no frame ever carries more than
        // one chunk's worth of points.
        EXPECT_LE(pts.size(), cap);
        EXPECT_GT(pts.size(), 0u);
        received += pts.size();
        ++chunks_seen;
        return true;
      });
  ASSERT_EQ(done.type, MsgType::kQueryDone);
  WireReader dr(done);
  EXPECT_EQ(dr.get_u64(), kTotal);
  EXPECT_EQ(dr.get_u64(), chunks_seen);
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(chunks_seen, (kTotal + cap - 1) / cap);
}

TEST(TransportStreaming, LoopbackChunksBoundedAndOrdered) {
  run_chunked_stream_bounded<net::LoopbackTransport>();
}

TEST(TransportStreaming, TcpChunksBoundedAndOrdered) {
  run_chunked_stream_bounded<net::TcpTransport>();
}

TEST(TransportStreaming, TcpCreditExhaustionBlocksAndCountsWaits) {
  net::TcpTransport fabric;
  std::atomic<std::uint64_t> waits{0};
  fabric.bind_stream(3, [&](NodeId, Message, StreamWriter& stream) {
    stream.arm(2);  // tiny window: the writer must stall on grants
    stream_points(stream, 64, 4);
    waits.store(stream.backpressure_waits());
    WireWriter done;
    return std::move(done).finish(MsgType::kQueryDone);
  });

  std::size_t chunks = 0;
  WireWriter w;
  Message done =
      fabric.call_stream(3, std::move(w).finish(MsgType::kQuery),
                         [&](Message) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(1));
                           ++chunks;
                           return true;
                         });
  EXPECT_EQ(done.type, MsgType::kQueryDone);
  EXPECT_EQ(chunks, 16u);
  // 16 chunks through a 2-chunk window: the writer stalled at least once.
  EXPECT_GE(waits.load(), 1u);
}

template <typename Fabric>
void run_stream_refusal_and_abandon() {
  Fabric fabric;
  fabric.bind_stream(5, [&](NodeId, Message, StreamWriter& stream) {
    stream_points(stream, 100, 10);
    WireWriter done;
    done.put_u64(100);
    return std::move(done).finish(MsgType::kQueryDone);
  });

  // A plain call cannot absorb a streamed reply.
  {
    WireWriter w;
    EXPECT_THROW((void)fabric.call(5, std::move(w).finish(MsgType::kQuery)),
                 net::TransportError);
  }
  // Abandoning after the first chunk yields the empty kOk sentinel and
  // stops the producer (send() returns false server-side).
  {
    WireWriter w;
    Message m = fabric.call_stream(5, std::move(w).finish(MsgType::kQuery),
                                   [](Message) { return false; });
    EXPECT_EQ(m.type, MsgType::kOk);
    EXPECT_EQ(m.payload_size(), 0u);
  }
  // The node still serves fresh streams afterwards.
  {
    WireWriter w;
    std::size_t got = 0;
    Message done = fabric.call_stream(5, std::move(w).finish(MsgType::kQuery),
                                      [&](Message chunk) {
                                        WireReader cr(chunk);
                                        got += cr.get_points<std::int64_t, 2>()
                                                   .size();
                                        return true;
                                      });
    EXPECT_EQ(done.type, MsgType::kQueryDone);
    EXPECT_EQ(got, 100u);
  }
}

TEST(TransportStreaming, LoopbackRefusalAndAbandon) {
  run_stream_refusal_and_abandon<net::LoopbackTransport>();
}

TEST(TransportStreaming, TcpRefusalAndAbandon) {
  run_stream_refusal_and_abandon<net::TcpTransport>();
}

TEST(TransportStreaming, ChunkDecodeRejectsGarbageCountsBeforeAllocation) {
  // A kQueryChunk declaring 2^40 points must be rejected before any
  // allocation happens — same guard as the materialised reply path.
  WireWriter w;
  w.put_u64(std::uint64_t{1} << 40);
  Message corrupt = std::move(w).finish(MsgType::kQueryChunk);
  WireReader r(corrupt);
  EXPECT_THROW((r.get_points<std::int64_t, 2>()), net::WireError);
}

// ---------------------------------------------------------------------------
// End to end: DistributedService with ReadOptions::streamed()
// ---------------------------------------------------------------------------

using DService = net::DistributedService<SpacZTree2>;
using ddesc_t = DService::desc_t;

TEST(DistributedStreaming, MillionPointScanFlowsIntoConcurrentSink) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 8;
  DService svc(fabric, 2, cfg);
  const auto pts = uniform_points(1'000'000, 71);
  svc.build(pts);

  api::ConcurrentSink<std::int64_t, 2> sink;
  const std::size_t n =
      svc.query(ddesc_t::range_list(kEverything),
                api::ReadOptions::read_committed().streamed(), sink);
  EXPECT_EQ(n, pts.size());
  expect_same_multiset(sink.take(), pts);

  // Chunk accounting proves the reply was chunked, with per-frame
  // buffering bounded by kDefaultStreamChunkPoints (the per-frame bound
  // itself is asserted in the transport tests above): at least
  // ceil(n / chunk) frames, at most one partial frame per shard fan-out.
  const auto stats = svc.stats();
  const std::size_t cap = net::kDefaultStreamChunkPoints;
  EXPECT_GE(stats.stream_chunks, pts.size() / cap);
  EXPECT_LE(stats.stream_chunks, pts.size() / cap + svc.num_shards() + 1);
}

TEST(DistributedStreaming, TcpStreamedMatchesBufferedAndComposesWithPin) {
  net::TcpTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.retained_epochs = 8;
  DService svc(fabric, 2, cfg);
  const auto base = uniform_points(120'000, 81);
  svc.build(base);

  // Streamed == buffered, over real sockets.
  api::ConcurrentSink<std::int64_t, 2> streamed;
  svc.query(ddesc_t::range_list(kEverything),
            api::ReadOptions::read_committed().streamed(), streamed);
  std::vector<point_t> buffered;
  svc.query(ddesc_t::range_list(kEverything),
            api::ReadOptions::read_committed(),
            [&](const point_t& p) { buffered.push_back(p); });
  expect_same_multiset(streamed.take(), buffered);
  const auto s0 = svc.stats();
  EXPECT_GT(s0.stream_chunks, 0u);

  // Streaming composes with a pinned epoch: writers land after the pin,
  // the streamed pinned scan still reproduces the pinned contents.
  const auto pin = svc.pin();
  svc.insert_batch(uniform_points(5'000, 82));
  api::ConcurrentSink<std::int64_t, 2> pinned;
  svc.query(ddesc_t::range_list(kEverything),
            api::ReadOptions::pinned(pin.epoch()).streamed(), pinned);
  expect_same_multiset(pinned.take(), base);

  // Ball lists stream too.
  const point_t q{{kMax / 2, kMax / 2}};
  api::ConcurrentSink<std::int64_t, 2> ball_s;
  svc.query(ddesc_t::ball_list(q, 2500.0),
            api::ReadOptions::read_committed().streamed(), ball_s);
  std::vector<point_t> ball_b;
  svc.query(ddesc_t::ball_list(q, 2500.0), api::ReadOptions::read_committed(),
            [&](const point_t& p) { ball_b.push_back(p); });
  expect_same_multiset(ball_s.take(), ball_b);
}

TEST(DistributedStreaming, CachePolicyWinsOverStreaming) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  DService svc(fabric, 2, cfg);
  const auto pts = uniform_points(4'000, 91);
  svc.build(pts);

  const box_t cold{{{0, 0}}, {{kMax / 8, kMax / 8}}};
  // cached().streamed(): the cache policy wins — result is materialised,
  // admitted, and the second read hits without any chunk traffic.
  std::vector<point_t> first, second;
  svc.query(ddesc_t::range_list(cold),
            api::ReadOptions::read_committed().cached().streamed(),
            [&](const point_t& p) { first.push_back(p); });
  svc.query(ddesc_t::range_list(cold),
            api::ReadOptions::read_committed().cached().streamed(),
            [&](const point_t& p) { second.push_back(p); });
  expect_same_multiset(first, second);
  const auto stats = svc.stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.stream_chunks, 0u);

  // Plain (non-streamed) reads never produce chunk traffic either.
  std::vector<point_t> plain;
  svc.query(ddesc_t::range_list(cold), api::ReadOptions::read_committed(),
            [&](const point_t& p) { plain.push_back(p); });
  expect_same_multiset(plain, first);
  EXPECT_EQ(svc.stats().stream_chunks, 0u);
}

}  // namespace
