// psi::service concurrency stress: N writer threads + M reader threads over
// SpatialService<SpacZTree2> with the background committer running,
// validated against a mutex-guarded BruteForceIndex oracle at quiesce
// points.
//
// Oracle protocol: each writer owns a disjoint slice of the point stream,
// inserts from it, and deletes only points it previously submitted (each at
// most once). Deletes follow their inserts in queue FIFO order and the
// group committer applies inserts before deletes within a group, so the
// final multiset is exactly (all inserts) minus (all deletes) regardless of
// commit interleaving — which is what the oracle computes under its mutex.
//
// Readers run concurrently and cannot be checked against a moving oracle;
// instead they assert *internal* consistency of each pinned snapshot
// (range_count == |range_list| on the same epoch, kNN sorted by distance,
// monotone epochs), which fails loudly on torn views or broken publication.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;
using namespace psi::service;

constexpr std::int64_t kMax = 1'000'000'000;
constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kRounds = 3;          // quiesce/validate points
constexpr std::size_t kPerRound = 4000;  // inserts per writer per round

Box2 box_around(const Point2& c, std::int64_t half) {
  return testutil::box_around(c, half, kMax);
}

class Oracle {
 public:
  void insert(const std::vector<Point2>& pts) {
    std::lock_guard<std::mutex> g(mu_);
    index_.batch_insert(pts);
  }
  void remove(const std::vector<Point2>& pts) {
    std::lock_guard<std::mutex> g(mu_);
    index_.batch_delete(pts);
  }
  BruteForceIndex<std::int64_t, 2> copy() const {
    std::lock_guard<std::mutex> g(mu_);
    return index_;
  }

 private:
  mutable std::mutex mu_;
  BruteForceIndex<std::int64_t, 2> index_;
};

TEST(ServiceStress, WritersAndReadersAgainstOracle) {
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = 6000;  // force splits mid-flight
  cfg.merge_threshold = 64;
  cfg.commit_interval_ms = 1;
  SpatialService<SpacZTree2> svc(cfg);
  svc.start();

  Oracle oracle;
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> reader_queries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(1000 + r));
      std::uint64_t i = 0;
      std::uint64_t last_epoch = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        auto snap = svc.snapshot();
        // Epochs only move forward.
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        Point2 q{{static_cast<std::int64_t>(rng.ith_bounded(2 * i, kMax)),
                  static_cast<std::int64_t>(rng.ith_bounded(2 * i + 1, kMax))}};
        ++i;
        // A snapshot is internally consistent: the two range flavours agree
        // on the same pinned epoch.
        const Box2 b = box_around(q, kMax / 25);
        const std::size_t cnt = snap.range_count(b);
        ASSERT_EQ(cnt, snap.range_list(b).size());
        // kNN results come back sorted by distance.
        auto nn = snap.knn(q, 8);
        for (std::size_t j = 1; j < nn.size(); ++j) {
          ASSERT_LE(squared_distance(nn[j - 1], q), squared_distance(nn[j], q));
        }
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writers also funnel queued queries through the service to exercise the
  // mixed path under concurrency.
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w, round] {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(round * kWriters + w + 1);
        auto mine = datagen::uniform<2>(kPerRound, seed, kMax);
        const std::size_t chunk = 250;
        std::vector<std::future<Result<std::int64_t, 2>>> futs;
        for (std::size_t lo = 0; lo < mine.size(); lo += chunk) {
          const std::size_t hi = std::min(mine.size(), lo + chunk);
          std::vector<Point2> ins(
              mine.begin() + static_cast<std::ptrdiff_t>(lo),
              mine.begin() + static_cast<std::ptrdiff_t>(hi));
          auto fs = svc.submit_insert_batch(ins);
          oracle.insert(ins);
          futs.insert(futs.end(), std::make_move_iterator(fs.begin()),
                      std::make_move_iterator(fs.end()));
          // Delete the first half of the chunk we just inserted: FIFO
          // guarantees the deletes commit at or after their inserts.
          std::vector<Point2> del(
              ins.begin(), ins.begin() + static_cast<std::ptrdiff_t>(chunk / 2));
          auto fs2 = svc.submit_delete_batch(del);
          oracle.remove(del);
          futs.insert(futs.end(), std::make_move_iterator(fs2.begin()),
                      std::make_move_iterator(fs2.end()));
          // Sprinkle queued queries through the same path.
          if (lo % (4 * chunk) == 0) {
            futs.push_back(svc.submit_knn(ins[0], 4));
            futs.push_back(svc.submit_range_count(box_around(ins[0], kMax / 50)));
          }
        }
        for (auto& f : futs) f.get();  // every op committed and visible
      });
    }
    for (auto& t : writers) t.join();

    // Quiesce: writers joined (their futures resolved, so their ops are
    // committed), queue may still hold reader-independent noise — flush it,
    // then compare multisets with the oracle.
    svc.flush();
    auto snap = svc.snapshot();
    auto ref = oracle.copy();
    ASSERT_EQ(snap.size(), ref.size());
    testutil::expect_same_multiset(snap.flatten(), ref.points());

    // Spot-check queries at the quiesce point too.
    auto knn_q = datagen::ind_queries(ref.points(), 8,
                                      static_cast<std::uint64_t>(round), kMax);
    std::vector<Box2> ranges;
    for (const auto& q : knn_q) ranges.push_back(box_around(q, kMax / 30));
    testutil::expect_queries_match(snap, ref, knn_q, 10, ranges);
  }

  stop_readers.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reader_queries.load(), 0u);

  const auto st = svc.stats();
  EXPECT_GT(st.splits, 0u);  // growth forced topology changes mid-traffic
  EXPECT_EQ(st.ops_insert, static_cast<std::uint64_t>(kWriters) * kRounds * kPerRound);
  EXPECT_EQ(st.ops_delete, st.ops_insert / 2);
  svc.stop();
}

// Background mode with tiny commit interval: shutdown during traffic still
// resolves every future (the destructor drains).
TEST(ServiceStress, CleanShutdownResolvesEverything) {
  std::vector<std::future<Result<std::int64_t, 2>>> futs;
  {
    SpatialService<SpacZTree2> svc(ServiceConfig{.initial_shards = 2});
    svc.start();
    auto pts = datagen::uniform<2>(2000, 91, kMax);
    futs = svc.submit_insert_batch(pts);
    futs.push_back(svc.submit_knn(pts[0], 3));
    // svc destroyed here: stop() + flush() must resolve all promises.
  }
  for (auto& f : futs) {
    EXPECT_GT(f.get().epoch, 0u);
  }
}

}  // namespace
