// Tests for the Zd-tree baseline: Morton prefix invariants (with path
// compression), query correctness, history independence of updates.

#include <gtest/gtest.h>

#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/baselines/zd_tree.h"
#include "psi/datagen/generators.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

TEST(Zd, BuildInvariantsAndContents) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto pts = seed == 1 ? datagen::uniform<2>(20000, seed, kMax)
               : seed == 2 ? datagen::varden<2>(20000, seed, kMax)
                           : datagen::sweepline<2>(20000, seed, kMax);
    ZdTree2 tree;
    tree.build(pts);
    EXPECT_EQ(tree.size(), pts.size());
    EXPECT_NO_THROW(tree.check_invariants());
    testutil::expect_same_multiset(tree.flatten(), pts);
  }
}

TEST(Zd, QueriesMatchOracle) {
  auto pts = datagen::varden<2>(8000, 4, kMax);
  ZdTree2 tree;
  tree.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto ind = datagen::ind_queries(pts, 25, 4, kMax);
  auto ood = datagen::ood_queries<2>(25, 4, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, ind, 10, ranges);
  testutil::expect_queries_match(tree, oracle, ood, 10, ranges);
}

TEST(Zd, InsertMatchesOracleAndKeepsPrefixInvariant) {
  auto pts = datagen::uniform<2>(6000, 5, kMax);
  const std::size_t half = pts.size() / 2;
  ZdTree2 tree;
  tree.build({pts.begin(), pts.begin() + half});
  tree.batch_insert({pts.begin() + half, pts.end()});
  EXPECT_EQ(tree.size(), pts.size());
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<2>(20, 5, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(Zd, DeleteMatchesOracle) {
  auto pts = datagen::sweepline<2>(6000, 6, kMax);
  std::vector<Point2> dels;
  for (std::size_t i = 0; i < pts.size(); i += 3) dels.push_back(pts[i]);
  ZdTree2 tree;
  tree.build(pts);
  tree.batch_delete(dels);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  oracle.batch_delete(dels);
  EXPECT_EQ(tree.size(), oracle.size());
  auto qs = datagen::ood_queries<2>(20, 6, kMax);
  auto ranges = datagen::range_boxes(qs, 80'000'000, kMax);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

TEST(Zd, IncrementalSmallBatchesEndToEmpty) {
  auto pts = datagen::varden<2>(5000, 7, kMax);
  ZdTree2 tree;
  const std::size_t batch = 250;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_insert({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    ASSERT_EQ(tree.size(), hi);
    ASSERT_NO_THROW(tree.check_invariants());
  }
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const auto hi = std::min(pts.size(), lo + batch);
    tree.batch_delete({pts.begin() + static_cast<std::ptrdiff_t>(lo),
                       pts.begin() + static_cast<std::ptrdiff_t>(hi)});
    ASSERT_NO_THROW(tree.check_invariants());
  }
  EXPECT_TRUE(tree.empty());
}

TEST(Zd, DuplicatesAndDegenerates) {
  ZdTree2 tree;
  tree.build(std::vector<Point2>(200, Point2{{77, 88}}));
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_NO_THROW(tree.check_invariants());
  tree.batch_delete(std::vector<Point2>(50, Point2{{77, 88}}));
  EXPECT_EQ(tree.size(), 150u);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(Zd, ThreeDimensional) {
  auto pts = datagen::uniform<3>(6000, 8, datagen::kDefaultMax3D);
  ZdTree3 tree;
  tree.build(pts);
  EXPECT_NO_THROW(tree.check_invariants());
  BruteForceIndex<std::int64_t, 3> oracle;
  oracle.build(pts);
  auto qs = datagen::ood_queries<3>(15, 8, datagen::kDefaultMax3D);
  auto ranges = datagen::range_boxes(qs, 150'000, datagen::kDefaultMax3D);
  testutil::expect_queries_match(tree, oracle, qs, 10, ranges);
}

}  // namespace
}  // namespace psi
