// Tests for the relocatable arena layer (core/arena) and the arena-backed
// tree images built on it: chunk-pool allocation and freelist reuse,
// offset_ptr relocation by whole-block memcpy, serialized-image round-trips
// through every relocatable backend vs the brute-force oracle, and
// corruption fuzz (truncation, bit flips, parameter mismatch) proving a
// bad image is rejected before anything becomes visible.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "psi/api/any_index.h"
#include "psi/baselines/brute_force.h"
#include "psi/baselines/rtree.h"
#include "psi/baselines/zd_tree.h"
#include "psi/core/arena/chunk_pool.h"
#include "psi/core/arena/offset_ptr.h"
#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "psi/net/distributed_service.h"
#include "test_util.h"

namespace psi {
namespace {

constexpr std::int64_t kMax = 1'000'000'000;

using arena::ChunkPool;
using arena::offset_ptr;

// ---------------------------------------------------------------------
// ChunkPool: allocation, freelist reuse, reset
// ---------------------------------------------------------------------

TEST(ChunkPool, AllocAlignedAndPastNullGuard) {
  ChunkPool pool(1 << 20);
  void* a = pool.alloc(24);
  void* b = pool.alloc(40);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % ChunkPool::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % ChunkPool::kAlign, 0u);
  // Offset 0 is reserved as the null encoding; nothing lives below the
  // bump base.
  EXPECT_GE(pool.to_offset(a), ChunkPool::kBumpBase);
  EXPECT_GE(pool.to_offset(b), pool.to_offset(a) + 24);
  EXPECT_GE(pool.used_bytes(), ChunkPool::kBumpBase + 64);
  EXPECT_EQ(pool.chunks(),
            (pool.used_bytes() + ChunkPool::kChunkBytes - 1) /
                ChunkPool::kChunkBytes);
}

TEST(ChunkPool, FreelistReusesExactSizeClass) {
  ChunkPool pool(1 << 20);
  void* a = pool.alloc(64);
  const std::uint64_t off_a = pool.to_offset(a);
  (void)pool.alloc(64);  // spacer so the bump pointer moved past `a`
  const std::size_t used_before = pool.used_bytes();
  pool.free(a, 64);
  // Same size class comes back from the freelist: identical offset, no
  // bump growth.
  void* c = pool.alloc(64);
  EXPECT_EQ(pool.to_offset(c), off_a);
  EXPECT_EQ(pool.used_bytes(), used_before);
  // A different size class must NOT reuse the 64-byte block.
  pool.free(c, 64);
  void* d = pool.alloc(128);
  EXPECT_NE(pool.to_offset(d), off_a);
}

TEST(ChunkPool, ResetDropsEverything) {
  ChunkPool pool(1 << 20);
  (void)pool.alloc(1000);
  pool.set_user(0, 42);
  pool.reset();
  EXPECT_EQ(pool.used_bytes(), ChunkPool::kBumpBase);
  EXPECT_EQ(pool.user(0), 0u);
  // Post-reset allocation starts from the bump base again.
  EXPECT_EQ(pool.to_offset(pool.alloc(8)), ChunkPool::kBumpBase);
}

TEST(ChunkPool, ExhaustionThrowsBadAlloc) {
  ChunkPool pool(ChunkPool::kChunkBytes);  // one chunk of reservation
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) (void)pool.alloc(ChunkPool::kChunkBytes);
      },
      std::bad_alloc);
}

// ---------------------------------------------------------------------
// offset_ptr: links survive whole-block memcpy to a different base
// ---------------------------------------------------------------------

struct ChainNode {
  offset_ptr<ChainNode> next;
  std::int64_t value = 0;
};

TEST(OffsetPtr, ChainSurvivesRelocationToDifferentPhase) {
  // Build a linked chain inside one contiguous block, then memcpy the
  // whole block to a base with a different 64-byte phase. Every link must
  // still resolve — that is the relocation property the shard arenas rely
  // on.
  constexpr std::size_t kNodes = 100;
  constexpr std::size_t kBlock = kNodes * sizeof(ChainNode);
  std::vector<std::uint8_t> src_buf(kBlock + 128), dst_buf(kBlock + 128);
  auto phase = [](std::uint8_t* p, std::size_t want) {
    auto u = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t aligned = (u + 63) & ~std::uintptr_t{63};
    return reinterpret_cast<std::uint8_t*>(aligned + want);
  };
  std::uint8_t* src = phase(src_buf.data(), 0);
  std::uint8_t* dst = phase(dst_buf.data(), 32);  // different mod-64 phase
  ASSERT_NE(reinterpret_cast<std::uintptr_t>(src) % 64,
            reinterpret_cast<std::uintptr_t>(dst) % 64);

  auto* nodes = reinterpret_cast<ChainNode*>(src);
  for (std::size_t i = 0; i < kNodes; ++i) {
    new (&nodes[i]) ChainNode;
    nodes[i].value = static_cast<std::int64_t>(i * i);
    if (i) nodes[i - 1].next.set(&nodes[i]);
  }

  std::memcpy(dst, src, kBlock);
  std::memset(src, 0xAB, kBlock);  // poison the original

  const auto* cur = reinterpret_cast<const ChainNode*>(dst);
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_NE(cur, nullptr) << "chain broke at node " << i;
    EXPECT_EQ(cur->value, static_cast<std::int64_t>(i * i));
    cur = cur->next.get();
  }
  EXPECT_EQ(cur, nullptr);
}

TEST(OffsetPtr, CopyRederivesFromDestination) {
  // Compare addresses as integers: an offset_ptr target is re-derived via
  // byte arithmetic, and comparing such a pointer against `&a` directly
  // invites the optimizer to fold on provenance.
  auto addr = [](const void* p) { return reinterpret_cast<std::uintptr_t>(p); };
  ChainNode a, b;
  a.value = 7;
  b.next.set(&a);
  offset_ptr<ChainNode> local = b.next;  // stack copy of an in-struct link
  EXPECT_EQ(addr(local.get()), addr(&a));
  EXPECT_EQ(local->value, 7);
  local = nullptr;
  EXPECT_FALSE(local);
  EXPECT_EQ(addr(b.next.get()), addr(&a));
}

// ---------------------------------------------------------------------
// Image validation: framing, truncation, bit flips
// ---------------------------------------------------------------------

std::vector<std::uint8_t> small_image() {
  ChunkPool pool(1 << 20);
  auto* p = static_cast<std::int64_t*>(pool.alloc(256));
  for (int i = 0; i < 32; ++i) p[i] = i;
  pool.set_user(0, pool.to_offset(p));
  return pool.serialize();
}

TEST(ChunkPoolImage, ValidRoundTripFromMisalignedSource) {
  const auto image = small_image();
  EXPECT_EQ(ChunkPool::validate_image(image.data(), image.size()), nullptr);

  // adopt() must not require the *source* buffer to be aligned — images
  // arrive inside wire frames and files at arbitrary offsets.
  std::vector<std::uint8_t> shifted(image.size() + 1);
  std::memcpy(shifted.data() + 1, image.data(), image.size());
  ChunkPool pool(1 << 20);
  pool.adopt(shifted.data() + 1, image.size());
  const auto* p = pool.from_offset<std::int64_t>(pool.user(0));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(p[i], i);
}

TEST(ChunkPoolImage, TruncationRejectedPoolUntouched) {
  const auto image = small_image();
  ChunkPool pool(1 << 20);
  auto* keep = static_cast<std::int64_t*>(pool.alloc(8));
  *keep = 12345;
  const std::uint64_t keep_off = pool.to_offset(keep);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{11}, image.size() / 2,
        image.size() - 1}) {
    EXPECT_NE(ChunkPool::validate_image(image.data(), cut), nullptr)
        << "truncated to " << cut;
    EXPECT_THROW(pool.adopt(image.data(), cut), std::runtime_error);
    // The failed adopt left the pool exactly as it was.
    EXPECT_EQ(*pool.from_offset<std::int64_t>(keep_off), 12345);
  }
}

TEST(ChunkPoolImage, BitFlipFuzzEveryRegionRejected) {
  const auto image = small_image();
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull);
  std::vector<std::uint8_t> mutated;
  // Cover the header, payload and CRC trailer deterministically, plus a
  // random sample: the CRC spans the whole image, so any single-bit flip
  // must be rejected.
  std::vector<std::size_t> positions = {0, 4, 8, 16, 24, image.size() - 4,
                                        image.size() - 1};
  for (int i = 0; i < 64; ++i) {
    positions.push_back(rng() % image.size());
  }
  for (const std::size_t pos : positions) {
    mutated = image;
    mutated[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    EXPECT_NE(ChunkPool::validate_image(mutated.data(), mutated.size()),
              nullptr)
        << "flip at byte " << pos << " was accepted";
    ChunkPool pool(1 << 20);
    EXPECT_THROW(pool.adopt(mutated.data(), mutated.size()),
                 std::runtime_error);
  }
}

// ---------------------------------------------------------------------
// Tree images: round-trip vs oracle, corruption, parameter mismatch
// ---------------------------------------------------------------------

// Exercises one relocatable backend: serialize, adopt into a fresh
// instance, and check the adopted copy answers exactly like the oracle.
template <typename Tree>
void round_trip_matches_oracle(Tree&& src, Tree&& dst) {
  auto pts = datagen::varden<2>(6000, 2, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);
  src.build(pts);

  const std::vector<std::uint8_t> image = src.serialize_arena();
  EXPECT_GT(src.arena_bytes(), 0u);
  EXPECT_GT(src.arena_chunks(), 0u);

  dst.adopt_arena(image);
  EXPECT_EQ(dst.size(), pts.size());
  EXPECT_NO_THROW(dst.check_invariants());
  testutil::expect_same_multiset(dst.flatten(), pts);

  auto ind = datagen::ind_queries(pts, 20, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(dst, oracle, ind, 10, ranges);

  // The adopted tree is a live index, not a frozen snapshot: updates must
  // keep working on relocated storage.
  auto extra = datagen::uniform<2>(500, 1, kMax);
  dst.batch_insert(extra);
  oracle.batch_insert(extra);
  EXPECT_NO_THROW(dst.check_invariants());
  testutil::expect_queries_match(dst, oracle, ind, 10, ranges);
}

TEST(ArenaRoundTrip, SpacHilbert) {
  round_trip_matches_oracle(SpacHTree2{}, SpacHTree2{});
}

TEST(ArenaRoundTrip, SpacMorton) {
  round_trip_matches_oracle(SpacZTree2{}, SpacZTree2{});
}

TEST(ArenaRoundTrip, SpacTotalOrder) {
  round_trip_matches_oracle(SpacHTree2{cpam_params()},
                            SpacHTree2{cpam_params()});
}

TEST(ArenaRoundTrip, ZdTree) {
  round_trip_matches_oracle(ZdTree<std::int64_t, 2>{},
                            ZdTree<std::int64_t, 2>{});
}

TEST(ArenaRoundTrip, CorruptImageLeavesTargetIntact) {
  auto pts = datagen::uniform<2>(4000, 1, kMax);
  SpacZTree2 src, dst;
  src.build(pts);
  std::vector<std::uint8_t> image = src.serialize_arena();

  auto own = datagen::uniform<2>(1000, 1, kMax);
  dst.build(own);

  // Pre-CRC failure (truncation): the target must keep its contents.
  EXPECT_THROW(dst.adopt_arena(image.data(), image.size() / 2),
               std::runtime_error);
  EXPECT_EQ(dst.size(), own.size());
  testutil::expect_same_multiset(dst.flatten(), own);

  image[image.size() / 2] ^= 0x40;  // payload bit flip → CRC mismatch
  EXPECT_THROW(dst.adopt_arena(image), std::runtime_error);
  EXPECT_EQ(dst.size(), own.size());
  testutil::expect_same_multiset(dst.flatten(), own);
}

TEST(ArenaRoundTrip, ParameterMismatchRejected) {
  auto pts = datagen::uniform<2>(2000, 1, kMax);
  SpacHTree2 src;
  src.build(pts);
  const auto image = src.serialize_arena();

  // Same codec, different structural parameters → fingerprint mismatch.
  SpacParams other;
  other.leaf_wrap = other.leaf_wrap * 2;
  SpacHTree2 wrong_params(other);
  EXPECT_THROW(wrong_params.adopt_arena(image), std::runtime_error);
  EXPECT_EQ(wrong_params.size(), 0u);

  // A ZdTree image is never adoptable by a SPaC tree (distinct family
  // marker in the fingerprint) and vice versa.
  ZdTree<std::int64_t, 2> zd;
  zd.build(pts);
  SpacHTree2 spac_dst;
  EXPECT_THROW(spac_dst.adopt_arena(zd.serialize_arena()),
               std::runtime_error);
  ZdTree<std::int64_t, 2> zd_dst;
  EXPECT_THROW(zd_dst.adopt_arena(image), std::runtime_error);
}

TEST(ArenaRoundTrip, ChurnedFreelistsSurviveRelocation) {
  // Delete/insert churn leaves the pool with non-empty freelists whose
  // next-links live inside freed blocks — they must ride the image and
  // keep working (reuse, no corruption) after adoption.
  auto pts = datagen::uniform<2>(8000, 3, kMax);
  SpacHTree2 src;
  src.build(pts);
  std::vector<Point<std::int64_t, 2>> dead(pts.begin() + 2000,
                                           pts.begin() + 4000);
  src.batch_delete(dead);
  auto extra = datagen::uniform<2>(1000, 81, kMax);
  src.batch_insert(extra);
  EXPECT_NO_THROW(src.check_invariants());

  SpacHTree2 dst;
  dst.adopt_arena(src.serialize_arena());
  EXPECT_NO_THROW(dst.check_invariants());
  testutil::expect_same_multiset(dst.flatten(), src.flatten());

  // Keep churning on the adopted side: freelist reuse now happens on
  // relocated storage.
  auto more = datagen::uniform<2>(1500, 82, kMax);
  dst.batch_insert(more);
  std::vector<Point<std::int64_t, 2>> dead2(extra.begin(),
                                            extra.begin() + 500);
  dst.batch_delete(dead2);
  EXPECT_NO_THROW(dst.check_invariants());
  EXPECT_EQ(dst.size(), src.size() + more.size() - dead2.size());
}

TEST(ArenaRoundTrip, SerializeAdoptSerializeIsByteIdentical) {
  SpacZTree2 src;
  src.build(datagen::uniform<2>(3000, 4, kMax));
  const auto image = src.serialize_arena();
  SpacZTree2 dst;
  dst.adopt_arena(image);
  EXPECT_EQ(dst.serialize_arena(), image);
}

TEST(ArenaRoundTrip, EmptyTreeImageAdopts) {
  SpacZTree2 src;
  const auto image = src.serialize_arena();
  SpacZTree2 dst;
  dst.build(datagen::uniform<2>(100, 5, kMax));
  dst.adopt_arena(image);
  EXPECT_EQ(dst.size(), 0u);
  EXPECT_NO_THROW(dst.check_invariants());
  dst.batch_insert(datagen::uniform<2>(64, 6, kMax));
  EXPECT_EQ(dst.size(), 64u);
}

// Structural damage behind a *valid* checksum: recompute the trailing CRC
// after each patch so the corruption reaches the post-CRC metadata checks
// instead of bouncing off the checksum.
TEST(ArenaRoundTrip, ValidCrcStructuralDamageRejected) {
  auto fix_crc = [](std::vector<std::uint8_t>& image) {
    const std::uint32_t crc =
        arena::crc32(image.data(), image.size() - 4);
    for (int i = 0; i < 4; ++i) {
      image[image.size() - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * i));
    }
  };
  auto put_u64_at = [](std::vector<std::uint8_t>& image, std::size_t off,
                       std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      image[off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };

  SpacHTree2 src;
  src.build(datagen::uniform<2>(2000, 7, kMax));
  const auto image = src.serialize_arena();
  // Image layout: [u32 magic][u32 version][u64 used][u64 user0=root]
  // [u64 user1=fingerprint][u64 heads[...]][payload][u32 crc].
  constexpr std::size_t kRootAt = 16;
  constexpr std::size_t kHeadsAt = 32;

  {  // Root offset beyond the used region: rejected, tree left empty.
    auto bad = image;
    put_u64_at(bad, kRootAt, std::uint64_t{1} << 40);
    fix_crc(bad);
    SpacHTree2 victim;
    victim.build(datagen::uniform<2>(50, 8, kMax));
    EXPECT_THROW(victim.adopt_arena(bad), std::runtime_error);
    EXPECT_EQ(victim.size(), 0u);
    // And still usable after the failed adopt.
    victim.batch_insert(datagen::uniform<2>(32, 9, kMax));
    EXPECT_NO_THROW(victim.check_invariants());
  }
  {  // Misaligned root offset.
    auto bad = image;
    std::uint64_t root = 0;
    for (int i = 0; i < 8; ++i) {
      root |= std::uint64_t{bad[kRootAt + static_cast<std::size_t>(i)]}
              << (8 * i);
    }
    ASSERT_NE(root, 0u);
    put_u64_at(bad, kRootAt, root + 1);
    fix_crc(bad);
    SpacHTree2 victim;
    EXPECT_THROW(victim.adopt_arena(bad), std::runtime_error);
  }
  {  // Freelist head pointing past the used region: caught by the pool's
     // own validation, before anything is adopted.
    auto bad = image;
    put_u64_at(bad, kHeadsAt, std::uint64_t{1} << 40);
    fix_crc(bad);
    EXPECT_NE(ChunkPool::validate_image(bad.data(), bad.size()), nullptr);
    SpacHTree2 victim;
    victim.build(datagen::uniform<2>(50, 10, kMax));
    EXPECT_THROW(victim.adopt_arena(bad), std::runtime_error);
    EXPECT_EQ(victim.size(), 50u);  // pre-CRC-stage failure: untouched
  }
}

// ---------------------------------------------------------------------
// Distributed handoff: raw images over the wire and in checkpoints
// ---------------------------------------------------------------------

using ArenaDService = net::DistributedService<SpacZTree2>;
// RTree is not relocatable, so the same facade built over it exercises
// the legacy point-wise handoff end to end.
using PointsDService = net::DistributedService<RTree2>;

template <typename Service>
std::vector<Point<std::int64_t, 2>> run_migration_storm(
    const std::vector<Point<std::int64_t, 2>>& pts,
    std::vector<std::size_t>* counts) {
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.balance_nodes = false;
  Service svc(fabric, 2, cfg);
  svc.build(pts);
  for (std::size_t round = 0; round < 2; ++round) {
    const auto dest = static_cast<net::NodeId>(1 + round % 2);
    for (std::size_t i = 0; i < svc.num_shards(); ++i) svc.migrate(i, dest);
  }
  const auto queries = datagen::uniform<2>(30, 53, kMax);
  for (const auto& q : queries) {
    counts->push_back(svc.range_count(
        testutil::box_around(q, std::int64_t{40'000'000}, kMax)));
  }
  return svc.flatten();
}

TEST(ArenaHandoff, MigrationMatchesPointWiseBackend) {
  const auto pts = datagen::uniform<2>(6000, 47, kMax);
  std::vector<std::size_t> arena_counts, points_counts;
  const auto arena_flat = run_migration_storm<ArenaDService>(pts, &arena_counts);
  const auto points_flat =
      run_migration_storm<PointsDService>(pts, &points_counts);
  EXPECT_EQ(arena_counts, points_counts);
  testutil::expect_same_multiset(arena_flat, pts);
  testutil::expect_same_multiset(points_flat, pts);
}

TEST(ArenaHandoff, CheckpointsAreArenaImagesAndHostRecoveryAdoptsThem) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "psi_arena_handoff_ckpt";
  fs::remove_all(dir);

  const auto pts = datagen::uniform<2>(4000, 59, kMax);
  net::LoopbackTransport fabric;
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability.enabled = true;
  cfg.durability.dir = dir;
  cfg.durability.fsync = false;
  ArenaDService svc(fabric, 2, cfg);
  svc.build(pts);

  // A relocatable backend must checkpoint raw arena images.
  std::size_t arena_files = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.path().extension() == ".arena") ++arena_files;
  }
  EXPECT_GT(arena_files, 0u);

  svc.crash_host(0);
  svc.recover_host(0);
  testutil::expect_same_multiset(svc.flatten(), pts);
  const auto queries = datagen::uniform<2>(20, 61, kMax);
  for (const auto& q : queries) {
    const auto box =
        testutil::box_around(q, std::int64_t{40'000'000}, kMax);
    std::size_t oracle = 0;
    for (const auto& p : pts) oracle += box.contains(p) ? 1 : 0;
    EXPECT_EQ(svc.range_count(box), oracle);
  }
  fs::remove_all(dir);
}

TEST(ArenaHandoff, WalTailOverArenaCheckpointMaterialises) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "psi_arena_handoff_wal";
  fs::remove_all(dir);

  const auto pts = datagen::uniform<2>(3000, 67, kMax);
  net::DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.durability.enabled = true;
  cfg.durability.dir = dir;
  cfg.durability.fsync = false;

  std::vector<Point<std::int64_t, 2>> expected(pts.begin() + 50, pts.end());
  {
    net::LoopbackTransport fabric;
    ArenaDService svc(fabric, 2, cfg);
    svc.build(pts);  // checkpoint: arena images
    // Post-checkpoint WAL tail — replay must materialise the touched
    // arena shards back to points via the decoder.
    const auto extra = datagen::uniform<2>(200, 71, kMax);
    svc.insert_batch(extra);
    expected.insert(expected.end(), extra.begin(), extra.end());
    svc.delete_batch({pts.begin(), pts.begin() + 50});
  }  // facade destroyed without a final checkpoint: the "crash"

  net::LoopbackTransport fabric;
  ArenaDService svc(fabric, 2, cfg);
  svc.recover_from_disk();
  testutil::expect_same_multiset(svc.flatten(), expected);
  fs::remove_all(dir);
}

TEST(ArenaHandoff, CleanRestartRestoresTopologyVerbatim) {
  if (!durability::kEnabled) GTEST_SKIP() << "durability compiled out";
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "psi_arena_handoff_topo";
  fs::remove_all(dir);

  const auto pts = datagen::uniform<2>(6000, 73, kMax);
  net::DistributedConfig cfg;
  cfg.initial_shards = 5;
  cfg.balance_nodes = false;
  cfg.durability.enabled = true;
  cfg.durability.dir = dir;
  cfg.durability.fsync = false;

  std::size_t shards_before = 0;
  {
    net::LoopbackTransport fabric;
    ArenaDService svc(fabric, 2, cfg);
    svc.build(pts);
    // Skew the placement away from anything a fresh bulk load would pick,
    // so a surviving topology is distinguishable from a repartition.
    svc.migrate(0, 2);
    svc.migrate(1, 2);  // migrate() re-checkpoints: TOPOLOGY is current
    shards_before = svc.num_shards();
  }  // orderly shutdown: clean WAL tails everywhere

  // Restart under a config whose bulk-load path would repartition into 2
  // shards: only the verbatim topology restore preserves all 5.
  net::DistributedConfig cfg2 = cfg;
  cfg2.initial_shards = 2;
  const auto extra = datagen::uniform<2>(500, 83, kMax);
  auto all = pts;
  all.insert(all.end(), extra.begin(), extra.end());
  {
    net::LoopbackTransport fabric;
    ArenaDService svc(fabric, 2, cfg2);
    svc.recover_from_disk();
    EXPECT_EQ(svc.num_shards(), shards_before);
    testutil::expect_same_multiset(svc.flatten(), pts);

    const auto queries = datagen::uniform<2>(20, 79, kMax);
    for (const auto& q : queries) {
      const auto box = testutil::box_around(q, std::int64_t{40'000'000}, kMax);
      std::size_t oracle = 0;
      for (const auto& p : pts) oracle += box.contains(p) ? 1 : 0;
      EXPECT_EQ(svc.range_count(box), oracle);
    }

    // The restored incarnation must keep writing correctly: key/version
    // allocators have to climb past every restored id.
    svc.insert_batch(extra);
    testutil::expect_same_multiset(svc.flatten(), all);
  }  // crash again, WAL tail now holds `extra`

  // The verbatim restore skipped re-checkpointing, so those inserts are
  // durable only as WAL records above the pre-restart manifest watermark.
  // A second recovery must compose old checkpoint + new tail.
  net::LoopbackTransport fabric;
  ArenaDService svc(fabric, 2, cfg2);
  svc.recover_from_disk();
  testutil::expect_same_multiset(svc.flatten(), all);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// AnyIndex: runtime capability flag and type-erased pass-through
// ---------------------------------------------------------------------

TEST(AnyIndexArena, RelocatableBackendRoundTrips) {
  auto pts = datagen::uniform<2>(3000, 1, kMax);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  api::AnyIndex2 src(SpacZTree2{}, "spac-z");
  ASSERT_TRUE(src.relocatable());
  src.build(pts);
  EXPECT_GT(src.arena_bytes(), 0u);
  EXPECT_GT(src.arena_chunks(), 0u);

  api::AnyIndex2 dst(SpacZTree2{}, "spac-z");
  dst.adopt_arena(src.serialize_arena());
  EXPECT_EQ(dst.size(), pts.size());
  testutil::expect_same_multiset(dst.flatten(), pts);
  auto ind = datagen::ind_queries(pts, 15, 2, kMax);
  auto ranges = datagen::range_boxes(ind, 50'000'000, kMax);
  testutil::expect_queries_match(dst, oracle, ind, 10, ranges);
}

TEST(AnyIndexArena, NonRelocatableBackendThrowsLogicError) {
  api::AnyIndex2 idx(RTree2{}, "rtree");
  EXPECT_FALSE(idx.relocatable());
  EXPECT_EQ(idx.arena_bytes(), 0u);
  EXPECT_EQ(idx.arena_chunks(), 0u);
  EXPECT_THROW((void)idx.serialize_arena(), std::logic_error);
  const std::uint8_t byte = 0;
  EXPECT_THROW(idx.adopt_arena(&byte, 1), std::logic_error);
}

}  // namespace
}  // namespace psi
