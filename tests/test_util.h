// Shared helpers for index correctness tests: tie-insensitive kNN
// comparison, multiset range comparison, and a generic index-vs-oracle
// workout used by several suites.

#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "psi/baselines/brute_force.h"
#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::testutil {

// Axis-aligned box of side 2*half centred on c, clamped to [0, coord_max].
template <typename Coord, int D>
Box<Coord, D> box_around(const Point<Coord, D>& c, Coord half,
                         Coord coord_max) {
  Box<Coord, D> b;
  for (int d = 0; d < D; ++d) {
    b.lo[d] = std::max<Coord>(0, c[d] - half);
    b.hi[d] = std::min<Coord>(coord_max, c[d] + half);
  }
  return b;
}

// kNN answers may differ in tie order / tied membership; distances must
// match exactly.
template <typename PointT>
void expect_knn_equivalent(const std::vector<PointT>& got, const PointT& q,
                           const std::vector<double>& oracle_dists) {
  ASSERT_EQ(got.size(), oracle_dists.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(squared_distance(got[i], q), oracle_dists[i])
        << "rank " << i << " query " << q;
  }
}

template <typename PointT>
void expect_same_multiset(std::vector<PointT> a, std::vector<PointT> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// Cross-check an index against the brute-force oracle on a set of kNN and
// range queries.
template <typename Index, typename Oracle, typename PointT, typename BoxT>
void expect_queries_match(const Index& index, const Oracle& oracle,
                          const std::vector<PointT>& knn_queries, std::size_t k,
                          const std::vector<BoxT>& ranges) {
  ASSERT_EQ(index.size(), oracle.size());
  for (const auto& q : knn_queries) {
    expect_knn_equivalent(index.knn(q, k), q, oracle.knn_distances(q, k));
  }
  for (const auto& r : ranges) {
    EXPECT_EQ(index.range_count(r), oracle.range_count(r));
    expect_same_multiset(index.range_list(r), oracle.range_list(r));
  }
}

}  // namespace psi::testutil
