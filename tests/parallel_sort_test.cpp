// Tests for counting sort (the sieve), sample sort, sample_sort_transform
// (the HybridSort core), and merge sort — all against std::sort /
// std::stable_sort oracles across sizes and key distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "psi/parallel/counting_sort.h"
#include "psi/parallel/random.h"
#include "psi/parallel/sort.h"

namespace psi {
namespace {

struct SortCase {
  std::size_t n;
  std::uint64_t key_range;  // values drawn from [0, key_range)
};

class SortSizes : public ::testing::TestWithParam<SortCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, SortSizes,
    ::testing::Values(SortCase{0, 10}, SortCase{1, 10}, SortCase{10, 3},
                      SortCase{1000, 1000000}, SortCase{8192, 2},
                      SortCase{8193, 1000}, SortCase{50000, 50},
                      SortCase{200000, 1u << 31}, SortCase{100000, 1}));

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t range,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.ith_bounded(i, range);
  return v;
}

TEST_P(SortSizes, SampleSortMatchesStdSort) {
  auto v = random_keys(GetParam().n, GetParam().key_range, 1);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  sample_sort(v);
  EXPECT_EQ(v, expect);
}

TEST_P(SortSizes, MergeSortMatchesStdSort) {
  auto v = random_keys(GetParam().n, GetParam().key_range, 2);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  merge_sort(v);
  EXPECT_EQ(v, expect);
}

TEST_P(SortSizes, MergeSortIsStable) {
  // Sort pairs by first only; second records original index.
  const std::size_t n = GetParam().n;
  auto keys = random_keys(n, GetParam().key_range, 3);
  std::vector<std::pair<std::uint64_t, std::size_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = {keys[i], i};
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  merge_sort(v, [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(v, expect);
}

TEST_P(SortSizes, SampleSortTransformComputesEachOnce) {
  const std::size_t n = GetParam().n;
  auto keys = random_keys(n, GetParam().key_range, 4);
  std::vector<std::atomic<int>> touched(n);
  auto out = sample_sort_transform<std::pair<std::uint64_t, std::size_t>>(
      n,
      [&](std::size_t i) {
        // Samples may touch an index more than once; the main pass touches
        // each exactly once. We only check that every index was touched.
        touched[i].fetch_add(1);
        return std::pair<std::uint64_t, std::size_t>{keys[i], i};
      },
      [](const auto& a, const auto& b) { return a < b; });
  ASSERT_EQ(out.size(), n);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  for (std::size_t i = 0; i < n; ++i) ASSERT_GE(touched[i].load(), 1);
  // Result is a permutation: all ids present.
  std::vector<bool> seen(n, false);
  for (const auto& [k, id] : out) {
    EXPECT_EQ(k, keys[id]);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST_P(SortSizes, CountingSortBucketsContiguousAndStable) {
  const std::size_t n = GetParam().n;
  const std::size_t num_buckets = 16;
  auto keys = random_keys(n, num_buckets, 5);
  std::vector<std::pair<std::uint64_t, std::size_t>> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = {keys[i], i};
  std::vector<std::pair<std::uint64_t, std::size_t>> out(n);
  auto offsets = counting_sort_into(in.data(), out.data(), n, num_buckets,
                                    [&](std::size_t i) { return keys[i]; });
  ASSERT_EQ(offsets.size(), num_buckets + 1);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[num_buckets], n);
  for (std::size_t k = 0; k < num_buckets; ++k) {
    ASSERT_LE(offsets[k], offsets[k + 1]);
    for (std::size_t i = offsets[k]; i < offsets[k + 1]; ++i) {
      ASSERT_EQ(out[i].first, k);
      if (i > offsets[k]) {
        // Stability: original indices increase within a bucket.
        ASSERT_LT(out[i - 1].second, out[i].second);
      }
    }
  }
}

TEST_P(SortSizes, SieveInPlaceMatchesCountingSort) {
  const std::size_t n = GetParam().n;
  const std::size_t num_buckets = 8;
  auto keys = random_keys(n, num_buckets, 6);
  std::vector<std::pair<std::uint64_t, std::size_t>> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = {keys[i], i};
  auto offsets =
      sieve(v.data(), n, num_buckets, [&](std::size_t i) { return keys[i]; });
  for (std::size_t k = 0; k < num_buckets; ++k) {
    for (std::size_t i = offsets[k]; i < offsets[k + 1]; ++i) {
      ASSERT_EQ(v[i].first, k);
    }
  }
}

TEST(Sort, SieveKeyByIndexLazyClassification) {
  // The sieve classifies by *index*, letting callers avoid materialising
  // keys — exactly how the P-Orth tree uses it.
  std::vector<int> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  auto offsets = sieve(v.data(), v.size(), 4,
                       [&](std::size_t i) { return static_cast<std::size_t>(v[i]) % 4; });
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(offsets[k + 1] - offsets[k], v.size() / 4);
  }
}

TEST(Sort, AllEqualKeys) {
  std::vector<std::uint64_t> v(100000, 7);
  sample_sort(v);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](auto x) { return x == 7u; }));
}

TEST(Sort, AlreadySortedAndReversed) {
  std::vector<std::uint64_t> v(100000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto sorted = v;
  sample_sort(v);
  EXPECT_EQ(v, sorted);
  std::reverse(v.begin(), v.end());
  sample_sort(v);
  EXPECT_EQ(v, sorted);
}

TEST(Sort, CustomComparatorDescending) {
  auto v = random_keys(50000, 1000, 9);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  sample_sort(v, std::greater<>());
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace psi
