// The parallel kNN engine and the version-keyed query cache, end to end:
//
//  * parallel vs sequential kNN equivalence — every registry backend
//    (native subtree fan-out or the sequential shim), uniform and varden
//    inputs, workers ∈ {1, 2, 4}, fork grain forced tiny so the forking
//    code paths run on test-sized trees even on 1-core CI;
//  * duplicate-coordinate ties (distance multisets must match exactly;
//    tie *membership* at the k-th distance is allowed to differ);
//  * k > n and k == 0 edge cases;
//  * Snapshot shard fan-out with the shared radius bound vs the
//    brute-force oracle, plus the knn_count / knn_dist2 distance-only
//    paths;
//  * the version-keyed cache: hits, cross-epoch reuse when commits only
//    touch other shards, invalidation when a covering shard changes,
//    size-aware admission, kNN/ball memoization, and cached reads racing
//    a committing writer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "psi/psi.h"
#include "test_util.h"

namespace {

using namespace psi;
using namespace psi::service;

constexpr std::int64_t kMax = 1'000'000;

// Restore scheduler/grain defaults after each test so suites stay
// order-independent.
class ParallelKnnTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_fork_grain(0);
    Scheduler::set_num_workers(1);
  }
};

std::vector<Point2> dataset(const std::string& kind, std::size_t n,
                            std::uint64_t seed) {
  if (kind == "varden") return datagen::varden<2>(n, seed, kMax);
  return datagen::uniform<2>(n, seed, kMax);
}

std::vector<double> dist2s(const std::vector<Point2>& pts, const Point2& q) {
  std::vector<double> out;
  out.reserve(pts.size());
  for (const auto& p : pts) out.push_back(squared_distance(p, q));
  return out;
}

// Ranked distance equality: same size, elementwise identical squared
// distances (tie membership may differ; distances must not).
void expect_same_distances(const std::vector<double>& got,
                           const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "rank " << i;
  }
}

TEST_F(ParallelKnnTest, AllBackendsParallelEqualsSequential) {
  set_fork_grain(128);  // force forking on test-sized trees
  auto& reg = api::BackendRegistry2::instance();
  const std::vector<Point2> queries = {
      Point2{{kMax / 2, kMax / 2}},     // centre
      Point2{{3, 7}},                   // corner
      Point2{{2 * kMax, 2 * kMax}},     // outside the domain
  };
  for (const std::string kind : {"uniform", "varden"}) {
    const auto pts = dataset(kind, 4000, kind == "varden" ? 7 : 5);
    for (const auto& name : reg.names()) {
      auto index = reg.make(name);
      index.build(pts);
      for (int workers : {1, 2, 4}) {
        Scheduler::set_num_workers(workers);
        for (std::size_t k : {std::size_t{1}, std::size_t{10},
                              std::size_t{64}}) {
          for (const auto& q : queries) {
            const std::vector<double> want = dist2s(index.knn(q, k), q);
            api::ConcurrentKnnBuffer<std::int64_t, 2> buf(k);
            index.knn_visit_par(q, k, buf);
            std::vector<double> got;
            for (const auto& e : buf.merged_sorted()) got.push_back(e.dist2);
            SCOPED_TRACE(name + "/" + kind + " workers=" +
                         std::to_string(workers) + " k=" + std::to_string(k));
            expect_same_distances(got, want);
          }
        }
      }
      Scheduler::set_num_workers(1);
    }
  }
}

// The native (fully templated) kNN fan-outs, bypassing AnyIndex.
TEST_F(ParallelKnnTest, NativeTreeParallelKnn) {
  set_fork_grain(64);
  Scheduler::set_num_workers(4);
  const auto pts = dataset("uniform", 6000, 11);
  const Point2 q{{kMax / 3, 2 * kMax / 3}};

  auto check = [&](auto index) {
    index.build(pts);
    for (std::size_t k : {std::size_t{1}, std::size_t{32}}) {
      api::ConcurrentKnnBuffer<std::int64_t, 2> buf(k);
      index.knn_visit_par(q, k, buf);
      std::vector<double> got;
      for (const auto& e : buf.merged_sorted()) got.push_back(e.dist2);
      expect_same_distances(got, dist2s(index.knn(q, k), q));
    }
  };
  check(SpacZTree2{});
  check(SpacHTree2{});
  check(POrthTree2{});
  check(ZdTree2{});
  check(PkdTree<std::int64_t, 2>{});
}

// Heavily duplicated coordinates: k cuts through tied groups. The chosen
// representatives may differ between the paths; the ranked distances and
// the result size may not.
TEST_F(ParallelKnnTest, DuplicateCoordinateTies) {
  set_fork_grain(64);
  const auto coords = dataset("uniform", 12, 99);  // 12 distinct positions
  std::vector<Point2> pts;
  for (int copy = 0; copy < 300; ++copy) {
    pts.insert(pts.end(), coords.begin(), coords.end());
  }
  SpacZTree2 tree;
  tree.build(pts);
  const Point2 q{{kMax / 2, kMax / 2}};
  for (int workers : {1, 2, 4}) {
    Scheduler::set_num_workers(workers);
    for (std::size_t k : {std::size_t{25}, std::size_t{301}}) {
      const std::vector<double> want = dist2s(tree.knn(q, k), q);
      api::ConcurrentKnnBuffer<std::int64_t, 2> buf(k);
      tree.knn_visit_par(q, k, buf);
      std::vector<double> got;
      for (const auto& e : buf.merged_sorted()) got.push_back(e.dist2);
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " k=" + std::to_string(k));
      expect_same_distances(got, want);
    }
  }
}

TEST_F(ParallelKnnTest, KGreaterThanNAndKZero) {
  set_fork_grain(8);
  Scheduler::set_num_workers(2);
  const auto pts = dataset("uniform", 37, 3);
  SpacZTree2 tree;
  tree.build(pts);
  const Point2 q{{kMax / 2, kMax / 2}};

  api::ConcurrentKnnBuffer<std::int64_t, 2> big(100);
  tree.knn_visit_par(q, 100, big);
  EXPECT_EQ(big.merged_sorted().size(), pts.size());

  api::ConcurrentKnnBuffer<std::int64_t, 2> zero(0);
  tree.knn_visit_par(q, 0, zero);
  EXPECT_TRUE(zero.merged_sorted().empty());

  // Same edges through the snapshot.
  ServiceConfig cfg;
  cfg.initial_shards = 2;
  SpatialService<SpacZTree2> svc(cfg);
  svc.build(pts);
  auto snap = svc.snapshot();
  EXPECT_EQ(snap.knn_count(q, 100), pts.size());
  EXPECT_EQ(snap.knn_count(q, 0), 0u);
  EXPECT_EQ(snap.knn(q, 100).size(), pts.size());
}

// Snapshot fan-out: shards run concurrently, all seeded by one shared
// radius bound; results must match the brute-force oracle at every worker
// count, and the distance-only paths must agree.
TEST_F(ParallelKnnTest, SnapshotKnnFanOutMatchesOracle) {
  set_fork_grain(128);
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  const auto pts = dataset("varden", 20000, 23);
  svc.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  auto snap = svc.snapshot();
  const auto queries = datagen::ind_queries(pts, 12, 77, kMax);
  for (int workers : {1, 2, 4}) {
    Scheduler::set_num_workers(workers);
    for (const auto& q : queries) {
      for (std::size_t k : {std::size_t{1}, std::size_t{10},
                            std::size_t{50}}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) +
                     " k=" + std::to_string(k));
        const auto want = oracle.knn_distances(q, k);
        testutil::expect_knn_equivalent(snap.knn(q, k), q, want);
        expect_same_distances(snap.knn_dist2(q, k), want);
        EXPECT_EQ(snap.knn_count(q, k), want.size());

        // The explicit par and seq entry points agree with each other.
        std::vector<Point2> par_pts, seq_pts;
        snap.knn_visit_par(q, k, api::collect_into(par_pts));
        snap.knn_visit_seq(q, k, api::collect_into(seq_pts));
        expect_same_distances(dist2s(par_pts, q), dist2s(seq_pts, q));
      }
    }
  }
}

// Version keying: a commit that only touches other shards leaves entries
// valid (cross-epoch reuse); a commit into a covering shard invalidates.
TEST_F(ParallelKnnTest, CacheCrossEpochReuseAndInvalidation) {
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  svc.build(dataset("uniform", 8000, 42));

  auto snap = svc.snapshot();
  ASSERT_GE(snap.num_shards(), 2u);
  const Box2 low_box{{{0, 0}}, {{kMax / 8, kMax / 8}}};
  const Point2 far{{kMax - 1, kMax - 1}};
  const auto run_box = snap.shard_run_for_box(low_box);
  const auto run_far = snap.shard_run_for_box(Box2{far, far});
  ASSERT_GT(run_far.first, run_box.second)
      << "dataset/shard layout no longer separates the probes";

  const auto first = svc.range_list_cached(low_box);
  const auto again = svc.range_list_cached(low_box);
  EXPECT_EQ(first.get(), again.get());  // shared materialised result

  // Commit into the far shard only: epoch advances, coverage unchanged.
  const std::uint64_t before = svc.epoch();
  svc.submit_insert(far);
  svc.flush();
  ASSERT_GT(svc.epoch(), before);
  const auto cross = svc.range_list_cached(low_box);
  EXPECT_EQ(cross.get(), first.get());
  auto st = svc.stats();
  EXPECT_GE(st.cache_cross_epoch_hits, 1u);
  EXPECT_GT(st.cache_bytes, 0u);
  EXPECT_NE(st.json().find("\"cache_bytes\":"), std::string::npos);

  // Commit into a covering shard: the entry must die.
  const Point2 inside{{kMax / 16, kMax / 16}};
  svc.submit_insert(inside);
  svc.flush();
  const auto after = svc.range_list_cached(low_box);
  EXPECT_NE(after.get(), first.get());
  EXPECT_EQ(after->size(), first->size() + 1);
  testutil::expect_same_multiset(*after, svc.snapshot().range_list(low_box));
}

// kNN and ball memoization: hits share the vector; kNN coverage is the
// whole version vector, so any commit invalidates it.
TEST_F(ParallelKnnTest, CacheKnnAndBall) {
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  const auto pts = dataset("uniform", 6000, 17);
  svc.build(pts);
  BruteForceIndex<std::int64_t, 2> oracle;
  oracle.build(pts);

  const Point2 q{{kMax / 2, kMax / 2}};
  const double radius = kMax / 10.0;

  const auto knn1 = svc.knn_cached(q, 10);
  const auto knn2 = svc.knn_cached(q, 10);
  EXPECT_EQ(knn1.get(), knn2.get());
  testutil::expect_knn_equivalent(*knn1, q, oracle.knn_distances(q, 10));

  const auto ball1 = svc.ball_list_cached(q, radius);
  const auto ball2 = svc.ball_list_cached(q, radius);
  EXPECT_EQ(ball1.get(), ball2.get());
  testutil::expect_same_multiset(*ball1, oracle.ball_list(q, radius));
  EXPECT_EQ(svc.ball_count_cached(q, radius), ball1->size());

  // Any commit invalidates the kNN entry (full coverage).
  const Point2 extra{{kMax / 2 + 1, kMax / 2 + 1}};
  svc.submit_insert(extra);
  svc.flush();
  oracle.batch_insert({extra});
  const auto knn3 = svc.knn_cached(q, 10);
  EXPECT_NE(knn3.get(), knn1.get());
  testutil::expect_knn_equivalent(*knn3, q, oracle.knn_distances(q, 10));
}

// Degenerate queries through the cached paths: an empty/inverted box
// clamps to an inverted shard run, which must yield an empty coverage —
// not an inverted iterator range (UB) — and an empty, cacheable result.
TEST_F(ParallelKnnTest, CacheDegenerateQueries) {
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  svc.build(dataset("uniform", 2000, 4));

  const Box2 empty_box = Box2::empty();
  const Box2 inverted{{{kMax, kMax}}, {{0, 0}}};
  for (const Box2& b : {empty_box, inverted}) {
    const auto lst = svc.range_list_cached(b);
    EXPECT_TRUE(lst->empty());
    EXPECT_EQ(svc.range_list_cached(b).get(), lst.get());  // hit, no UB
    EXPECT_EQ(svc.range_count_cached(b), 0u);
  }
  // Negative radius: whatever the uncached semantics, cached must agree.
  const Point2 origin{{0, 0}};
  testutil::expect_same_multiset(*svc.ball_list_cached(origin, -1.0),
                                 svc.snapshot().ball_list(origin, -1.0));
}

// Size-aware admission: oversized lists are answered but never cached.
TEST_F(ParallelKnnTest, CacheSizeAwareAdmission) {
  ServiceConfig cfg;
  cfg.initial_shards = 2;
  cfg.cache_max_entry_bytes = 4 * sizeof(Point2);  // admit <= 4 points
  SpatialService<SpacZTree2> svc(cfg);
  svc.build(dataset("uniform", 3000, 8));

  const Box2 everything{{{0, 0}}, {{kMax, kMax}}};
  const auto big1 = svc.range_list_cached(everything);
  const auto big2 = svc.range_list_cached(everything);
  EXPECT_EQ(big1->size(), 3000u);
  EXPECT_NE(big1.get(), big2.get());  // recomputed: never admitted
  auto st = svc.stats();
  EXPECT_GE(st.cache_oversize_skips, 2u);
  EXPECT_EQ(st.cache_bytes, 0u);
  EXPECT_EQ(st.cache_hits, 0u);

  // A small result is admitted and shared.
  const Point2 q{{kMax / 2, kMax / 2}};
  const auto small1 = svc.knn_cached(q, 2);
  const auto small2 = svc.knn_cached(q, 2);
  EXPECT_EQ(small1.get(), small2.get());
  st = svc.stats();
  EXPECT_EQ(st.cache_bytes, small1->size() * sizeof(Point2));
  EXPECT_GE(st.cache_hits, 1u);
}

// Deterministic commit rounds: every cached read must match the
// brute-force oracle right after each commit, and repeats must hit.
TEST_F(ParallelKnnTest, CacheUnderCommitsMatchesOracle) {
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  SpatialService<SpacZTree2> svc(cfg);
  BruteForceIndex<std::int64_t, 2> oracle;

  const Box2 box{{{kMax / 4, kMax / 4}}, {{3 * kMax / 4, 3 * kMax / 4}}};
  const Point2 q{{kMax / 2, kMax / 2}};
  const double radius = kMax / 8.0;

  for (int round = 0; round < 6; ++round) {
    const auto batch =
        datagen::uniform<2>(500, 300 + static_cast<std::uint64_t>(round),
                            kMax);
    auto futs = svc.submit_insert_batch(batch);
    oracle.batch_insert(batch);
    svc.flush();
    for (auto& f : futs) f.get();

    const auto lst = svc.range_list_cached(box);
    testutil::expect_same_multiset(*lst, oracle.range_list(box));
    EXPECT_EQ(svc.range_count_cached(box), oracle.range_count(box));
    const auto knn = svc.knn_cached(q, 10);
    testutil::expect_knn_equivalent(*knn, q, oracle.knn_distances(q, 10));
    const auto ball = svc.ball_list_cached(q, radius);
    testutil::expect_same_multiset(*ball, oracle.ball_list(q, radius));

    // Unchanged contents: immediate repeats share the entry.
    EXPECT_EQ(svc.range_list_cached(box).get(), lst.get());
    EXPECT_EQ(svc.knn_cached(q, 10).get(), knn.get());
  }
  const auto st = svc.stats();
  EXPECT_GE(st.cache_hits, 12u);   // 2 per round
  EXPECT_GE(st.cache_misses, 18u); // 3+ fresh entries per round
}

// Cached reads racing a committing writer: results must always be
// internally consistent (subset of the query region, ranked kNN) even
// though entries are filled and invalidated concurrently.
TEST_F(ParallelKnnTest, CachedReadsRaceCommits) {
  Scheduler::set_num_workers(2);
  ServiceConfig cfg;
  cfg.initial_shards = 4;
  cfg.commit_interval_ms = 1;
  SpatialService<SpacZTree2> svc(cfg);
  svc.build(dataset("uniform", 4000, 21));
  svc.start();

  std::atomic<bool> stop{false};
  const Box2 box{{{kMax / 4, kMax / 4}}, {{3 * kMax / 4, 3 * kMax / 4}}};
  const Point2 q{{kMax / 2, kMax / 2}};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto lst = svc.range_list_cached(box);
      for (const auto& p : *lst) ASSERT_TRUE(box.contains(p));
      const auto knn = svc.knn_cached(q, 8);
      ASSERT_LE(knn->size(), 8u);
      double last = 0;
      for (const auto& p : *knn) {
        const double d = squared_distance(p, q);
        ASSERT_GE(d, last);
        last = d;
      }
    }
  });
  for (int round = 0; round < 20; ++round) {
    auto futs = svc.submit_insert_batch(
        datagen::uniform<2>(200, 900 + static_cast<std::uint64_t>(round),
                            kMax));
    for (auto& f : futs) f.get();
  }
  stop.store(true);
  reader.join();
  svc.stop();
  EXPECT_EQ(svc.size(), 4000u + 20u * 200u);
}

}  // namespace
