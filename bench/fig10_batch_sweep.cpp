// Figure 10 reproduction: single batch insertion/deletion time vs batch
// size, on a pre-built tree. The paper sweeps batches of 10^5..10^9 points
// into a 10^9-point tree; we sweep 0.1%..100% of n. Expected shape: all
// indexes scale roughly linearly in batch size; SPaC-H fastest except
// uniform deletes (P-Orth); Pkd degrades on skewed data (large rebuilds).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(200'000);
  std::printf("Fig 10: single batch update vs batch size, base tree n=%zu\n", n);
  const std::vector<double> fractions = {0.001, 0.01, 0.1, 1.0};

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);

    std::printf("\n=== Fig 10 | %s ===\n", workload.c_str());
    std::printf("%-9s %-7s", "index", "op");
    for (double f : fractions) {
      std::printf("  b=%-8zu", static_cast<std::size_t>(f * n));
    }
    std::printf(" (seconds)\n");

    for_each_parallel_index_2d([&](const char* name, auto factory) {
      std::vector<double> ins_s, del_s;
      for (double f : fractions) {
        const auto b = static_cast<std::size_t>(f * n);
        // Batch points drawn from the same distribution (fresh seed).
        auto batch = make_workload_2d(workload, b, 7);
        auto index = factory();
        index.build(pts);
        Timer t;
        index.batch_insert(batch);
        ins_s.push_back(t.seconds());
        // Delete an equal number of existing points.
        std::vector<Point2> dels(pts.begin(),
                                 pts.begin() + static_cast<std::ptrdiff_t>(b));
        t.reset();
        index.batch_delete(dels);
        del_s.push_back(t.seconds());
      }
      std::printf("%-9s %-7s", name, "insert");
      for (double x : ins_s) std::printf(" %10.4f", x);
      std::printf("\n%-9s %-7s", name, "delete");
      for (double x : del_s) std::printf(" %10.4f", x);
      std::printf("\n");
    });
  }
  return 0;
}
