// Fig 11 (extension, not in the paper): psi::service throughput.
//
// Measures SpatialService end-to-end ops/sec as a function of shard count K
// and read/write mix, over an OSM-like base dataset. Client threads submit
// updates through the queue (background group committer enabled) and run
// queries through snapshots — the production read path.
//
// Backend selection (registry-driven):
//   ./fig11_service_throughput                  # templated SPaC-Z fast path
//   ./fig11_service_throughput --backend pkd    # any BackendRegistry name,
//                                               # via the AnyIndex service
//   ./fig11_service_throughput --backend mixed  # heterogeneous: SPaC-Z hot
//                                               # shards + log cold shards
//   ./fig11_service_throughput --pipeline off   # disable the two-stage
//                                               # commit pipeline (on by
//                                               # default; group_commit.h)
//   ./fig11_service_throughput --wal on         # arm the write-ahead log
//                                               # (fsync'd commit records in
//                                               # a temp dir) for every cell
// (PSI_BENCH_BACKEND env is an alternative to the --backend flag.)
//
// The default wal-off run appends one wal-on row (read%=50, default
// backend) so the fsync-before-publish cost is always measured alongside;
// the regression gate keys on the "durability" JSON field and never
// compares across modes.
//
// Output: a fixed-width table for humans plus one JSON line per cell
// (prefix "BENCH_JSON ") in the flat shape of ServiceStats::json(), so
// BENCH_*.json trajectories can track service throughput across PRs:
//
//   BENCH_JSON {"bench":"fig11_service_throughput","backend":"SPaC-Z",
//               "shards":8,"read_pct":90,"clients":4,"n":...,"ops":...,
//               "seconds":...,"ops_per_sec":...,"stats":{...}}
//
// Knobs: PSI_BENCH_N (base points), PSI_BENCH_Q (ops per cell),
// PSI_BENCH_CLIENTS (client threads), PSI_NUM_WORKERS (scheduler).
// PSI_TRACE_FILE=<path> turns on pipeline tracing and dumps a Chrome-trace
// JSON of the whole run (commit stages, query fan-out) on exit.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "psi/telemetry/trace.h"

namespace {

using namespace psi;
using namespace psi::bench;
using namespace psi::service;

int bench_clients(int fallback) {
  if (const char* s = std::getenv("PSI_BENCH_CLIENTS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

struct Cell {
  std::size_t shards;
  int read_pct;
  std::size_t ops;
  double seconds;
  ServiceStats stats;

  double ops_per_sec() const { return seconds > 0 ? static_cast<double>(ops) / seconds : 0; }
};

// One client's slice of a mixed workload: `read_pct`% snapshot queries
// (alternating 10-NN and range_count), the rest queued inserts/deletes
// (2:1). Updates go through futures; the last batch is awaited so the cell
// measures committed work, not queue depth.
template <typename Service>
void run_client(Service& svc, int id, std::size_t ops, int read_pct,
                const std::vector<Point2>& fresh,
                std::atomic<std::uint64_t>& sink) {
  Rng rng(static_cast<std::uint64_t>(id) * 7919 + 13);
  std::vector<std::future<Result<std::int64_t, 2>>> futs;
  futs.reserve(ops);
  std::uint64_t local = 0;
  std::size_t next_fresh = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const bool read =
        static_cast<int>(rng.ith_bounded(2 * i, 100)) < read_pct;
    if (read) {
      auto snap = svc.snapshot();
      Point2 q{{static_cast<std::int64_t>(rng.ith_bounded(4 * i, kMax2)),
                static_cast<std::int64_t>(rng.ith_bounded(4 * i + 1, kMax2))}};
      if (i % 2 == 0) {
        local += snap.knn(q, 10).size();
      } else {
        Box2 b;
        const std::int64_t half = kMax2 / 100;
        for (int d = 0; d < 2; ++d) {
          b.lo[d] = std::max<std::int64_t>(0, q[d] - half);
          b.hi[d] = std::min<std::int64_t>(kMax2, q[d] + half);
        }
        local += snap.range_count(b);
      }
    } else {
      const Point2& p = fresh[next_fresh++ % fresh.size()];
      if (next_fresh % 3 == 0) {
        futs.push_back(svc.submit_delete(p));
      } else {
        futs.push_back(svc.submit_insert(p));
      }
    }
  }
  for (auto& f : futs) local += f.get().epoch != 0 ? 1 : 0;
  sink.fetch_add(local, std::memory_order_relaxed);
}

template <typename Service, typename MakeService>
Cell run_cell(MakeService&& make_service, std::size_t shards, int read_pct,
              std::size_t n, std::size_t ops_per_client, int clients,
              const std::vector<Point2>& base, bool pipeline,
              const std::string& wal_dir = {}) {
  ServiceConfig cfg;
  cfg.initial_shards = shards;
  // Keep the topology fixed so the cell isolates shard-count scaling.
  cfg.split_threshold = n * 8;
  cfg.merge_threshold = 1;
  cfg.pipelined_commits = pipeline;
  if (!wal_dir.empty()) {
    std::filesystem::remove_all(wal_dir);
    cfg.durability.enabled = true;
    cfg.durability.dir = wal_dir;
  }
  Service svc = make_service(cfg);
  svc.build(base);
  svc.start();

  // Per-client fresh points (disjoint from base and each other).
  std::vector<std::vector<Point2>> fresh(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    fresh[static_cast<std::size_t>(c)] = datagen::uniform<2>(
        ops_per_client, 0xf00d + static_cast<std::uint64_t>(c), kMax2);
  }

  std::atomic<std::uint64_t> sink{0};
  Timer t;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(svc, c, ops_per_client, read_pct,
                 fresh[static_cast<std::size_t>(c)], sink);
    });
  }
  for (auto& th : threads) th.join();
  svc.flush();
  const double secs = t.seconds();
  svc.stop();

  Cell cell;
  cell.shards = shards;
  cell.read_pct = read_pct;
  cell.ops = ops_per_client * static_cast<std::size_t>(clients);
  cell.seconds = secs;
  cell.stats = svc.stats();
  if (sink.load() == 0) std::printf("(unexpected zero sink)\n");
  return cell;
}

std::string backend_choice(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0) return argv[i + 1];
  }
  if (const char* s = std::getenv("PSI_BENCH_BACKEND")) return s;
  return "";
}

bool pipeline_choice(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--pipeline") == 0) {
      return std::strcmp(argv[i + 1], "off") != 0;
    }
  }
  return true;  // group_commit.h default
}

bool wal_choice(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--wal") == 0) {
      return std::strcmp(argv[i + 1], "on") == 0;
    }
  }
  return false;  // durability is opt-in, same as the service default
}

std::string wal_dir_for(std::size_t shards, int read_pct) {
  return (std::filesystem::temp_directory_path() /
          ("psi_fig11_wal_k" + std::to_string(shards) + "_r" +
           std::to_string(read_pct)))
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench_n(200000);
  const std::size_t ops = bench_queries(20000);
  const int clients = bench_clients(4);
  const std::string backend = backend_choice(argc, argv);
  const bool pipeline = pipeline_choice(argc, argv);
  const bool wal = wal_choice(argc, argv);
  const char* trace_file = std::getenv("PSI_TRACE_FILE");
  if (psi::telemetry::kEnabled && trace_file != nullptr) {
    psi::telemetry::Tracer::instance().set_enabled(true);
  }
  const auto base = psi::datagen::osm_sim(n, 1);

  // Default: the fully templated SPaC-Z fast path (zero virtual dispatch).
  // --backend <name>: that registry backend on every shard, through the
  // AnyIndex service. --backend mixed: heterogeneous hot/cold split —
  // SPaC-Z on the first half of the initial shards (low curve ranges,
  // where osm_sim concentrates), the log-structured baseline on the rest.
  const std::string label = backend.empty() ? "SPaC-Z" : backend;
  std::printf("Fig 11: service throughput — %s backend, %zu base points, "
              "%d clients, %zu ops/client, %d scheduler workers, "
              "pipeline %s, wal %s\n",
              label.c_str(), n, clients, ops, psi::num_workers(),
              pipeline ? "on" : "off", wal ? "on" : "off");
  std::printf("(shard-count scaling comes from the per-shard parallel apply "
              "and per-query fan-out;\n expect K>1 gains only with multiple "
              "scheduler workers / cores)\n");
  Table table({"read%", "K=1", "K=2", "K=4", "K=8"});
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  const auto emit_cell = [&](const Cell& cell, bool wal_on) {
    std::printf("BENCH_JSON {\"bench\":\"fig11_service_throughput\","
                "\"backend\":\"%s\",\"pipeline\":%s,\"durability\":\"%s\","
                "\"shards\":%zu,\"read_pct\":%d,"
                "\"clients\":%d,\"workers\":%d,\"n\":%zu,\"ops\":%zu,"
                "\"seconds\":%.4f,\"ops_per_sec\":%.1f,\"stats\":%s}\n",
                label.c_str(), pipeline ? "true" : "false",
                wal_on ? "wal" : "off", cell.shards, cell.read_pct, clients,
                psi::num_workers(), n, cell.ops, cell.seconds,
                cell.ops_per_sec(), cell.stats.json().c_str());
  };

  for (int read_pct : {90, 50, 10}) {
    std::vector<std::string> row{std::to_string(read_pct)};
    for (std::size_t k : shard_counts) {
      const std::string wal_dir =
          wal ? wal_dir_for(k, read_pct) : std::string{};
      Cell cell;
      if (backend.empty()) {
        cell = run_cell<SpatialService<SpacZTree2>>(
            [](const ServiceConfig& cfg) {
              return SpatialService<SpacZTree2>(cfg);
            },
            k, read_pct, n, ops, clients, base, pipeline, wal_dir);
      } else if (backend == "mixed") {
        cell = run_cell<SpatialService<api::AnyIndex2>>(
            [k](const ServiceConfig& cfg) {
              const std::size_t hot = std::max<std::size_t>(1, k / 2);
              return SpatialService<api::AnyIndex2>(
                  cfg, [hot](std::size_t shard_id) {
                    auto& reg = api::BackendRegistry2::instance();
                    return shard_id < hot ? reg.make("spac-z")
                                          : reg.make("log");
                  });
            },
            k, read_pct, n, ops, clients, base, pipeline, wal_dir);
      } else {
        cell = run_cell<SpatialService<api::AnyIndex2>>(
            [&backend](const ServiceConfig& cfg) {
              return SpatialService<api::AnyIndex2>(
                  cfg, [&backend](std::size_t) {
                    return api::BackendRegistry2::instance().make(backend);
                  });
            },
            k, read_pct, n, ops, clients, base, pipeline, wal_dir);
      }
      row.push_back(Table::fmt(cell.ops_per_sec()));
      emit_cell(cell, wal);
      if (!wal_dir.empty()) std::filesystem::remove_all(wal_dir);
    }
    table.row(row);
  }
  if (!wal && backend.empty()) {
    // One durable row rides along with the default run: same mixed
    // workload at read%=50 across the shard counts, WAL armed, so the
    // fsync-before-publish cost is always measured next to the wal-off
    // numbers (the gate keys on "durability" and never compares across).
    std::vector<std::string> row{"50+wal"};
    for (std::size_t k : shard_counts) {
      const std::string wal_dir = wal_dir_for(k, 50);
      const Cell cell = run_cell<SpatialService<SpacZTree2>>(
          [](const ServiceConfig& cfg) {
            return SpatialService<SpacZTree2>(cfg);
          },
          k, 50, n, ops, clients, base, pipeline, wal_dir);
      row.push_back(Table::fmt(cell.ops_per_sec()));
      emit_cell(cell, /*wal_on=*/true);
      std::filesystem::remove_all(wal_dir);
    }
    table.row(row);
  }
  if (psi::telemetry::kEnabled && trace_file != nullptr) {
    auto& tracer = psi::telemetry::Tracer::instance();
    if (tracer.write_chrome_trace(trace_file)) {
      std::printf("trace: %zu events -> %s\n", tracer.event_count(),
                  trace_file);
    } else {
      std::printf("trace: could not open %s\n", trace_file);
    }
  }
  return 0;
}
