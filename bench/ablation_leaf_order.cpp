// Ablation B (paper Sec 4.2, the CPAM columns of Fig 3): relaxed leaf order
// (SPaC) vs total leaf order (CPAM) across incremental update batch sizes,
// plus the query cost after the updates — isolating exactly the claimed
// trade: relaxing the order speeds up updates "without sacrificing query
// performance".

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(300);
  std::printf(
      "Ablation B: relaxed (SPaC) vs total (CPAM) leaf order, Hilbert curve, "
      "n=%zu\n",
      n);
  const std::vector<double> ratios = {0.01, 0.001, 0.0001};

  for (const std::string workload : {"Uniform", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    const std::int64_t side =
        side_for_output<2>(n, std::max<std::size_t>(10, n / 100), kMax2);
    auto queries = make_queries(pts, q, q / 4 + 1, side, kMax2, 2);

    std::printf("\n=== Ablation B | %s ===\n", workload.c_str());
    std::printf("%-9s %-9s %10s %10s %10s %10s %12s\n", "order", "ratio",
                "ins(s)", "del(s)", "knn(s)", "range(s)", "unsortedLf");

    for (const bool relaxed_mode : {true, false}) {
      SpacParams params = relaxed_mode ? SpacParams{} : cpam_params();
      for (double ratio : ratios) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        SpacHTree2 index(params);
        const double ins = incremental_insert(
            index, pts, batch, (const QuerySet<Point2>*)nullptr, nullptr);
        const double frac = index.unsorted_leaf_fraction();
        QueryTimes qt = run_queries(index, queries);
        SpacHTree2 index2(params);
        index2.build(pts);
        const double del = incremental_delete(
            index2, pts, batch, (const QuerySet<Point2>*)nullptr, nullptr);
        std::printf("%-9s %-9.4f %10.4f %10.4f %10.4f %10.4f %11.1f%%\n",
                    relaxed_mode ? "relaxed" : "total", ratio, ins, del,
                    qt.knn_ind, qt.range_list, 100.0 * frac);
      }
    }
  }
  std::printf(
      "\nExpected: relaxed strictly faster on updates, query columns within "
      "noise of total order (paper: 'almost no negative impact on queries').\n");
  return 0;
}
