// Fig 13 (extension, not in the paper): parallel kNN over one snapshot.
//
// Sweeps scheduler workers over k-NN queries against a pinned Snapshot of
// a sharded SpatialService, comparing the sequential nearest-shard-first
// path (Snapshot::knn_visit_seq) with the parallel engine
// (Snapshot::knn_visit_par: TaskGroup shard fan-out + native kNN subtree
// forking, all seeded by one shared api::ConcurrentKnnBuffer radius
// bound). Every cell first verifies par/seq equivalence on ranked
// distances (the `matches` field), then times both modes — this is the
// kNN half of the read pipeline; fig12 covers range/ball.
//
// Output: a table plus one JSON line per cell:
//   BENCH_JSON {"bench":"fig13_knn_parallel","workload":"Uniform",
//               "op":"knn","k":10,"mode":"par","workers":2,"shards":4,
//               "queries":..,"hits":..,"matches":true,"seconds":..,
//               "qps":..}
//
// Knobs: PSI_BENCH_N (base points), PSI_BENCH_Q (queries per cell),
// PSI_MAX_THREADS (top of the worker sweep), PSI_GRAIN (fork grain).
// On a 1-core container the sweep still exercises the parallel code paths
// (oversubscribed threads); speedups need real cores.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;
using namespace psi::service;

namespace {

struct Cell {
  std::size_t queries = 0;
  std::size_t hits = 0;
  bool matches = true;
  double seconds = 0;
  double qps() const {
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  }
};

void emit(const std::string& workload, std::size_t k, const char* mode,
          int workers, std::size_t shards, const Cell& c) {
  std::printf("BENCH_JSON {\"bench\":\"fig13_knn_parallel\","
              "\"workload\":\"%s\",\"op\":\"knn\",\"k\":%zu,\"mode\":\"%s\","
              "\"workers\":%d,\"shards\":%zu,\"queries\":%zu,\"hits\":%zu,"
              "\"matches\":%s,\"seconds\":%.4f,\"qps\":%.1f}\n",
              workload.c_str(), k, mode, workers, shards, c.queries, c.hits,
              c.matches ? "true" : "false", c.seconds, c.qps());
}

}  // namespace

int main() {
  const std::size_t n = bench_n(200'000);
  const std::size_t q = bench_queries(200);
  const std::size_t shards = 4;

  std::vector<int> threads;
  for (int p = 1; p <= bench_max_threads(); p *= 2) threads.push_back(p);
  if (threads.back() != bench_max_threads()) threads.push_back(bench_max_threads());

  std::printf("Fig 13: single-snapshot kNN parallelism, n=%zu, q=%zu, "
              "K=%zu, grain=%zu\n",
              n, q, shards, fork_grain());

  for (const std::string workload : {"Uniform", "Varden"}) {
    const auto base = make_workload_2d(workload, n, 1);
    const auto centres = datagen::ind_queries(base, q, 99, kMax2);

    ServiceConfig cfg;
    cfg.initial_shards = shards;
    cfg.split_threshold = n * 8;  // fixed topology isolates the read path
    cfg.merge_threshold = 1;
    SpatialService<SpacZTree2> svc(cfg);
    svc.build(base);
    auto snap = svc.snapshot();

    std::printf("\n=== Fig 13 | %s ===\n", workload.c_str());
    Table table({"k", "mode", "p=..", "qps", "matches"});
    for (int p : threads) {
      Scheduler::set_num_workers(p);
      for (std::size_t k : {std::size_t{1}, std::size_t{10},
                            std::size_t{100}}) {
        // Equivalence first (untimed): ranked distances must be identical
        // between the two paths on a prefix of the query set.
        bool matches = true;
        const std::size_t probe = std::min<std::size_t>(centres.size(), 32);
        for (std::size_t i = 0; i < probe && matches; ++i) {
          const Point2& c = centres[i];
          std::vector<double> seq, par;
          snap.knn_visit_seq(c, k, [&](const Point2& pt) {
            seq.push_back(squared_distance(pt, c));
          });
          snap.knn_visit_par(c, k, [&](const Point2& pt) {
            par.push_back(squared_distance(pt, c));
          });
          matches = seq.size() == par.size();
          for (std::size_t r = 0; matches && r < seq.size(); ++r) {
            matches = seq[r] == par[r];
          }
        }

        Cell seq_cell, par_cell;
        seq_cell.queries = par_cell.queries = centres.size();
        seq_cell.matches = par_cell.matches = matches;
        {
          Timer t;
          for (const auto& c : centres) {
            std::size_t got = 0;
            snap.knn_visit_seq(c, k, [&](const Point2&) { ++got; });
            seq_cell.hits += got;
          }
          seq_cell.seconds = t.seconds();
        }
        {
          Timer t;
          for (const auto& c : centres) {
            std::size_t got = 0;
            snap.knn_visit_par(c, k, [&](const Point2&) { ++got; });
            par_cell.hits += got;
          }
          par_cell.seconds = t.seconds();
        }
        table.row({std::to_string(k), "seq", std::to_string(p),
                   Table::fmt(seq_cell.qps()), matches ? "yes" : "NO"});
        table.row({std::to_string(k), "par", std::to_string(p),
                   Table::fmt(par_cell.qps()), matches ? "yes" : "NO"});
        emit(workload, k, "seq", p, shards, seq_cell);
        emit(workload, k, "par", p, shards, par_cell);
        if (!matches) {
          std::fprintf(stderr,
                       "fig13: par/seq kNN mismatch (%s, k=%zu, p=%d)\n",
                       workload.c_str(), k, p);
          return 1;
        }
      }
    }
    Scheduler::set_num_workers(bench_max_threads());
  }
  return 0;
}
