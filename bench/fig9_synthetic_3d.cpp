// Figure 9 reproduction: the 3D synthetic table (paper Sec E), for the
// indexes the paper reports there: P-Orth, SPaC-H, Pkd. Coordinates are
// restricted to [0, 10^6] so the Hilbert/Morton 3D precision (21 bits/dim)
// is honoured, exactly as in the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

namespace {

template <typename F>
void for_each_fig9_index(F&& f) {
  f("P-Orth", [] { return POrthTree3({}, universe3()); });
  f("SPaC-H", [] { return SpacHTree3(); });
  f("Pkd-Tree", [] { return PkdTree3(); });
}

}  // namespace

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(500);
  std::printf("Fig 9: 3D synthetic workloads, n=%zu, %d workers\n", n,
              num_workers());
  const std::vector<double> ratios = {0.10, 0.01, 0.001, 0.0001};

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_3d(workload, n, 1);
    const std::int64_t side =
        side_for_output<3>(n, std::max<std::size_t>(10, n / 100), kMax3);
    auto queries = make_queries(pts, q, q / 4 + 1, side, kMax3, 2);

    std::printf("\n=== Fig 9 | %s (3D) ===\n", workload.c_str());
    std::printf("%-9s %8s | %8s %8s %8s %8s | %8s %8s %8s %8s | %8s %8s\n",
                "index", "build", "InD", "OOD", "RgCnt", "RgList", "Ins10%",
                "Ins1%", "Ins.1%", "Ins.01%", "Del1%", "Del.1%");

    for_each_fig9_index([&](const char* name, auto factory) {
      double build_s;
      QueryTimes qt;
      {
        auto index = factory();
        Timer t;
        index.build(pts);
        build_s = t.seconds();
        qt = run_queries(index, queries);
      }
      std::vector<double> ins;
      for (double ratio : ratios) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        auto index = factory();
        ins.push_back(incremental_insert(
            index, pts, batch, (const QuerySet<Point3>*)nullptr, nullptr));
      }
      std::vector<double> del;
      for (double ratio : {0.01, 0.001}) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        auto index = factory();
        index.build(pts);
        del.push_back(incremental_delete(
            index, pts, batch, (const QuerySet<Point3>*)nullptr, nullptr));
      }
      std::printf(
          "%-9s %8.3f | %8.4f %8.4f %8.4f %8.4f | %8.3f %8.3f %8.3f %8.3f | "
          "%8.3f %8.3f\n",
          name, build_s, qt.knn_ind, qt.knn_ood, qt.range_count, qt.range_list,
          ins[0], ins[1], ins[2], ins[3], del[0], del[1]);
    });
  }
  return 0;
}
