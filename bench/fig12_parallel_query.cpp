// Fig 12 (extension, not in the paper): single-snapshot query parallelism.
//
// Sweeps scheduler workers over range and ball queries against one pinned
// Snapshot of a sharded SpatialService, comparing the sequential streaming
// path (plain sink: shard-by-shard, no forking) with the parallel engine
// (api::ConcurrentSink: TaskGroup shard fan-out + native parallel subtree
// traversal). This is the read-path half of the execution engine; fig11
// --pipeline covers the write-path half.
//
// Output: a table plus one JSON line per cell:
//   BENCH_JSON {"bench":"fig12_parallel_query","workload":"Uniform",
//               "op":"range","mode":"par","workers":2,"shards":4,
//               "queries":..,"hits":..,"seconds":..,"qps":..}
//
// Knobs: PSI_BENCH_N (base points), PSI_BENCH_Q (queries per cell),
// PSI_MAX_THREADS (top of the worker sweep), PSI_GRAIN (fork grain).
// On a 1-core container the sweep still exercises the parallel code paths
// (oversubscribed threads); speedups need real cores.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;
using namespace psi::service;

namespace {

Box2 box_around(const Point2& c, std::int64_t h) {
  Box2 b;
  for (int d = 0; d < 2; ++d) {
    b.lo[d] = std::max<std::int64_t>(0, c[d] - h);
    b.hi[d] = std::min<std::int64_t>(kMax2, c[d] + h);
  }
  return b;
}

struct Cell {
  std::size_t queries = 0;
  std::size_t hits = 0;
  double seconds = 0;
  double qps() const {
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  }
};

void emit(const std::string& workload, const char* op, const char* mode,
          int workers, std::size_t shards, const Cell& c) {
  std::printf("BENCH_JSON {\"bench\":\"fig12_parallel_query\","
              "\"workload\":\"%s\",\"op\":\"%s\",\"mode\":\"%s\","
              "\"workers\":%d,\"shards\":%zu,\"queries\":%zu,\"hits\":%zu,"
              "\"seconds\":%.4f,\"qps\":%.1f}\n",
              workload.c_str(), op, mode, workers, shards, c.queries, c.hits,
              c.seconds, c.qps());
}

}  // namespace

int main() {
  const std::size_t n = bench_n(200'000);
  const std::size_t q = bench_queries(200);
  const std::size_t shards = 4;
  // Boxes sized for a meaty result (~2% of the data) so the traversal, not
  // the fixed per-query overhead, is what the sweep measures.
  const std::int64_t half = side_for_output<2>(n, n / 50, kMax2) / 2;
  const double radius = static_cast<double>(half);

  std::vector<int> threads;
  for (int p = 1; p <= bench_max_threads(); p *= 2) threads.push_back(p);
  if (threads.back() != bench_max_threads()) threads.push_back(bench_max_threads());

  std::printf("Fig 12: single-snapshot query parallelism, n=%zu, q=%zu, "
              "K=%zu, grain=%zu\n",
              n, q, shards, fork_grain());

  for (const std::string workload : {"Uniform", "Varden"}) {
    const auto base = make_workload_2d(workload, n, 1);
    const auto centres = datagen::ind_queries(base, q, 99, kMax2);

    ServiceConfig cfg;
    cfg.initial_shards = shards;
    cfg.split_threshold = n * 8;  // fixed topology isolates the read path
    cfg.merge_threshold = 1;
    SpatialService<SpacZTree2> svc(cfg);
    svc.build(base);
    auto snap = svc.snapshot();

    std::printf("\n=== Fig 12 | %s ===\n", workload.c_str());
    Table table({"op", "mode", "p=..", "qps"});
    for (int p : threads) {
      Scheduler::set_num_workers(p);
      for (const bool par : {false, true}) {
        Cell range_cell, ball_cell;
        range_cell.queries = ball_cell.queries = centres.size();
        {
          Timer t;
          for (const auto& c : centres) {
            const Box2 box = box_around(c, half);
            if (par) {
              api::ConcurrentSink<std::int64_t, 2> sink;
              snap.range_visit(box, sink);
              range_cell.hits += sink.count();
            } else {
              std::size_t got = 0;
              snap.range_visit(box, [&](const Point2&) { ++got; });
              range_cell.hits += got;
            }
          }
          range_cell.seconds = t.seconds();
        }
        {
          Timer t;
          for (const auto& c : centres) {
            if (par) {
              api::ConcurrentSink<std::int64_t, 2> sink;
              snap.ball_visit(c, radius, sink);
              ball_cell.hits += sink.count();
            } else {
              std::size_t got = 0;
              snap.ball_visit(c, radius, [&](const Point2&) { ++got; });
              ball_cell.hits += got;
            }
          }
          ball_cell.seconds = t.seconds();
        }
        const char* mode = par ? "par" : "seq";
        table.row({"range", mode, std::to_string(p),
                   Table::fmt(range_cell.qps())});
        table.row({"ball", mode, std::to_string(p),
                   Table::fmt(ball_cell.qps())});
        emit(workload, "range", mode, p, shards, range_cell);
        emit(workload, "ball", mode, p, shards, ball_cell);
      }
    }
    Scheduler::set_num_workers(bench_max_threads());
  }
  return 0;
}
