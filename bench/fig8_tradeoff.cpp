// Figure 8 reproduction: the update-vs-query tradeoff scatter. For each
// workload and each index we compute the geometric mean of the update
// operations (build + incremental insert/delete across batch ratios) and
// of the query operations (kNN InD/OOD + range count/list after build and
// after updates), as the paper derives Fig 8 from the Fig 3 numbers. The
// two geomeans are printed as (update, query) coordinates; lower-left is
// better.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(300);
  std::printf("Fig 8: query/update tradeoff (geomeans), n=%zu, %d workers\n", n,
              num_workers());

  const std::vector<double> ratios = {0.10, 0.01, 0.001};
  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    std::vector<Point2> half(pts.begin(),
                             pts.begin() + static_cast<std::ptrdiff_t>(n / 2));
    const std::int64_t side =
        side_for_output<2>(n, std::max<std::size_t>(10, n / 100), kMax2);
    auto queries = make_queries(half, q, q / 4 + 1, side, kMax2, 2);

    std::printf("\n=== Fig 8 | %s ===\n", workload.c_str());
    std::printf("%-9s %14s %14s\n", "index", "update-geomean",
                "query-geomean");

    // The Fig 8 scatter also includes the Log-tree and BHL-tree estimates;
    // here they are measured (see psi/baselines/log_structured.h).
    auto all_indexes = [&](auto&& f) {
      for_each_parallel_index_2d(f);
      f("Log-Tree", [] { return LogTree2(); });
      f("BHL-Tree", [] { return BhlTree2(); });
    };
    all_indexes([&](const char* name, auto factory) {
      // The rebuild-based baselines are quadratic-ish across many small
      // batches; cap their smallest ratio so the bench stays tractable
      // (their position in the scatter is unaffected: updates only get
      // *worse* at smaller ratios).
      const bool rebuild_based = std::string(name) == "Log-Tree" ||
                                 std::string(name) == "BHL-Tree";
      const std::vector<double> ratios_used =
          rebuild_based ? std::vector<double>{0.10, 0.01} : ratios;
      std::vector<double> updates, queries_s;
      {
        auto index = factory();
        Timer t;
        index.build(pts);
        updates.push_back(t.seconds());
      }
      {
        auto index = factory();
        index.build(half);
        QueryTimes qt = run_queries(index, queries);
        queries_s.insert(queries_s.end(),
                         {qt.knn_ind, qt.knn_ood, qt.range_count, qt.range_list});
      }
      for (double ratio : ratios_used) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        auto index = factory();
        QueryTimes mid;
        const bool last = ratio == ratios_used.back();
        updates.push_back(incremental_insert(index, pts, batch,
                                             last ? &queries : nullptr,
                                             last ? &mid : nullptr));
        if (last) {
          queries_s.insert(queries_s.end(), {mid.knn_ind, mid.knn_ood,
                                             mid.range_count, mid.range_list});
        }
        QueryTimes mid_del;
        updates.push_back(incremental_delete(index, pts, batch,
                                             last ? &queries : nullptr,
                                             last ? &mid_del : nullptr));
        if (last) {
          queries_s.insert(queries_s.end(),
                           {mid_del.knn_ind, mid_del.knn_ood,
                            mid_del.range_count, mid_del.range_list});
        }
      }
      std::printf("%-9s %14.4f %14.4f\n", name, geomean(updates),
                  geomean(queries_s));
    });
  }
  std::printf(
      "\nExpected shape (paper Fig 8): SPaC-Z/SPaC-H lowest on updates;\n"
      "P-Orth lowest on queries for Uniform/Sweepline, Pkd for Varden InD;\n"
      "CPAM-H/CPAM-Z dominated by SPaC on both axes.\n");
  return 0;
}
