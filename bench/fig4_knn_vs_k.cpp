// Figure 4 reproduction: k-NN query time vs k ∈ {1, 10, 100}, for InD and
// OOD query sets, on a tree built by incremental insertion (so index
// quality reflects the dynamic setting, as in the paper). Workloads:
// Uniform, Sweepline, Varden (2D).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(1000);
  // Paper: tree constructed by incremental insertion with batch ratio 0.01%;
  // scaled here to keep the bench fast: ratio 0.1%.
  const std::size_t batch = std::max<std::size_t>(1, n / 1000);
  std::printf("Fig 4: 10-NN time vs k, n=%zu (incremental build, batch %zu), "
              "%zu queries, %d workers\n",
              n, batch, q, num_workers());

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    auto ind = datagen::ind_queries(pts, q, 3, kMax2);
    auto ood = datagen::ood_queries<2>(q, 3, kMax2);

    std::printf("\n=== Fig 4 | %s ===\n", workload.c_str());
    std::printf("%-9s", "index");
    for (const char* kind : {"InD", "OOD"}) {
      for (int k : {1, 10, 100}) std::printf(" %6s-k%-3d", kind, k);
    }
    std::printf("\n");

    for_each_parallel_index_2d([&](const char* name, auto factory) {
      auto index = factory();
      incremental_insert(index, pts, batch, (QuerySet<Point2>*)nullptr,
                         nullptr);
      std::printf("%-9s", name);
      for (const auto* qs : {&ind, &ood}) {
        for (std::size_t k : {1u, 10u, 100u}) {
          Timer t;
          std::vector<std::size_t> acc(qs->size());
          // Count-only path: the timing no longer includes materialising
          // (reserve + copy) a k-point vector per query just to drop it.
          parallel_for(
              0, qs->size(),
              [&](std::size_t i) {
                acc[i] = api::knn_count(index, (*qs)[i], k);
              },
              1);
          std::printf(" %10.4f", t.seconds());
        }
      }
      std::printf("\n");
    });

    // Boost-R for reference (sequential build by repeated insertion).
    {
      RTree2 index;
      for (const auto& p : pts) index.insert(p);
      std::printf("%-9s", "Boost-R");
      for (const auto* qs : {&ind, &ood}) {
        for (std::size_t k : {1u, 10u, 100u}) {
          Timer t;
          for (const auto& p : *qs) {
            volatile auto s = api::knn_count(index, p, k);
            (void)s;
          }
          std::printf(" %10.4f", t.seconds());
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
