// Fig 15 (extension, not in the paper): relocatable-arena shard handoff.
//
// Measures the three places a shard's structure crosses a boundary —
// migration between hosts, checkpoint to disk, and restart from disk —
// with the arena fast path on ("arena": one CRC-framed chunk image,
// validate + memcpy to adopt) and off ("points": flatten on the source,
// per-point codec on the wire/disk, full rebuild on the destination).
// Same backend (SpacZTree2) both ways; DistributedConfig::arena_handoff
// is the only difference, so the delta is purely the handoff
// representation.
//
// Cells keep the whole dataset in ONE shard (the paper-relevant shape is
// a big shard changing hands, not many small ones), default 1M points:
//
//   * migrate    — ping-pong the shard between two hosts over loopback;
//                  qps = migrations/second.
//   * checkpoint — full-snapshot passes on a durable deployment;
//                  qps = checkpoints/second.
//   * restart    — cold recover_from_disk() on a fresh facade;
//                  qps = restarts/second.
//
// Every cell cross-checks the surviving contents against the input
// multiset AND the arena cells against the point-wise cells ("matches" in
// the JSON) — a disagreement exits 1, so the perf gate doubles as an
// equivalence check on the raw-image paths.
//
// Output: one JSON line per cell:
//   BENCH_JSON {"bench":"fig15_handoff","mode":"arena","op":"migrate",
//               "n":...,"queries":...,"hits":...,"seconds":..,"qps":..,
//               "matches":true}
//
// Knobs: PSI_BENCH_N (points; default 1'000'000), PSI_BENCH_REPEATS
// (passes per cell). On a 1-core container the numbers prove the code
// paths; the arena-vs-points ratio is the figure of interest.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;
using namespace psi::net;

namespace {

using Service = DistributedService<SpacZTree2>;

struct Cell {
  std::size_t queries = 0;  // passes measured
  std::size_t hits = 0;     // points surviving the op
  double seconds = 0;
  bool matches = true;
  double qps() const {
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  }
};

void emit(const char* mode, const char* op, std::size_t n, const Cell& c) {
  std::printf("BENCH_JSON {\"bench\":\"fig15_handoff\",\"mode\":\"%s\","
              "\"op\":\"%s\",\"n\":%zu,\"queries\":%zu,\"hits\":%zu,"
              "\"seconds\":%.4f,\"qps\":%.2f,\"matches\":%s}\n",
              mode, op, n, c.queries, c.hits, c.seconds, c.qps(),
              c.matches ? "true" : "false");
}

DistributedConfig handoff_cfg(std::size_t n, bool arena,
                              const std::string& wal_dir = {}) {
  DistributedConfig cfg;
  cfg.initial_shards = 1;  // one big shard changing hands
  cfg.split_threshold = n * 8;
  cfg.merge_threshold = 1;
  cfg.balance_nodes = false;
  cfg.arena_handoff = arena;
  if (!wal_dir.empty()) {
    cfg.durability.enabled = true;
    cfg.durability.dir = wal_dir;
    cfg.durability.fsync = false;  // measure the encode, not the media
  }
  return cfg;
}

std::string dir_root() {
  return (std::filesystem::temp_directory_path() / "psi_fig15_handoff")
      .string();
}

bool same_multiset(std::vector<Point2> a, std::vector<Point2> b) {
  if (a.size() != b.size()) return false;
  auto lt = [](const Point2& x, const Point2& y) {
    return x[0] != y[0] ? x[0] < y[0] : x[1] < y[1];
  };
  std::sort(a.begin(), a.end(), lt);
  std::sort(b.begin(), b.end(), lt);
  return a == b;
}

std::map<std::string, Cell> run_mode(bool arena, const std::vector<Point2>& pts,
                                     std::size_t repeats) {
  std::map<std::string, Cell> cells;
  const std::string dir = dir_root() + (arena ? "/arena" : "/points");
  std::filesystem::remove_all(dir);

  {
    // Migration: non-durable so migrate() times the fetch+install handoff
    // alone, with no topology-change checkpoint riding on it.
    LoopbackTransport fabric;
    Service svc(fabric, 2, handoff_cfg(pts.size(), arena));
    svc.build(pts);
    Cell c;
    c.queries = 2 * repeats;
    Timer t;
    for (std::size_t r = 0; r < repeats; ++r) {
      svc.migrate(0, 2);
      svc.migrate(0, 1);
    }
    c.seconds = t.seconds();
    c.hits = svc.size();
    c.matches = same_multiset(svc.flatten(), pts);
    cells["migrate"] = c;
  }
  {
    // Checkpoint: durable deployment; build() writes the first snapshot,
    // then each measured pass rewrites every shard file.
    LoopbackTransport fabric;
    Service svc(fabric, 2, handoff_cfg(pts.size(), arena, dir));
    svc.build(pts);
    Cell c;
    c.queries = repeats;
    Timer t;
    for (std::size_t r = 0; r < repeats; ++r) svc.checkpoint_all();
    c.seconds = t.seconds();
    c.hits = svc.size();
    c.matches = same_multiset(svc.flatten(), pts);
    cells["checkpoint"] = c;
  }  // facade destroyed; the snapshot stays on disk for the restart cell
  {
    Cell c;
    c.queries = repeats;
    Timer t;
    for (std::size_t r = 0; r < repeats; ++r) {
      LoopbackTransport fabric;
      Service svc(fabric, 2, handoff_cfg(pts.size(), arena, dir));
      svc.recover_from_disk();
      c.hits = svc.size();
      if (r + 1 == repeats) {
        c.matches = same_multiset(svc.flatten(), pts);
      }
    }
    c.seconds = t.seconds();
    cells["restart"] = c;
  }
  std::filesystem::remove_all(dir);
  return cells;
}

std::size_t bench_repeats(std::size_t fallback) {
  if (const char* s = std::getenv("PSI_BENCH_REPEATS")) {
    const int v = std::atoi(s);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace

int main() {
  const std::size_t n = bench_n(1'000'000);
  const std::size_t repeats = bench_repeats(3);
  const auto pts = make_workload_2d("Uniform", n, 1);

  std::printf("Fig 15: relocatable shard handoff, n=%zu, repeats=%zu, "
              "workers=%d\n",
              n, repeats, num_workers());

  auto arena_cells = run_mode(/*arena=*/true, pts, repeats);
  auto points_cells = run_mode(/*arena=*/false, pts, repeats);

  bool all_match = true;
  for (auto& [op, cell] : arena_cells) {
    // The two modes must preserve identical contents (hits) besides each
    // one independently matching the input multiset.
    cell.matches = cell.matches && cell.hits == points_cells[op].hits;
    all_match = all_match && cell.matches;
    emit("arena", op.c_str(), n, cell);
  }
  for (auto& [op, cell] : points_cells) {
    all_match = all_match && cell.matches;
    emit("points", op.c_str(), n, cell);
  }
  std::filesystem::remove_all(dir_root());

  if (!all_match) {
    std::fprintf(stderr,
                 "fig15: arena/point-wise handoff disagreement detected\n");
    return 1;
  }
  return 0;
}
