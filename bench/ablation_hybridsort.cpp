// Ablation A (paper Sec 4.1): HybridSort — fusing SFC code computation into
// the sort's first pass and sorting only ⟨code,id⟩ pairs — vs the plain
// approach that materialises ⟨code,point⟩ records in a separate pass and
// sorts them. The paper reports a consistent 3.1–3.5x construction speedup
// on 2D data for the combined techniques (together with avoiding the CPAM
// key-value transformation); the fused build must never be slower.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(400'000);
  const int reps = bench_repeats(3);
  std::printf("Ablation A: HybridSort (fused) vs precompute-then-sort, n=%zu\n",
              n);
  std::printf("%-10s %-7s %12s %12s %8s\n", "workload", "curve", "fused(s)",
              "unfused(s)", "speedup");

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    for (const bool hilbert : {true, false}) {
      SpacParams fused;
      SpacParams unfused;
      unfused.fused_build = false;
      double t_fused, t_unfused;
      if (hilbert) {
        t_fused = timed([&] { SpacHTree2 t(fused); t.build(pts); }, reps);
        t_unfused = timed([&] { SpacHTree2 t(unfused); t.build(pts); }, reps);
      } else {
        t_fused = timed([&] { SpacZTree2 t(fused); t.build(pts); }, reps);
        t_unfused = timed([&] { SpacZTree2 t(unfused); t.build(pts); }, reps);
      }
      std::printf("%-10s %-7s %12.4f %12.4f %7.2fx\n", workload.c_str(),
                  hilbert ? "Hilbert" : "Morton", t_fused, t_unfused,
                  t_unfused / t_fused);
    }
  }
  return 0;
}
