// Shared driver for the paper-reproduction benchmarks.
//
// Protocols follow paper Sec 5:
//  * build: bulk construction time.
//  * incremental insert/delete with batch ratio r: the index is built up
//    (torn down) in 1/r batch operations; total time is reported, and the
//    query block can be timed at the halfway point ("queries after 50% of
//    the batches").
//  * queries: 10-NN for in-distribution (jittered data points) and
//    out-of-distribution (uniform) query sets, plus range-count/range-list
//    with a target output size.
//
// Scales are laptop-sized by default and controlled by PSI_BENCH_N /
// PSI_BENCH_Q / PSI_BENCH_REPEATS (absolute numbers will differ from the
// paper's 112-core, 10^9-point runs; the comparisons of interest are
// relative — see EXPERIMENTS.md).

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace psi::bench {

inline constexpr std::int64_t kMax2 = datagen::kDefaultMax2D;
inline constexpr std::int64_t kMax3 = datagen::kDefaultMax3D;

inline Box2 universe2() { return Box2{{{0, 0}}, {{kMax2, kMax2}}}; }
inline Box3 universe3() { return Box3{{{0, 0, 0}}, {{kMax3, kMax3, kMax3}}}; }

// Top of a worker-count sweep: PSI_MAX_THREADS, else hardware concurrency.
inline int bench_max_threads() {
  if (const char* s = std::getenv("PSI_MAX_THREADS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// ---------------------------------------------------------------------------
// Workloads (paper Sec 5.1)
// ---------------------------------------------------------------------------

inline std::vector<Point2> make_workload_2d(const std::string& name,
                                            std::size_t n, std::uint64_t seed) {
  if (name == "Sweepline") return datagen::sweepline<2>(n, seed, kMax2);
  if (name == "Varden") return datagen::varden<2>(n, seed, kMax2);
  if (name == "OSM-sim") return datagen::osm_sim(n, seed, kMax2);
  return datagen::uniform<2>(n, seed, kMax2);
}

inline std::vector<Point3> make_workload_3d(const std::string& name,
                                            std::size_t n, std::uint64_t seed) {
  if (name == "Sweepline") return datagen::sweepline<3>(n, seed, kMax3);
  if (name == "Varden") return datagen::varden<3>(n, seed, kMax3);
  if (name == "Cosmo-sim") return datagen::cosmo_sim(n, seed, kMax3);
  return datagen::uniform<3>(n, seed, kMax3);
}

// Range side length so a box over uniform density holds ~`target` points.
template <int D>
std::int64_t side_for_output(std::size_t n, std::size_t target,
                             std::int64_t coord_max) {
  const double frac = static_cast<double>(target) / static_cast<double>(n);
  const double side =
      static_cast<double>(coord_max) * std::pow(frac, 1.0 / D);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(side));
}

// ---------------------------------------------------------------------------
// Index factories — the eight columns of Fig 3
// ---------------------------------------------------------------------------

// f(name, factory) for each parallel 2D index; `factory()` returns a fresh
// empty index. Boost-R (sequential) is dispatched separately since the
// paper reports it only for point-at-a-time updates + queries.
template <typename F>
void for_each_parallel_index_2d(F&& f) {
  f("P-Orth", [] { return POrthTree2({}, universe2()); });
  f("Zd-Tree", [] { return ZdTree2(); });
  f("SPaC-H", [] { return SpacHTree2(); });
  f("SPaC-Z", [] { return SpacZTree2(); });
  f("CPAM-H", [] { return SpacHTree2(cpam_params()); });
  f("CPAM-Z", [] { return SpacZTree2(cpam_params()); });
  f("Pkd-Tree", [] { return PkdTree2(); });
}

template <typename F>
void for_each_parallel_index_3d(F&& f) {
  f("P-Orth", [] { return POrthTree3({}, universe3()); });
  f("Zd-Tree", [] { return ZdTree3(); });
  f("SPaC-H", [] { return SpacHTree3(); });
  f("SPaC-Z", [] { return SpacZTree3(); });
  f("CPAM-H", [] { return SpacHTree3(cpam_params()); });
  f("CPAM-Z", [] { return SpacZTree3(cpam_params()); });
  f("Pkd-Tree", [] { return PkdTree3(); });
}

// ---------------------------------------------------------------------------
// Query block
// ---------------------------------------------------------------------------

template <typename PointT>
struct QuerySet {
  std::vector<PointT> ind;  // in-distribution
  std::vector<PointT> ood;  // out-of-distribution
  std::vector<Box<typename PointT::coord_t, PointT::kDim>> ranges;
  std::size_t k = 10;
};

template <typename PointT>
QuerySet<PointT> make_queries(const std::vector<PointT>& data, std::size_t q,
                              std::size_t num_ranges, std::int64_t side,
                              std::int64_t coord_max, std::uint64_t seed) {
  QuerySet<PointT> qs;
  qs.ind = datagen::ind_queries(data, q, seed, coord_max);
  qs.ood = datagen::uniform<PointT::kDim>(q, hash64(seed, 99), coord_max);
  auto anchors = datagen::ind_queries(data, num_ranges, hash64(seed, 7),
                                      coord_max);
  qs.ranges = datagen::range_boxes(anchors, side, coord_max);
  return qs;
}

struct QueryTimes {
  double knn_ind = 0, knn_ood = 0, range_count = 0, range_list = 0;
};

// Queries of one kind run "in parallel" over the query set (paper: different
// queries run in parallel), implemented with parallel_for + per-query work.
template <typename Index, typename PointT>
QueryTimes run_queries(const Index& index, const QuerySet<PointT>& qs) {
  QueryTimes out;
  volatile std::size_t sink = 0;
  {
    Timer t;
    std::vector<std::size_t> acc(qs.ind.size());
    parallel_for(0, qs.ind.size(),
                 [&](std::size_t i) { acc[i] = index.knn(qs.ind[i], qs.k).size(); },
                 1);
    out.knn_ind = t.seconds();
    for (auto a : acc) sink = sink + a;
  }
  {
    Timer t;
    std::vector<std::size_t> acc(qs.ood.size());
    parallel_for(0, qs.ood.size(),
                 [&](std::size_t i) { acc[i] = index.knn(qs.ood[i], qs.k).size(); },
                 1);
    out.knn_ood = t.seconds();
    for (auto a : acc) sink = sink + a;
  }
  {
    Timer t;
    std::vector<std::size_t> acc(qs.ranges.size());
    parallel_for(0, qs.ranges.size(),
                 [&](std::size_t i) { acc[i] = index.range_count(qs.ranges[i]); },
                 1);
    out.range_count = t.seconds();
    for (auto a : acc) sink = sink + a;
  }
  {
    Timer t;
    std::vector<std::size_t> acc(qs.ranges.size());
    parallel_for(
        0, qs.ranges.size(),
        [&](std::size_t i) { acc[i] = index.range_list(qs.ranges[i]).size(); },
        1);
    out.range_list = t.seconds();
    for (auto a : acc) sink = sink + a;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Incremental updates (paper Sec 5.1: construct/deconstruct in n/b batches)
// ---------------------------------------------------------------------------

// Incrementally inserts `pts` in batches; returns total update time. If
// `mid` is non-null, the query block is run (untimed within the update
// total) after half of the batches and stored there.
template <typename Index, typename PointT>
double incremental_insert(Index& index, const std::vector<PointT>& pts,
                          std::size_t batch, const QuerySet<PointT>* qs,
                          QueryTimes* mid) {
  double total = 0;
  const std::size_t half = pts.size() / 2;
  bool measured_mid = false;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const std::size_t hi = std::min(pts.size(), lo + batch);
    std::vector<PointT> b(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                          pts.begin() + static_cast<std::ptrdiff_t>(hi));
    Timer t;
    index.batch_insert(b);
    total += t.seconds();
    if (!measured_mid && qs != nullptr && mid != nullptr && hi >= half) {
      *mid = run_queries(index, *qs);
      measured_mid = true;
    }
  }
  return total;
}

template <typename Index, typename PointT>
double incremental_delete(Index& index, const std::vector<PointT>& pts,
                          std::size_t batch, const QuerySet<PointT>* qs,
                          QueryTimes* mid) {
  double total = 0;
  const std::size_t half = pts.size() / 2;
  bool measured_mid = false;
  for (std::size_t lo = 0; lo < pts.size(); lo += batch) {
    const std::size_t hi = std::min(pts.size(), lo + batch);
    std::vector<PointT> b(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                          pts.begin() + static_cast<std::ptrdiff_t>(hi));
    Timer t;
    index.batch_delete(b);
    total += t.seconds();
    if (!measured_mid && qs != nullptr && mid != nullptr && hi >= half) {
      *mid = run_queries(index, *qs);
      measured_mid = true;
    }
  }
  return total;
}

}  // namespace psi::bench
