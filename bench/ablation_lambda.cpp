// Ablation C (paper Sec C): P-Orth skeleton depth λ. The paper picks λ=3
// for 2D and λ=2 for 3D; this sweep shows the build/update tradeoff that
// motivates the choice (deeper skeletons = fewer rounds of data movement
// but more classification work and more buckets per round).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(400'000);
  const int reps = bench_repeats(3);
  std::printf("Ablation C: P-Orth skeleton depth lambda, n=%zu\n", n);
  std::printf("%-10s %-4s %4s %12s %12s %12s\n", "workload", "dim", "lam",
              "build(s)", "insert1%(s)", "delete1%(s)");

  for (const std::string workload : {"Uniform", "Varden"}) {
    {
      auto pts = make_workload_2d(workload, n, 1);
      auto batch = make_workload_2d(workload, n / 100, 9);
      for (int lambda : {1, 2, 3, 4}) {
        POrthParams params;
        params.skeleton_levels = lambda;
        const double build_s = timed(
            [&] {
              POrthTree2 t(params, universe2());
              t.build(pts);
            },
            reps);
        POrthTree2 t(params, universe2());
        t.build(pts);
        Timer tm;
        t.batch_insert(batch);
        const double ins_s = tm.seconds();
        tm.reset();
        t.batch_delete(batch);
        const double del_s = tm.seconds();
        std::printf("%-10s %-4d %4d %12.4f %12.4f %12.4f\n", workload.c_str(),
                    2, lambda, build_s, ins_s, del_s);
      }
    }
    {
      auto pts = make_workload_3d(workload, n, 1);
      auto batch = make_workload_3d(workload, n / 100, 9);
      for (int lambda : {1, 2, 3}) {
        POrthParams params;
        params.skeleton_levels = lambda;
        const double build_s = timed(
            [&] {
              POrthTree3 t(params, universe3());
              t.build(pts);
            },
            reps);
        POrthTree3 t(params, universe3());
        t.build(pts);
        Timer tm;
        t.batch_insert(batch);
        const double ins_s = tm.seconds();
        tm.reset();
        t.batch_delete(batch);
        const double del_s = tm.seconds();
        std::printf("%-10s %-4d %4d %12.4f %12.4f %12.4f\n", workload.c_str(),
                    3, lambda, build_s, ins_s, del_s);
      }
    }
  }
  return 0;
}
