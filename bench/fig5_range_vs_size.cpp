// Figure 5 reproduction: range-list query time vs output size, on a tree
// built by incremental insertion. The paper's observation to reproduce:
// index differences shrink as the output grows (emitting the result list
// dominates pruning effectiveness).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(200);
  const std::size_t batch = std::max<std::size_t>(1, n / 1000);
  std::printf(
      "Fig 5: range-list time vs output size, n=%zu (incremental build), "
      "%zu ranges/size, %d workers\n",
      n, q, num_workers());

  // Target outputs ~ n/10^4 .. n/10 (paper: 10^4..10^6 of 5*10^8).
  std::vector<std::size_t> targets = {std::max<std::size_t>(4, n / 10000),
                                      std::max<std::size_t>(8, n / 1000),
                                      std::max<std::size_t>(16, n / 100),
                                      std::max<std::size_t>(32, n / 10)};

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    std::printf("\n=== Fig 5 | %s ===\n", workload.c_str());
    std::printf("%-9s", "index");
    for (auto t : targets) std::printf(" out~%-7zu", t);
    std::printf("  (columns: seconds per query-set, avg output noted below)\n");

    std::vector<std::vector<Box2>> range_sets;
    auto anchors = datagen::ind_queries(pts, q, 5, kMax2);
    for (auto target : targets) {
      range_sets.push_back(datagen::range_boxes(
          anchors, side_for_output<2>(n, target, kMax2), kMax2));
    }

    for_each_parallel_index_2d([&](const char* name, auto factory) {
      auto index = factory();
      incremental_insert(index, pts, batch, (QuerySet<Point2>*)nullptr,
                         nullptr);
      std::printf("%-9s", name);
      for (const auto& ranges : range_sets) {
        Timer t;
        std::vector<std::size_t> acc(ranges.size());
        parallel_for(
            0, ranges.size(),
            [&](std::size_t i) { acc[i] = index.range_list(ranges[i]).size(); },
            1);
        std::printf(" %11.4f", t.seconds());
      }
      std::printf("\n");
    });

    // Report realised output sizes once per workload (index-independent).
    {
      PkdTree2 probe;
      probe.build(pts);
      std::printf("%-9s", "(avg out)");
      for (const auto& ranges : range_sets) {
        std::size_t total = 0;
        for (const auto& r : ranges) total += probe.range_count(r);
        std::printf(" %11zu", total / ranges.size());
      }
      std::printf("\n");
    }
  }
  return 0;
}
