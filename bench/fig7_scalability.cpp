// Figure 7 reproduction: parallel speedup of construction, single batch
// insertion (1% of n), and single batch deletion vs worker count,
// normalized to SPaC-H on 1 worker (so the chart also reflects absolute
// efficiency, as in the paper).
//
// Worker counts sweep 1,2,4,... up to PSI_MAX_THREADS (default: hardware
// concurrency). On a single-core machine this still exercises the real
// parallel code paths (the scheduler runs the forked tasks on oversubscribed
// threads); the speedup numbers are only meaningful on multicore hosts.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

int main() {
  const std::size_t n = bench_n(200'000);
  const std::size_t batch = std::max<std::size_t>(1, n / 100);
  std::vector<int> threads;
  for (int p = 1; p <= bench_max_threads(); p *= 2) threads.push_back(p);
  if (threads.back() != bench_max_threads()) threads.push_back(bench_max_threads());

  std::printf("Fig 7: scalability, n=%zu, batch=%zu (1%%)\n", n, batch);

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    std::vector<Point2> extra = make_workload_2d(workload, batch, 99);

    std::printf("\n=== Fig 7 | %s ===\n", workload.c_str());
    std::printf("%-9s %-7s", "index", "op");
    for (int p : threads) std::printf("   p=%-5d", p);
    std::printf("  (seconds; speedups are relative to SPaC-H p=1)\n");

    double spach_build_1t = 0;
    for_each_parallel_index_2d([&](const char* name, auto factory) {
      std::vector<double> build_s, ins_s, del_s;
      for (int p : threads) {
        Scheduler::set_num_workers(p);
        auto index = factory();
        Timer t;
        index.build(pts);
        build_s.push_back(t.seconds());
        t.reset();
        index.batch_insert(extra);
        ins_s.push_back(t.seconds());
        t.reset();
        index.batch_delete(extra);
        del_s.push_back(t.seconds());
      }
      if (std::string(name) == "SPaC-H") spach_build_1t = build_s[0];
      auto print_op = [&](const char* op, const std::vector<double>& xs) {
        std::printf("%-9s %-7s", name, op);
        for (double x : xs) std::printf(" %8.4f", x);
        std::printf("\n");
      };
      print_op("build", build_s);
      print_op("insert", ins_s);
      print_op("delete", del_s);
    });
    if (spach_build_1t > 0) {
      std::printf("(SPaC-H 1-worker build reference: %.4fs)\n", spach_build_1t);
    }
    Scheduler::set_num_workers(bench_max_threads());
  }
  return 0;
}
