#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_JSON lines.

The benchmarks print one machine-readable line per measured cell:

    BENCH_JSON {"bench":"fig12_parallel_query","workload":"Uniform", ...}

This script extracts those lines from one or more bench logs, keys each
cell on its identity fields (bench/workload/op/k/mode/workers), and
compares the throughput metric (`qps`) against a committed baseline.
A cell regressing by more than --threshold (default 25%) fails the gate;
cells *above* baseline never fail (runner speedups are fine and do not
auto-raise the bar). Cells whose `matches` field is false fail
unconditionally — a fast wrong answer is not a pass.

Usage:
    check_regression.py --baseline bench/baselines/ci_baseline.json \
        --log fig12.log [--log fig13.log ...] [--threshold 0.25]

Refreshing the baseline (after an intentional perf change, or to pin a
new runner class): run the same pinned commands (see
bench/baselines/README.md), then re-run with --update to overwrite the
baseline from the logs, and commit the result. Baselines are
machine-class-specific: numbers measured on one box only gate runs on
comparable hardware.
"""

import argparse
import json
import sys

MARKER = "BENCH_JSON "
# "durability" keeps wal-on cells in their own lane: a wal-on run is never
# compared against a wal-off baseline (fsync cost is not a regression).
# "stream" and "consistency" do the same for the chunked-streaming and
# pinned-epoch read variants (fig14 --stream / --consistency).
KEY_FIELDS = ("bench", "workload", "op", "k", "mode", "transport", "nodes",
              "workers", "durability", "stream", "consistency")
METRIC = "qps"


def cell_key(obj):
    parts = []
    for field in KEY_FIELDS:
        if field in obj:
            parts.append(f"{field}={obj[field]}")
    return "/".join(parts)


def parse_logs(paths):
    """Max qps per cell across all lines: the gate compares best-of-N, so
    feeding it several runs of the same bench damps shared-runner noise."""
    cells = {}
    bad = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                idx = line.find(MARKER)
                if idx < 0:
                    continue
                payload = line[idx + len(MARKER):].strip()
                try:
                    obj = json.loads(payload)
                except json.JSONDecodeError:
                    print(f"warning: unparseable BENCH_JSON line in {path}: "
                          f"{payload[:120]}", file=sys.stderr)
                    continue
                key = cell_key(obj)
                qps = float(obj.get(METRIC, 0.0))
                cells[key] = max(qps, cells.get(key, 0.0))
                if obj.get("matches") is False:
                    bad.append(key)
    return cells, bad


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--log", action="append", required=True,
                    help="bench output file (repeatable)")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (key -> qps)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional regression (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the logs and exit")
    args = ap.parse_args()

    current, bad = parse_logs(args.log)
    if not current:
        print("error: no BENCH_JSON lines found in the logs", file=sys.stderr)
        return 2

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(dict(sorted(current.items())), fh, indent=2)
            fh.write("\n")
        print(f"baseline updated: {args.baseline} ({len(current)} cells)")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(f"error: baseline {args.baseline} not found "
              f"(generate one with --update)", file=sys.stderr)
        return 2

    failures = []
    width = max(len(k) for k in sorted(set(baseline) | set(current)))
    print(f"{'cell':<{width}}  {'base qps':>12}  {'now qps':>12}  delta")
    for key in sorted(baseline):
        base = float(baseline[key])
        if key not in current:
            failures.append(f"missing cell: {key}")
            print(f"{key:<{width}}  {base:>12.1f}  {'MISSING':>12}")
            continue
        now = current[key]
        delta = (now - base) / base if base > 0 else 0.0
        flag = ""
        if base > 0 and now < base * (1.0 - args.threshold):
            failures.append(
                f"regression: {key} qps {now:.1f} < {base:.1f} "
                f"({delta:+.1%} > -{args.threshold:.0%} allowed)")
            flag = "  << FAIL"
        print(f"{key:<{width}}  {base:>12.1f}  {now:>12.1f}  "
              f"{delta:+7.1%}{flag}")
    for key in sorted(set(current) - set(baseline)):
        print(f"{key:<{width}}  {'(new)':>12}  {current[key]:>12.1f}  "
              f"(not gated; --update to adopt)")
    for key in bad:
        failures.append(f"correctness: {key} reported matches=false")

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s)", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(baseline)} cells within {args.threshold:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
