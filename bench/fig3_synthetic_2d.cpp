// Figure 3 reproduction: the main 2D synthetic-workload table.
//
// For each workload (Uniform, Sweepline, Varden) and each index, reports:
//   * Build time (full n).
//   * Queries after building with 50% of the data (static reference):
//     10-NN InD / 10-NN OOD / range-count / range-list.
//   * Incremental insertion: total time to grow the index from empty to n
//     in batches of ratio {10%, 1%, 0.1%, 0.01%} of n.
//   * Queries after 50% of the insertion batches (smallest ratio run).
//   * Incremental deletion (same ratios, from full to empty) and queries
//     after 50% of the deletion batches.
//   * Boost-R row: sequential point-at-a-time updates; only the query
//     columns are meaningful (as in the paper).
//
// Scale via PSI_BENCH_N (default 100k; paper used 10^9 on 112 cores).

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

namespace {

const std::vector<double> kRatios = {0.10, 0.01, 0.001, 0.0001};

struct Row {
  std::string name;
  double build = 0;
  QueryTimes q_build;
  std::vector<double> ins;
  QueryTimes q_ins;
  std::vector<double> del;
  QueryTimes q_del;
};

void print_rows(const std::string& workload, const std::vector<Row>& rows) {
  std::printf("\n=== Fig 3 | %s ===\n", workload.c_str());
  std::printf(
      "%-9s %8s | %8s %8s %8s %8s | %8s %8s %8s %8s | %8s %8s %8s %8s | "
      "%8s %8s %8s %8s | %8s %8s %8s %8s\n",
      "index", "build", "InD", "OOD", "RgCnt", "RgList", "Ins10%", "Ins1%",
      "Ins.1%", "Ins.01%", "InD", "OOD", "RgCnt", "RgList", "Del10%", "Del1%",
      "Del.1%", "Del.01%", "InD", "OOD", "RgCnt", "RgList");
  for (const auto& r : rows) {
    auto q = [](double v) { return v; };
    std::printf(
        "%-9s %8.3f | %8.4f %8.4f %8.4f %8.4f | %8.3f %8.3f %8.3f %8.3f | "
        "%8.4f %8.4f %8.4f %8.4f | %8.3f %8.3f %8.3f %8.3f | %8.4f %8.4f "
        "%8.4f %8.4f\n",
        r.name.c_str(), r.build, q(r.q_build.knn_ind), q(r.q_build.knn_ood),
        q(r.q_build.range_count), q(r.q_build.range_list), r.ins[0], r.ins[1],
        r.ins[2], r.ins[3], q(r.q_ins.knn_ind), q(r.q_ins.knn_ood),
        q(r.q_ins.range_count), q(r.q_ins.range_list), r.del[0], r.del[1],
        r.del[2], r.del[3], q(r.q_del.knn_ind), q(r.q_del.knn_ood),
        q(r.q_del.range_count), q(r.q_del.range_list));
  }
}

}  // namespace

int main() {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(500);
  std::printf("Fig 3: 2D synthetic workloads, n=%zu, %zu queries/kind, %d workers\n",
              n, q, num_workers());

  for (const std::string workload : {"Uniform", "Sweepline", "Varden"}) {
    auto pts = make_workload_2d(workload, n, 1);
    std::vector<Point2> half(pts.begin(),
                             pts.begin() + static_cast<std::ptrdiff_t>(n / 2));
    const std::int64_t side = side_for_output<2>(n, std::max<std::size_t>(10, n / 100), kMax2);
    auto queries = make_queries(half, q, q / 4 + 1, side, kMax2, 2);

    std::vector<Row> rows;
    for_each_parallel_index_2d([&](const char* name, auto factory) {
      Row row;
      row.name = name;
      {
        auto index = factory();
        Timer t;
        index.build(pts);
        row.build = t.seconds();
      }
      {
        auto index = factory();
        index.build(half);
        row.q_build = run_queries(index, queries);
      }
      for (double ratio : kRatios) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        auto index = factory();
        const bool last = ratio == kRatios.back();
        row.ins.push_back(incremental_insert(
            index, pts, batch, last ? &queries : nullptr,
            last ? &row.q_ins : nullptr));
      }
      for (double ratio : kRatios) {
        const auto batch =
            std::max<std::size_t>(1, static_cast<std::size_t>(ratio * n));
        auto index = factory();
        index.build(pts);
        const bool last = ratio == kRatios.back();
        row.del.push_back(incremental_delete(
            index, pts, batch, last ? &queries : nullptr,
            last ? &row.q_del : nullptr));
      }
      rows.push_back(std::move(row));
    });

    // Boost-R baseline: sequential, point updates only (paper footnote †).
    {
      Row row;
      row.name = "Boost-R";
      row.ins.assign(4, 0.0);
      row.del.assign(4, 0.0);
      RTree2 index;
      for (const auto& p : half) index.insert(p);
      row.q_ins = run_queries(index, queries);
      // Delete half of what was inserted, then query again.
      for (std::size_t i = 0; i < half.size() / 2; ++i) index.erase(half[i]);
      row.q_del = run_queries(index, queries);
      row.q_build = row.q_ins;  // static reference equals the built tree
      rows.push_back(std::move(row));
    }

    print_rows(workload, rows);
  }
  return 0;
}
