// Figure 6 reproduction: real-world datasets. The paper uses COSMO (3D
// astronomy, 317M points) and OSM Northern America (2D, 776M points); we
// substitute generator-based datasets with the same relevant structure —
// heavy 3D clustering (cosmo_sim) and multi-scale 2D clustering along
// networks (osm_sim) — per DESIGN.md §2. Reported per index: build,
// incremental insert/delete (batch ratio 0.01% in the paper; scaled to
// 0.1% here), 10-NN InD, and range-list.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;

namespace {

template <typename PointT, typename ForEach>
void run_dataset(const char* title, const std::vector<PointT>& pts,
                 std::int64_t coord_max, ForEach&& for_each_index) {
  const std::size_t n = pts.size();
  const std::size_t q = bench_queries(500);
  const std::size_t batch = std::max<std::size_t>(1, n / 1000);
  const std::int64_t side =
      side_for_output<PointT::kDim>(n, std::max<std::size_t>(10, n / 100), coord_max);
  auto queries = make_queries(pts, q, q / 4 + 1, side, coord_max, 11);

  std::printf("\n=== Fig 6 | %s (n=%zu, %dD) ===\n", title, n, PointT::kDim);
  std::printf("%-9s %8s %8s %8s %8s %8s\n", "index", "build", "insert",
              "delete", "10NN", "RgList");

  for_each_index([&](const char* name, auto factory) {
    double build_s, ins_s, del_s;
    QueryTimes qt;
    {
      auto index = factory();
      Timer t;
      index.build(pts);
      build_s = t.seconds();
      qt = run_queries(index, queries);
    }
    {
      auto index = factory();
      ins_s = incremental_insert(index, pts, batch,
                                 (const QuerySet<PointT>*)nullptr, nullptr);
      del_s = incremental_delete(index, pts, batch,
                                 (const QuerySet<PointT>*)nullptr, nullptr);
    }
    std::printf("%-9s %8.3f %8.3f %8.3f %8.4f %8.4f\n", name, build_s, ins_s,
                del_s, qt.knn_ind, qt.range_list);
  });
}

}  // namespace

int main() {
  const std::size_t n = bench_n(100'000);
  std::printf("Fig 6: real-world substitutes, %d workers\n", num_workers());

  {
    auto cosmo = datagen::dedup(datagen::cosmo_sim(n, 1));
    run_dataset("Cosmo-sim (COSMO substitute)", cosmo, kMax3,
                [](auto&& f) { for_each_parallel_index_3d(f); });
  }
  {
    auto osm = datagen::dedup(datagen::osm_sim(n, 2));
    run_dataset("OSM-sim (OSM substitute)", osm, kMax2,
                [](auto&& f) { for_each_parallel_index_2d(f); });
  }
  return 0;
}
