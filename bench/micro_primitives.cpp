// google-benchmark micro-benchmarks for the substrate primitives the index
// algorithms are built from: SFC encoding throughput, the sieve (parallel
// counting sort), sample sort / HybridSort, scan, and the fork-join
// scheduler's task overhead.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "psi/psi.h"

namespace {

using namespace psi;

void BM_MortonEncode2D(benchmark::State& state) {
  auto pts = datagen::uniform<2>(static_cast<std::size_t>(state.range(0)), 1,
                                 datagen::kDefaultMax2D);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& p : pts) acc ^= sfc::MortonCodec<std::int64_t, 2>::encode(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MortonEncode2D)->Arg(1 << 16);

void BM_HilbertEncode2D(benchmark::State& state) {
  auto pts = datagen::uniform<2>(static_cast<std::size_t>(state.range(0)), 1,
                                 datagen::kDefaultMax2D);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& p : pts) acc ^= sfc::HilbertCodec<std::int64_t, 2>::encode(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HilbertEncode2D)->Arg(1 << 16);

void BM_HilbertEncode3D(benchmark::State& state) {
  auto pts = datagen::uniform<3>(static_cast<std::size_t>(state.range(0)), 1,
                                 datagen::kDefaultMax3D);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& p : pts) acc ^= sfc::HilbertCodec<std::int64_t, 3>::encode(p);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HilbertEncode3D)->Arg(1 << 16);

void BM_Sieve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t buckets = 64;  // 2D P-Orth skeleton (λ=3)
  Rng rng(3);
  std::vector<std::uint32_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::uint32_t>(rng.ith_bounded(i, buckets));
  }
  std::vector<std::uint64_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i;
  for (auto _ : state) {
    auto copy = data;
    auto offsets = sieve(copy.data(), n, buckets,
                         [&](std::size_t i) { return keys[i]; });
    benchmark::DoNotOptimize(offsets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sieve)->Arg(1 << 18);

void BM_SampleSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::uint64_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = rng.ith(i);
  for (auto _ : state) {
    auto copy = data;
    sample_sort(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 18);

void BM_ScanExclusive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> data(n, 1);
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(scan_exclusive(copy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 20);

void BM_ForkJoinOverhead(benchmark::State& state) {
  for (auto _ : state) {
    std::size_t acc = 0;
    parallel_for(0, 10000, [&](std::size_t i) {
      benchmark::DoNotOptimize(i);
      (void)acc;
    });
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ForkJoinOverhead);

void BM_POrthBuild(benchmark::State& state) {
  auto pts = datagen::uniform<2>(static_cast<std::size_t>(state.range(0)), 1,
                                 datagen::kDefaultMax2D);
  const Box2 uni{{{0, 0}}, {{datagen::kDefaultMax2D, datagen::kDefaultMax2D}}};
  for (auto _ : state) {
    POrthTree2 t({}, uni);
    t.build(pts);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_POrthBuild)->Arg(1 << 17);

void BM_SpacHBuild(benchmark::State& state) {
  auto pts = datagen::uniform<2>(static_cast<std::size_t>(state.range(0)), 1,
                                 datagen::kDefaultMax2D);
  for (auto _ : state) {
    SpacHTree2 t;
    t.build(pts);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpacHBuild)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
