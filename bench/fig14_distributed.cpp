// Fig 14 (extension, not in the paper): distributed sharding.
//
// Sweeps node counts over the DistributedService (src/psi/net/): the same
// ShardMap + group-commit protocol as the in-process service, with shard
// replicas hosted on N ShardHosts behind a Transport. Two fabrics:
//
//   * loopback — zero-copy in-process delivery: isolates the protocol and
//     fan-out/merge cost from socket I/O (and is the single-node
//     deployment shape, so nodes=1/transport=loopback is the overhead of
//     the distributed core over a direct snapshot read);
//   * tcp — real sockets on 127.0.0.1: adds the full serialise/send/
//     receive/decode path per sub-query.
//
// Ops: write throughput (insert batches through the remote group commit),
// range_count / range_list / knn query fan-outs. Each query cell
// cross-checks its hit total against the nodes=1 loopback reference and
// reports "matches" in the JSON — a disagreement exits 1, so the perf
// gate doubles as an equivalence check.
//
// Output: one JSON line per cell:
//   BENCH_JSON {"bench":"fig14_distributed","transport":"loopback",
//               "nodes":2,"op":"range_count","queries":..,"hits":..,
//               "seconds":..,"qps":..,"matches":true}
//
// Durability: `--wal on` runs every cell with the write-ahead log armed
// (fsync'd commit records + coordinator markers in a temp dir), so the
// fsync-before-publish cost shows up in the insert numbers. The default
// run stays wal-off but appends one wal-on loopback run so CI always
// exercises the durable distributed path; the regression gate keys on the
// "durability" field and never compares across modes.
//
// Read options (read_options.h): `--stream on` answers the list cells
// with wire v3 chunked streaming into an api::ConcurrentSink;
// `--consistency pinned` runs every query cell pinned at the post-load
// epoch instead of read-committed. Both land in the BENCH_JSON "stream" /
// "consistency" fields, which the regression gate keys on — streamed or
// pinned rows are never compared against the plain ones. The default run
// appends one streamed loopback run so CI always exercises the chunked
// read path.
//
// Knobs: PSI_BENCH_N (points), PSI_BENCH_Q (queries per cell). On a
// 1-core container the numbers prove the code paths, not speedups.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace psi;
using namespace psi::bench;
using namespace psi::net;

namespace {

struct Cell {
  std::size_t queries = 0;
  std::size_t hits = 0;
  double seconds = 0;
  bool matches = true;
  double qps() const {
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  }
};

void emit(const char* transport, std::size_t nodes, const char* op,
          const Cell& c, bool wal, bool stream, bool pinned) {
  std::printf("BENCH_JSON {\"bench\":\"fig14_distributed\","
              "\"transport\":\"%s\",\"nodes\":%zu,\"op\":\"%s\","
              "\"durability\":\"%s\",\"stream\":\"%s\","
              "\"consistency\":\"%s\","
              "\"queries\":%zu,\"hits\":%zu,\"seconds\":%.4f,\"qps\":%.1f,"
              "\"matches\":%s}\n",
              transport, nodes, op, wal ? "wal" : "off",
              stream ? "on" : "off", pinned ? "pinned" : "rc", c.queries,
              c.hits, c.seconds, c.qps(), c.matches ? "true" : "false");
}

using Service = DistributedService<SpacZTree2>;
using desc_t = Service::desc_t;

struct RunResult {
  std::map<std::string, Cell> cells;
};

RunResult run_cells(Transport& fabric, std::size_t nodes,
                    const std::vector<Point2>& pts,
                    const std::vector<Point2>& centres, std::int64_t half,
                    bool stream, bool pinned,
                    const std::string& wal_dir = {}) {
  DistributedConfig cfg;
  cfg.initial_shards = 4;
  cfg.split_threshold = pts.size() * 8;  // fixed topology: measure the paths
  cfg.merge_threshold = 1;
  if (!wal_dir.empty()) {
    std::filesystem::remove_all(wal_dir);
    cfg.durability.enabled = true;
    cfg.durability.dir = wal_dir;
  }
  Service svc(fabric, nodes, cfg);

  RunResult out;
  {
    // Write path: remote group commit in batches of 1000.
    Cell c;
    c.queries = pts.size();
    Timer t;
    std::vector<Point2> batch;
    for (const auto& p : pts) {
      batch.push_back(p);
      if (batch.size() == 1000) {
        svc.insert_batch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) svc.insert_batch(batch);
    c.seconds = t.seconds();
    c.hits = svc.size();
    out.cells["insert"] = c;
  }
  // Query cells run through the unified read surface: pinned at the
  // post-load epoch when asked, streamed list replies when asked.
  const api::ReadOptions opts = pinned
                                    ? api::ReadOptions::pinned(svc.epoch())
                                    : api::ReadOptions::read_committed();
  {
    Cell c;
    c.queries = centres.size();
    Timer t;
    for (const auto& q : centres) {
      const Box2 box{{{q[0] - half, q[1] - half}}, {{q[0] + half, q[1] + half}}};
      c.hits += svc.query(desc_t::range_count(box), opts);
    }
    c.seconds = t.seconds();
    out.cells["range_count"] = c;
  }
  {
    Cell c;
    c.queries = centres.size();
    Timer t;
    for (const auto& q : centres) {
      const Box2 box{{{q[0] - half, q[1] - half}}, {{q[0] + half, q[1] + half}}};
      if (stream) {
        api::ConcurrentSink<std::int64_t, 2> sink;
        c.hits += svc.query(desc_t::range_list(box), opts.streamed(), sink);
      } else {
        std::vector<Point2> got;
        svc.query(desc_t::range_list(box), opts,
                  [&](const Point2& p) { got.push_back(p); });
        c.hits += got.size();
      }
    }
    c.seconds = t.seconds();
    out.cells["range_list"] = c;
  }
  {
    Cell c;
    c.queries = centres.size();
    Timer t;
    for (const auto& q : centres) {
      // Accumulate the ranked squared distances, not the result count: a
      // broken distributed merge still returns k points per query, so a
      // count-based check would be vacuous (fig13 learnt the same).
      svc.query(desc_t::knn(q, 10), opts, [&](const Point2& p) {
        c.hits += static_cast<std::size_t>(squared_distance(p, q));
      });
    }
    c.seconds = t.seconds();
    out.cells["knn"] = c;
  }
  return out;
}

bool flag_choice(int argc, char** argv, const char* flag, const char* on) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strcmp(argv[i + 1], on) == 0;
    }
  }
  return false;
}

bool wal_choice(int argc, char** argv) {
  return flag_choice(argc, argv, "--wal", "on");
}

// --stream on|off: chunked streamed list replies (default off).
bool stream_choice(int argc, char** argv) {
  return flag_choice(argc, argv, "--stream", "on");
}

// --consistency pinned|rc: pin every query cell at the post-load epoch
// (default rc = read-committed).
bool pinned_choice(int argc, char** argv) {
  return flag_choice(argc, argv, "--consistency", "pinned");
}

std::string wal_root() {
  return (std::filesystem::temp_directory_path() / "psi_fig14_wal").string();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench_n(100'000);
  const std::size_t q = bench_queries(200);
  const bool wal = wal_choice(argc, argv);
  const bool stream = stream_choice(argc, argv);
  const bool pinned = pinned_choice(argc, argv);
  const std::int64_t half = side_for_output<2>(n, n / 50, kMax2) / 2;

  const auto pts = make_workload_2d("Uniform", n, 1);
  const auto centres = datagen::ind_queries(pts, q, 99, kMax2);

  std::printf("Fig 14: distributed sharding, n=%zu, q=%zu, workers=%d, "
              "wal %s, stream %s, consistency %s\n",
              n, q, num_workers(), wal ? "on" : "off", stream ? "on" : "off",
              pinned ? "pinned" : "rc");

  bool all_match = true;
  RunResult reference;
  for (const std::size_t nodes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    LoopbackTransport fabric;
    RunResult r = run_cells(
        fabric, nodes, pts, centres, half, stream, pinned,
        wal ? wal_root() + "/n" + std::to_string(nodes) : std::string{});
    if (nodes == 1) reference = r;
    for (auto& [op, cell] : r.cells) {
      cell.matches = cell.hits == reference.cells[op].hits;
      all_match = all_match && cell.matches;
      emit("loopback", nodes, op.c_str(), cell, wal, stream, pinned);
    }
  }
  {
    TcpTransport fabric;
    RunResult r = run_cells(
        fabric, 2, pts, centres, half, stream, pinned,
        wal ? wal_root() + "/tcp" : std::string{});
    for (auto& [op, cell] : r.cells) {
      cell.matches = cell.hits == reference.cells[op].hits;
      all_match = all_match && cell.matches;
      emit("tcp", 2, op.c_str(), cell, wal, stream, pinned);
    }
  }
  if (!wal) {
    // One durable run rides along with the default sweep so CI always
    // exercises the WAL'd distributed commit path and its fsync cost is
    // visible next to the wal-off rows (never gated against them).
    LoopbackTransport fabric;
    RunResult r = run_cells(fabric, 2, pts, centres, half, stream, pinned,
                            wal_root() + "/ride");
    for (auto& [op, cell] : r.cells) {
      cell.matches = cell.hits == reference.cells[op].hits;
      all_match = all_match && cell.matches;
      emit("loopback", 2, op.c_str(), cell, /*wal=*/true, stream, pinned);
    }
  }
  if (!stream) {
    // And one streamed run: CI always exercises the wire v3 chunked read
    // path (kQueryChunk/kQueryDone + credit backpressure), its rows keyed
    // apart by the "stream" field.
    LoopbackTransport fabric;
    RunResult r = run_cells(fabric, 2, pts, centres, half, /*stream=*/true,
                            pinned);
    for (auto& [op, cell] : r.cells) {
      cell.matches = cell.hits == reference.cells[op].hits;
      all_match = all_match && cell.matches;
      emit("loopback", 2, op.c_str(), cell, wal, /*stream=*/true, pinned);
    }
  }
  std::filesystem::remove_all(wal_root());

  if (!all_match) {
    std::fprintf(stderr,
                 "fig14: node-count sweep disagreed with the single-node "
                 "reference\n");
    return 1;
  }
  return 0;
}
