// PSI-Lib quickstart: build an index, run the standard queries, apply batch
// updates — with each of the library's parallel spatial indexes.
//
//   $ ./quickstart [n]
//
// See README.md for the API walkthrough this example accompanies.

#include <cstdio>
#include <cstdlib>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = 1'000'000'000;

template <typename Index>
void demo(const char* name, Index& index, const std::vector<psi::Point2>& pts) {
  using psi::bench::Timer;

  // 1. Bulk build.
  Timer t;
  index.build(pts);
  std::printf("%-10s built %zu points in %.3fs", name, index.size(), t.seconds());

  // 2. k-nearest-neighbour query.
  const psi::Point2 q{{kMax / 2, kMax / 2}};
  auto nn = index.knn(q, 3);
  std::printf(" | 3-NN of centre: ");
  for (const auto& p : nn) {
    std::printf("(%lld,%lld) ", static_cast<long long>(p[0]),
                static_cast<long long>(p[1]));
  }

  // 3. Range queries.
  const psi::Box2 window{{{kMax / 4, kMax / 4}}, {{kMax / 2, kMax / 2}}};
  std::printf("| quarter-window holds %zu points", index.range_count(window));

  // 4. Batch updates: insert fresh points, delete the originals' prefix.
  auto extra = psi::datagen::uniform<2>(pts.size() / 10, 7, kMax);
  t.reset();
  index.batch_insert(extra);
  index.batch_delete({pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(
                                                     pts.size() / 10)});
  std::printf(" | one 10%% insert + 10%% delete round: %.3fs (size %zu)\n",
              t.seconds(), index.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  std::printf("PSI-Lib quickstart: %zu uniform 2D points, %d worker(s)\n\n", n,
              psi::num_workers());
  auto pts = psi::datagen::uniform<2>(n, 1, kMax);

  psi::POrthTree2 porth({}, psi::Box2{{{0, 0}}, {{kMax, kMax}}});
  demo("P-Orth", porth, pts);

  psi::SpacHTree2 spac_h;
  demo("SPaC-H", spac_h, pts);

  psi::SpacZTree2 spac_z;
  demo("SPaC-Z", spac_z, pts);

  psi::PkdTree2 pkd;
  demo("Pkd", pkd, pts);

  psi::ZdTree2 zd;
  demo("Zd", zd, pts);

  std::printf(
      "\nPick P-Orth for mostly-uniform data with mixed query/update load,\n"
      "SPaC-H for update-heavy dynamic workloads, Pkd for query-heavy ones\n"
      "(paper Sec 5.4 / Tab 2).\n");
  return 0;
}
