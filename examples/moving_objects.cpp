// Dynamic-scene scenario (paper Sec 1: "in 3D games, moving objects must be
// reflected quickly to affect lighting and collision detection").
//
// A swarm of objects moves through 3D space. Every tick, the index receives
// a batch delete (old positions) + batch insert (new positions) — the
// latency-critical update pattern the SPaC-tree targets — and then answers
// k-NN proximity queries used for collision avoidance. We report per-tick
// update latency and the number of near-collision pairs found.
//
//   $ ./moving_objects [n_objects] [ticks]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = psi::datagen::kDefaultMax3D;

// Deterministic per-object velocity.
psi::Point3 velocity(std::size_t id, std::size_t tick) {
  (void)tick;
  const std::int64_t vmax = kMax / 500;
  psi::Point3 v;
  for (int d = 0; d < 3; ++d) {
    v[d] = static_cast<std::int64_t>(
               psi::hash64(id, static_cast<std::uint64_t>(d)) %
               static_cast<std::uint64_t>(2 * vmax + 1)) -
           vmax;
  }
  return v;
}

psi::Point3 step(const psi::Point3& p, const psi::Point3& v) {
  psi::Point3 q;
  for (int d = 0; d < 3; ++d) {
    std::int64_t x = p[d] + v[d];
    if (x < 0) x += kMax;      // toroidal wraparound keeps the swarm in space
    if (x > kMax) x -= kMax;
    q[d] = x;
  }
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::size_t ticks = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  std::printf("PSI-Lib moving-objects demo: %zu objects, %zu ticks\n", n, ticks);

  // Positions double as object identity; the index is rebuilt incrementally
  // through delete+insert batches, never from scratch.
  std::vector<psi::Point3> pos = psi::datagen::uniform<3>(n, 3, kMax);
  psi::SpacHTree3 index;
  psi::bench::Timer t;
  index.build(pos);
  std::printf("initial build: %.3fs\n", t.seconds());

  const double collide_r2 = 1.0e-6 * static_cast<double>(kMax) *
                            static_cast<double>(kMax);
  double update_total = 0, query_total = 0;
  std::size_t near_pairs = 0;
  for (std::size_t tick = 1; tick <= ticks; ++tick) {
    // 10% of objects move each tick (update batch = 2 x 10% of n).
    const std::size_t movers = n / 10;
    const std::size_t first = (tick * movers) % n;
    std::vector<psi::Point3> old_pos, new_pos;
    old_pos.reserve(movers);
    new_pos.reserve(movers);
    for (std::size_t i = 0; i < movers; ++i) {
      const std::size_t id = (first + i) % n;
      old_pos.push_back(pos[id]);
      pos[id] = step(pos[id], velocity(id, tick));
      new_pos.push_back(pos[id]);
    }
    t.reset();
    index.batch_diff(new_pos, old_pos);  // move = combined delete+insert
    const double upd = t.seconds();
    update_total += upd;

    // Collision probes for a sample of the movers: nearest other object.
    t.reset();
    for (std::size_t i = 0; i < movers; i += 97) {
      auto nn = index.knn(new_pos[i], 2);  // [0] is the object itself
      if (nn.size() == 2 &&
          squared_distance(nn[1], new_pos[i]) < collide_r2) {
        ++near_pairs;
      }
    }
    query_total += t.seconds();
    if (tick % 5 == 0) {
      std::printf("  tick %3zu: update %.1fms (size %zu)\n", tick, upd * 1e3,
                  index.size());
    }
  }

  std::printf(
      "\n%zu ticks: mean update latency %.2fms, probe time %.3fs total, "
      "%zu near-collisions flagged\n",
      ticks, update_total * 1e3 / static_cast<double>(ticks), query_total,
      near_pairs);
  return 0;
}
