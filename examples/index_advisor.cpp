// Index advisor: measure the query/update tradeoff of every index on a
// user-described workload mix and print a recommendation — an executable
// version of the paper's summary guidance (Sec 5.4, Tab 2, Fig 8).
//
//   $ ./index_advisor [n] [updates_per_100_queries] [skew]
//
// skew: 0 = uniform data, 1 = clustered (varden).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = 1'000'000'000;

struct Score {
  std::string name;
  double update_s;  // time for one 1% update round (delete + insert)
  double query_s;   // time for the query block
  double blended;
};

template <typename Index>
Score profile(const char* name, Index& index, const std::vector<psi::Point2>& pts,
              const std::vector<psi::Point2>& queries,
              const std::vector<psi::Box2>& ranges, double update_weight) {
  index.build(pts);
  const std::size_t b = pts.size() / 100;
  std::vector<psi::Point2> batch(pts.begin(),
                                 pts.begin() + static_cast<std::ptrdiff_t>(b));

  psi::bench::Timer t;
  index.batch_delete(batch);
  index.batch_insert(batch);
  const double update_s = t.seconds();

  t.reset();
  std::size_t sink = 0;
  for (const auto& q : queries) sink += index.knn(q, 10).size();
  for (const auto& r : ranges) sink += index.range_count(r);
  const double query_s = t.seconds();
  if (sink == 0) std::printf("(empty result set?)\n");

  return Score{name, update_s, query_s,
               update_weight * update_s + (1.0 - update_weight) * query_s};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const double upd_per_100q = argc > 2 ? std::atof(argv[2]) : 50.0;
  const bool skewed = argc > 3 && std::atoi(argv[3]) == 1;
  const double w = upd_per_100q / (100.0 + upd_per_100q);

  std::printf(
      "PSI-Lib index advisor: n=%zu, update weight %.2f, %s data\n\n", n, w,
      skewed ? "clustered (varden)" : "uniform");

  auto pts = skewed ? psi::datagen::varden<2>(n, 1, kMax)
                    : psi::datagen::uniform<2>(n, 1, kMax);
  auto queries = psi::datagen::ind_queries(pts, 200, 2, kMax);
  auto ranges = psi::datagen::range_boxes(
      psi::datagen::ood_queries<2>(50, 3, kMax), 30'000'000, kMax);

  std::vector<Score> scores;
  {
    psi::POrthTree2 t({}, psi::Box2{{{0, 0}}, {{kMax, kMax}}});
    scores.push_back(profile("P-Orth", t, pts, queries, ranges, w));
  }
  {
    psi::SpacHTree2 t;
    scores.push_back(profile("SPaC-H", t, pts, queries, ranges, w));
  }
  {
    psi::SpacZTree2 t;
    scores.push_back(profile("SPaC-Z", t, pts, queries, ranges, w));
  }
  {
    psi::SpacHTree2 t(psi::cpam_params());
    scores.push_back(profile("CPAM-H", t, pts, queries, ranges, w));
  }
  {
    psi::PkdTree2 t;
    scores.push_back(profile("Pkd", t, pts, queries, ranges, w));
  }
  {
    psi::ZdTree2 t;
    scores.push_back(profile("Zd", t, pts, queries, ranges, w));
  }

  std::printf("%-8s %14s %14s %14s\n", "index", "1% update (s)", "queries (s)",
              "blended");
  const Score* best = &scores[0];
  for (const auto& s : scores) {
    std::printf("%-8s %14.4f %14.4f %14.4f\n", s.name.c_str(), s.update_s,
                s.query_s, s.blended);
    if (s.blended < best->blended) best = &s;
  }
  std::printf("\nrecommended index for this mix: %s\n", best->name.c_str());
  return 0;
}
