// Index advisor: measure the query/update tradeoff of every index on a
// user-described workload mix and print a recommendation — an executable
// version of the paper's summary guidance (Sec 5.4, Tab 2, Fig 8) — then
// push the analysis one level down: a *per-shard* backend recommendation
// (hot shards get the update-optimal index, cold shards the query-optimal
// one) and a live demo of a heterogeneous SpatialService<api::AnyIndex>
// wired from that recommendation through the BackendRegistry.
//
//   $ ./index_advisor [n] [updates_per_100_queries] [skew] [shards]
//
// skew: 0 = uniform data, 1 = clustered (varden).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = 1'000'000'000;

struct Score {
  std::string name;
  double update_s;  // time for one 1% update round (delete + insert)
  double query_s;   // time for the query block
  double blended;
};

Score profile(const std::string& name, const std::vector<psi::Point2>& pts,
              const std::vector<psi::Point2>& queries,
              const std::vector<psi::Box2>& ranges, double update_weight) {
  // Registry-driven: every candidate is exercised through the same
  // type-erased handle the mixed service below will use.
  auto index = psi::api::BackendRegistry2::instance().make(name);
  index.build(pts);
  const std::size_t b = pts.size() / 100;
  std::vector<psi::Point2> batch(pts.begin(),
                                 pts.begin() + static_cast<std::ptrdiff_t>(b));

  psi::bench::Timer t;
  index.batch_delete(batch);
  index.batch_insert(batch);
  const double update_s = t.seconds();

  t.reset();
  std::size_t sink = 0;
  for (const auto& q : queries) sink += index.knn(q, 10).size();
  for (const auto& r : ranges) sink += index.range_count(r);
  const double query_s = t.seconds();
  if (sink == 0) std::printf("(empty result set?)\n");

  return Score{name, update_s, query_s,
               update_weight * update_s + (1.0 - update_weight) * query_s};
}

const Score* best_for_weight(const std::vector<Score>& scores, double w) {
  const Score* best = &scores[0];
  double best_val = w * best->update_s + (1.0 - w) * best->query_s;
  for (const auto& s : scores) {
    const double v = w * s.update_s + (1.0 - w) * s.query_s;
    if (v < best_val) {
      best = &s;
      best_val = v;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const double upd_per_100q = argc > 2 ? std::atof(argv[2]) : 50.0;
  const bool skewed = argc > 3 && std::atoi(argv[3]) == 1;
  const std::size_t shards = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 4;
  const double w = upd_per_100q / (100.0 + upd_per_100q);

  std::printf(
      "PSI-Lib index advisor: n=%zu, update weight %.2f, %s data\n\n", n, w,
      skewed ? "clustered (varden)" : "uniform");

  auto pts = skewed ? psi::datagen::varden<2>(n, 1, kMax)
                    : psi::datagen::uniform<2>(n, 1, kMax);
  auto queries = psi::datagen::ind_queries(pts, 200, 2, kMax);
  auto ranges = psi::datagen::range_boxes(
      psi::datagen::ood_queries<2>(50, 3, kMax), 30'000'000, kMax);

  const std::vector<std::string> candidates{"porth", "spac-h", "spac-z",
                                            "cpam-z", "pkd",    "zd",
                                            "log",   "bhl"};
  std::vector<Score> scores;
  scores.reserve(candidates.size());
  for (const auto& name : candidates) {
    scores.push_back(profile(name, pts, queries, ranges, w));
  }

  std::printf("%-8s %14s %14s %14s\n", "index", "1% update (s)", "queries (s)",
              "blended");
  const Score* best = &scores[0];
  for (const auto& s : scores) {
    std::printf("%-8s %14.4f %14.4f %14.4f\n", s.name.c_str(), s.update_s,
                s.query_s, s.blended);
    if (s.blended < best->blended) best = &s;
  }
  std::printf("\nrecommended uniform index for this mix: %s\n",
              best->name.c_str());

  // -----------------------------------------------------------------------
  // Per-shard recommendation (Sec 5.4 taken to the service layer): shards
  // covering curve ranges where the *recent* stream concentrates are
  // update-hot; quiet shards serve mostly queries. Each shard gets its own
  // update weight and therefore possibly its own backend.
  // -----------------------------------------------------------------------
  using Codec = psi::sfc::MortonCodec<std::int64_t, 2>;
  std::vector<std::uint64_t> codes(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) codes[i] = Codec::encode(pts[i]);
  std::sort(codes.begin(), codes.end());
  auto map = psi::service::ShardMap<std::int64_t, 2, Codec>::from_sorted_codes(
      codes, shards);
  const std::size_t k = map.num_shards();

  // Recent-activity proxy: where the last 10% of the stream landed.
  const std::size_t recent_n = std::max<std::size_t>(1, pts.size() / 10);
  std::vector<std::size_t> recent(k, 0);
  for (std::size_t i = pts.size() - recent_n; i < pts.size(); ++i) {
    ++recent[map.shard_of(pts[i])];
  }

  std::printf("\nper-shard recommendation (%zu shards, update stream = last "
              "10%% of arrivals):\n", k);
  std::printf("%-6s %9s %9s %-10s\n", "shard", "hotness", "upd wt", "backend");
  std::vector<std::string> shard_backend(k);
  for (std::size_t s = 0; s < k; ++s) {
    // hotness 1.0 = shard sees its uniform share of recent updates.
    const double hotness = static_cast<double>(recent[s]) *
                           static_cast<double>(k) /
                           static_cast<double>(recent_n);
    // Queries are OOD-uniform across shards; updates follow the stream.
    const double ws = (hotness * w) / (hotness * w + (1.0 - w));
    const Score* rec = best_for_weight(scores, ws);
    shard_backend[s] = rec->name;
    std::printf("%-6zu %9.2f %9.2f %-10s\n", s, hotness, ws,
                rec->name.c_str());
  }

  // -----------------------------------------------------------------------
  // Demo: run the recommendation as one heterogeneous service. The shard
  // factory consults the per-shard table (slots created later by
  // split/merge reuse the recommendation of the range they came from,
  // modulo k).
  // -----------------------------------------------------------------------
  psi::service::ServiceConfig cfg;
  cfg.initial_shards = k;
  psi::service::SpatialService<psi::api::AnyIndex2> svc(
      cfg, [&shard_backend, k](std::size_t shard_id) {
        return psi::api::BackendRegistry2::instance().make(
            shard_backend[shard_id % k]);
      });
  svc.build(pts);

  psi::bench::Timer t;
  const std::size_t b = pts.size() / 100;
  std::vector<psi::Point2> batch(pts.begin(),
                                 pts.begin() + static_cast<std::ptrdiff_t>(b));
  svc.submit_delete_batch(batch);
  svc.submit_insert_batch(batch);
  svc.flush();
  std::size_t sink = 0;
  {
    auto snap = svc.snapshot();
    for (const auto& q : queries) {
      // Stream through the sink API: no result vectors materialised.
      snap.knn_visit(q, 10, [&](const psi::Point2&) { ++sink; });
    }
    for (const auto& r : ranges) sink += snap.range_count(r);
  }
  const double mixed_s = t.seconds();

  std::printf("\nmixed service demo: %zu points over %zu shards [", svc.size(),
              svc.stats().num_shards);
  {
    auto snap = svc.snapshot();
    for (std::size_t s = 0; s < snap.view().shards.size(); ++s) {
      std::printf("%s%s", s ? " " : "",
                  snap.view().shards[s]->backend_name().c_str());
    }
  }
  std::printf("]\n1%% update round + query block: %.4f s (visited %zu)\n",
              mixed_s, sink);
  return 0;
}
