// Density-based clustering (DBSCAN) on top of PSI-Lib ball queries — the
// "spatial data analysis" application family from the paper's abstract.
// The Varden generator itself is derived from the DBSCAN-hardness paper
// (Gan & Tao), so its clusters are exactly what DBSCAN should recover.
//
// The index accelerates the two DBSCAN primitives:
//   * core-point test: ball_count(p, eps) >= min_pts
//   * expansion:       ball_list(p, eps)
//
//   $ ./dbscan_clusters [n] [eps] [min_pts]

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = 1'000'000'000;

struct Dbscan {
  const psi::PkdTree2& index;
  double eps;
  std::size_t min_pts;
  std::unordered_map<psi::Point2, int, psi::PointHash<std::int64_t, 2>> label;

  static constexpr int kNoise = -1;

  int run(const std::vector<psi::Point2>& pts) {
    int next_cluster = 0;
    std::vector<psi::Point2> stack;
    for (const auto& p : pts) {
      if (label.count(p)) continue;
      auto neighbours = index.ball_list(p, eps);
      if (neighbours.size() < min_pts) {
        label[p] = kNoise;
        continue;
      }
      const int cid = next_cluster++;
      label[p] = cid;
      stack = std::move(neighbours);
      while (!stack.empty()) {
        const psi::Point2 q = stack.back();
        stack.pop_back();
        auto it = label.find(q);
        if (it != label.end() && it->second != kNoise) continue;
        label[q] = cid;  // border or core
        auto reach = index.ball_list(q, eps);
        if (reach.size() >= min_pts) {  // q is core: expand
          for (const auto& r : reach) {
            auto rit = label.find(r);
            if (rit == label.end() || rit->second == kNoise) {
              stack.push_back(r);
            }
          }
        }
      }
    }
    return next_cluster;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const double eps = argc > 2 ? std::atof(argv[2])
                              : static_cast<double>(kMax) * 2e-4;
  const std::size_t min_pts = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;

  std::printf("PSI-Lib DBSCAN demo: n=%zu, eps=%.3g, min_pts=%zu\n", n, eps,
              min_pts);
  auto pts = psi::datagen::dedup(psi::datagen::varden<2>(n, 1, kMax));
  std::printf("varden points (deduplicated): %zu\n", pts.size());

  psi::PkdTree2 index;
  psi::bench::Timer t;
  index.build(pts);
  std::printf("index built in %.3fs\n", t.seconds());

  Dbscan dbscan{index, eps, min_pts, {}};
  t.reset();
  const int clusters = dbscan.run(pts);
  const double cluster_s = t.seconds();

  std::size_t noise = 0;
  std::unordered_map<int, std::size_t> sizes;
  for (const auto& [p, c] : dbscan.label) {
    if (c == Dbscan::kNoise) {
      ++noise;
    } else {
      ++sizes[c];
    }
  }
  std::size_t biggest = 0;
  for (const auto& [c, s] : sizes) biggest = std::max(biggest, s);

  std::printf(
      "DBSCAN finished in %.3fs: %d clusters, largest %zu points, "
      "%zu noise points (%.1f%%)\n",
      cluster_s, clusters, biggest, noise,
      100.0 * static_cast<double>(noise) / static_cast<double>(pts.size()));
  return 0;
}
