// GIS sensor-stream scenario (paper Sec 1: "GIS applications often ingest
// high-volume sensor streams where total update throughput is critical").
//
// An OSM-like base map is indexed, then batches of sensor readings stream
// in while analytic range queries run: a coarse density heat map and
// hot-cell detection over the live index. The P-Orth tree is used because
// the workload mixes heavy updates with many range queries on mostly-2D
// map data (paper Sec 5.4 guidance).
//
//   $ ./gis_stream [n_base] [n_stream_batches]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "psi/bench/harness.h"
#include "psi/psi.h"

namespace {

constexpr std::int64_t kMax = psi::datagen::kDefaultMax2D;
constexpr int kGrid = 8;

void print_heatmap(const psi::POrthTree2& index) {
  // Range-count per coarse grid cell; render as a log-scale ASCII map.
  std::printf("  density heat map (%dx%d range-count queries):\n", kGrid, kGrid);
  const char* shades = " .:-=+*#%@";
  for (int gy = kGrid - 1; gy >= 0; --gy) {
    std::printf("    ");
    for (int gx = 0; gx < kGrid; ++gx) {
      const std::int64_t step = kMax / kGrid;
      psi::Box2 cell{{{gx * step, gy * step}},
                     {{(gx + 1) * step - 1, (gy + 1) * step - 1}}};
      const std::size_t c = index.range_count(cell);
      int shade = 0;
      for (std::size_t v = c; v > 0; v /= 4) ++shade;
      if (shade > 9) shade = 9;
      std::printf("%c", shades[shade]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_base =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
  const std::size_t rounds =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const std::size_t batch = std::max<std::size_t>(1, n_base / 100);

  std::printf("PSI-Lib GIS stream demo: %zu base points + %zu batches of %zu\n",
              n_base, rounds, batch);

  psi::POrthTree2 index({}, psi::Box2{{{0, 0}}, {{kMax, kMax}}});
  auto base = psi::datagen::osm_sim(n_base, 1);
  psi::bench::Timer t;
  index.build(base);
  std::printf("base map indexed in %.3fs\n\n", t.seconds());
  print_heatmap(index);

  double ingest_total = 0, query_total = 0;
  std::size_t hot_cells = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    // Sensor readings cluster around live traffic: reuse the OSM generator
    // with a per-round seed so each batch lands on roads/cities.
    auto readings = psi::datagen::osm_sim(batch, 100 + r);
    t.reset();
    index.batch_insert(readings);
    ingest_total += t.seconds();

    // Analytics on the live index: find hot cells (> 2x average density).
    t.reset();
    const std::int64_t step = kMax / kGrid;
    const double avg = static_cast<double>(index.size()) / (kGrid * kGrid);
    for (int gx = 0; gx < kGrid; ++gx) {
      for (int gy = 0; gy < kGrid; ++gy) {
        psi::Box2 cell{{{gx * step, gy * step}},
                       {{(gx + 1) * step - 1, (gy + 1) * step - 1}}};
        if (static_cast<double>(index.range_count(cell)) > 2 * avg) ++hot_cells;
      }
    }
    query_total += t.seconds();

    // Retention policy: expire the oldest batch once 5 rounds deep.
    if (r >= 5) {
      auto expired = psi::datagen::osm_sim(batch, 100 + r - 5);
      t.reset();
      index.batch_delete(expired);
      ingest_total += t.seconds();
    }
  }

  std::printf("\nafter streaming: %zu live points\n", index.size());
  print_heatmap(index);
  std::printf(
      "\ningest time %.3fs total (%.1f kpts/s), analytics %.3fs, "
      "%zu hot-cell hits\n",
      ingest_total,
      static_cast<double>(batch * rounds) / 1000.0 / ingest_total, query_total,
      hot_cells);
  return 0;
}
