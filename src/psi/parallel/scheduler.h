// PSI-Lib: fork-join work-stealing scheduler.
//
// This is the parallel runtime substrate that replaces ParlayLib in the paper's
// artifact. It implements the classical binary fork-join model analysed in the
// paper (Sec 2.1): a `par_do(f, g)` primitive that runs two closures in
// parallel, on top of per-worker task deques with randomized work stealing.
//
// Design notes:
//  * The calling (main) thread registers as worker 0; `num_workers()-1`
//    additional threads are spawned. A thread that is not part of the pool
//    executes `par_do` sequentially, so the library is safe to call from any
//    thread.
//  * Joins are *stealing joins*: a thread waiting for a forked task keeps
//    executing other tasks, so nested parallelism (the norm in the index
//    algorithms, which recurse with par_do) cannot deadlock.
//  * Exceptions thrown inside a forked task are captured and rethrown at the
//    join point in the forking thread.
//  * Worker count defaults to std::thread::hardware_concurrency() and can be
//    overridden with the PSI_NUM_WORKERS environment variable or at runtime
//    with set_num_workers() (used by the scalability benchmark, Fig 7).
//
// With num_workers() == 1 every primitive takes a sequential fast path, so on
// a single-core machine the library behaves like a well-optimised sequential
// implementation.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace psi {

namespace detail {

// A forked task awaiting execution. Lives on the stack of the forking
// `par_do` frame. A job is *removed from its deque at claim time* (under the
// deque lock), so the deques never hold pointers to frames that may have
// returned; the owning frame never returns before `done` is set.
struct Job {
  virtual void execute() = 0;
  virtual ~Job() = default;

  std::atomic<bool> done{false};
  std::exception_ptr error{nullptr};

  void run() {
    try {
      execute();
    } catch (...) {
      error = std::current_exception();
    }
    done.store(true, std::memory_order_release);
  }
};

template <typename F>
struct JobImpl final : Job {
  explicit JobImpl(F& f) : fn(f) {}
  void execute() override { fn(); }
  F& fn;
};

}  // namespace detail

// Worker-behaviour counters (telemetry): cumulative across pool restarts,
// process-wide. All zero when built with PSI_TELEMETRY_DISABLED.
struct SchedulerCounters {
  std::uint64_t submits = 0;       // jobs enqueued
  std::uint64_t foreign_jobs = 0;  // jobs enqueued by non-pool threads
  std::uint64_t steals = 0;        // successful steals between deques
  std::uint64_t parks = 0;         // worker sleeps after an idle spin run
};

class Scheduler {
 public:
  // Global scheduler. Constructed on first use with worker count from
  // PSI_NUM_WORKERS (if set) or hardware concurrency.
  static Scheduler& instance();

  // Restart the pool with a different worker count. Must be called from
  // outside any parallel region (i.e., when the pool is quiescent). Used by
  // the scalability benchmarks.
  static void set_num_workers(int p);

  int num_workers() const { return static_cast<int>(deques_.size()); }

  // Id of the calling thread within the pool, or -1 for foreign threads.
  static int worker_id();

  // Telemetry: the process-wide worker counters (registered as gauges in
  // the StatsRegistry on first instance() — telemetry/registry.h). Safe
  // from any thread; survives set_num_workers restarts.
  static SchedulerCounters telemetry_counters();

  // Fork g, run f inline, then join g (executing it inline if nobody stole
  // it, or stealing other work while waiting otherwise).
  template <typename F, typename G>
  void par_do(F&& f, G&& g) {
    if (num_workers() <= 1 || worker_id() < 0) {
      f();
      g();
      return;
    }
    detail::JobImpl<G> job(g);
    submit(&job);
    try {
      f();
    } catch (...) {
      // Exception-safe join: the deque must not retain a pointer to this
      // frame once we unwind. Reclaim the fork or wait for its thief.
      if (!try_claim(&job)) help_until(job);
      throw;
    }
    if (try_claim(&job)) {
      // Nobody stole it: run inline.
      job.run();
    } else {
      help_until(job);
    }
    if (job.error) std::rethrow_exception(job.error);
  }

  // ---- low-level task interface (task_group.h builds on these) --------
  //
  // submit/try_claim/help_until generalise the par_do fork/join pair to
  // detached tasks with caller-owned lifetimes. Pool threads push to their
  // own deque; foreign threads (the service's background committer, client
  // reader threads) borrow deque 0, whose jobs the workers pick up via
  // stealing — this is what lets a non-pool thread fan work out instead of
  // silently serialising like a foreign par_do does.

  // Enqueue a job for execution by the pool. The caller keeps ownership of
  // the job and must join it (try_claim+run, or help_until) before the job
  // is destroyed. Only meaningful when num_workers() > 1.
  void submit(detail::Job* job);

  // Pop `job` if it is still unclaimed at the back of the calling thread's
  // deque (deque 0 for foreign threads). On success the caller runs it
  // inline; the back==job check means a thread can only ever claim a job
  // it submitted itself.
  bool try_claim(detail::Job* job);

  // Block until `job` has run. Pool threads execute other tasks while
  // waiting (stealing join, deadlock-free under nesting); foreign threads
  // just wait — they must not run arbitrary pool jobs, since sinks with
  // per-worker state map every foreign thread to the same slot.
  void help_until(detail::Job& job);

  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

 private:
  explicit Scheduler(int num_workers);

  struct Deque {
    std::mutex mu;
    std::deque<detail::Job*> jobs;
  };

  detail::Job* pop_local();
  detail::Job* steal();
  void worker_loop(int id);
  void wake_one();

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> pending_{0};  // jobs pushed but not yet claimed
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  static std::unique_ptr<Scheduler> global_;
  static std::mutex global_mu_;
};

// ---------------------------------------------------------------------------
// Free-function interface used throughout the library.
// ---------------------------------------------------------------------------

inline int num_workers() { return Scheduler::instance().num_workers(); }
inline int worker_id() { return Scheduler::worker_id(); }

// ---------------------------------------------------------------------------
// Fork grain: the subproblem size below which recursive algorithms stop
// forking and run sequentially. One global knob shared by the parallel
// primitives and the tree traversals/updates, so 1-core CI can force the
// parallel code paths onto tiny inputs (PSI_GRAIN=1) and big-iron runs can
// coarsen task granularity, both without recompiling.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kDefaultGrain = 2048;

// Largest accepted grain: above ~a billion elements per task the knob means
// "never fork" regardless, so PSI_GRAIN values beyond this clamp here
// instead of silently becoming a nonsense size_t.
inline constexpr std::size_t kMaxGrain = std::size_t{1} << 30;

// Current grain: set_fork_grain() override, else PSI_GRAIN env, else
// kDefaultGrain. A malformed, empty, zero, or negative PSI_GRAIN falls
// back to kDefaultGrain; oversized values clamp to kMaxGrain.
std::size_t fork_grain();

// Runtime override (tests, benches). 0 restores the env/default value.
void set_fork_grain(std::size_t n);

// Fork cutoff for the tree *update* paths (batch insert/delete, skeleton
// dispatch): coarser than query traversals since update tasks carry
// sort/merge work. 2x the grain — the historical 4096 at the default.
std::size_t update_fork_cutoff();

// Run f() and g() in parallel.
template <typename F, typename G>
inline void par_do(F&& f, G&& g) {
  Scheduler::instance().par_do(std::forward<F>(f), std::forward<G>(g));
}

// Run three closures in parallel (used by tree algorithms that recurse on
// two children plus a pivot-side task).
template <typename F1, typename F2, typename F3>
inline void par_do3(F1&& f1, F2&& f2, F3&& f3) {
  par_do([&] { f1(); }, [&] { par_do(f2, f3); });
}

// Parallel loop over [lo, hi). `granularity` = number of iterations executed
// sequentially per task; 0 selects an automatic grain of ~8 tasks/worker.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f,
                  std::size_t granularity = 0) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  const int p = num_workers();
  if (granularity == 0) {
    granularity = 1 + n / (static_cast<std::size_t>(p) * 8);
  }
  if (p <= 1 || n <= granularity) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  // Recursive binary splitting down to the grain (binary forking model).
  struct Rec {
    F& body;
    std::size_t grain;
    void operator()(std::size_t l, std::size_t h) {
      if (h - l <= grain) {
        for (std::size_t i = l; i < h; ++i) body(i);
      } else {
        const std::size_t mid = l + (h - l) / 2;
        par_do([&] { (*this)(l, mid); }, [&] { (*this)(mid, h); });
      }
    }
  } rec{f, granularity};
  rec(lo, hi);
}

// Parallel loop with one task per index, regardless of trip count. The
// service layer's per-shard apply uses this: shard counts are small (≤ a
// few hundred) and per-shard work is a whole batch update, so the automatic
// grain of parallel_for — tuned for million-element data loops — would
// serialise the shards instead of spreading them across workers.
template <typename F>
void parallel_for_shards(std::size_t num_shards, F&& f) {
  parallel_for(0, num_shards, std::forward<F>(f), 1);
}

// Parallel loop over blocks: calls f(block_index, block_lo, block_hi) for
// ceil(n / block_size) contiguous blocks covering [0, n).
template <typename F>
void parallel_for_blocked(std::size_t n, std::size_t block_size, F&& f) {
  if (n == 0) return;
  const std::size_t num_blocks = (n + block_size - 1) / block_size;
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * block_size;
        const std::size_t hi = std::min(n, lo + block_size);
        f(b, lo, hi);
      },
      1);
}

}  // namespace psi
