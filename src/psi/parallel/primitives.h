// PSI-Lib: core parallel sequence primitives (reduce, scan, pack, filter).
//
// These are the ParlayLib-style building blocks the index algorithms consume.
// All primitives are deterministic and take sequential fast paths for small
// inputs or single-worker pools.

#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/parallel/scheduler.h"

namespace psi {

// Sequential cutoff for the primitives: the shared fork grain
// (scheduler.h; default 2048, overridable via PSI_GRAIN / set_fork_grain).

// ---------------------------------------------------------------------------
// reduce
// ---------------------------------------------------------------------------

// Parallel reduction of f(lo..hi) under associative op `combine` with
// identity `id`. f(i) is evaluated exactly once per index.
template <typename T, typename F, typename Combine>
T reduce_map(std::size_t lo, std::size_t hi, F&& f, T id, Combine&& combine) {
  const std::size_t n = hi - lo;
  if (n == 0) return id;
  if (n <= fork_grain() || num_workers() <= 1) {
    T acc = id;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const std::size_t mid = lo + n / 2;
  T left{}, right{};
  par_do([&] { left = reduce_map(lo, mid, f, id, combine); },
         [&] { right = reduce_map(mid, hi, f, id, combine); });
  return combine(left, right);
}

template <typename It, typename T, typename Combine>
T reduce(It first, It last, T id, Combine&& combine) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  return reduce_map(
      0, n, [&](std::size_t i) { return *(first + static_cast<std::ptrdiff_t>(i)); },
      id, combine);
}

template <typename It>
auto reduce_sum(It first, It last) {
  using T = typename std::iterator_traits<It>::value_type;
  return psi::reduce(first, last, T{}, std::plus<T>{});
}

// ---------------------------------------------------------------------------
// scan
// ---------------------------------------------------------------------------

// Exclusive prefix sum of v in place; returns the total. Two-pass blocked
// algorithm: per-block sums, sequential scan over block sums, per-block
// local scan. O(n) work, O(log n + n/P) span for our block count.
template <typename T>
T scan_exclusive(std::vector<T>& v) {
  const std::size_t n = v.size();
  if (n == 0) return T{};
  if (n <= fork_grain() || num_workers() <= 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
    return acc;
  }
  const std::size_t block = std::max<std::size_t>(
      fork_grain(), (n + 8 * static_cast<std::size_t>(num_workers()) - 1) /
                        (8 * static_cast<std::size_t>(num_workers())));
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<T> sums(num_blocks);
  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc = acc + v[i];
    sums[b] = acc;
  });
  T total{};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    T next = total + sums[b];
    sums[b] = total;
    total = next;
  }
  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    T acc = sums[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = acc + v[i];
      v[i] = acc;
      acc = next;
    }
  });
  return total;
}

// ---------------------------------------------------------------------------
// pack / filter
// ---------------------------------------------------------------------------

// Copy elements with flag(i) true into the output, preserving order.
template <typename It, typename Flag>
auto pack(It first, It last, Flag&& flag) {
  using T = typename std::iterator_traits<It>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  std::vector<T> out;
  if (n == 0) return out;
  if (n <= fork_grain() || num_workers() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (flag(i)) out.push_back(*(first + static_cast<std::ptrdiff_t>(i)));
    }
    return out;
  }
  const std::size_t block = std::max<std::size_t>(
      fork_grain(), (n + 8 * static_cast<std::size_t>(num_workers()) - 1) /
                        (8 * static_cast<std::size_t>(num_workers())));
  const std::size_t num_blocks = (n + block - 1) / block;
  std::vector<std::size_t> counts(num_blocks);
  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += flag(i) ? 1 : 0;
    counts[b] = c;
  });
  const std::size_t total = scan_exclusive(counts);
  out.resize(total);
  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    std::size_t pos = counts[b];
    for (std::size_t i = lo; i < hi; ++i) {
      if (flag(i)) out[pos++] = *(first + static_cast<std::ptrdiff_t>(i));
    }
  });
  return out;
}

template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& v, Pred&& pred) {
  return pack(v.begin(), v.end(), [&](std::size_t i) { return pred(v[i]); });
}

// ---------------------------------------------------------------------------
// map / tabulate / flatten
// ---------------------------------------------------------------------------

template <typename T, typename F>
std::vector<T> tabulate(std::size_t n, F&& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

template <typename In, typename F>
auto map(const std::vector<In>& v, F&& f) {
  using Out = std::decay_t<decltype(f(v[0]))>;
  return tabulate<Out>(v.size(), [&](std::size_t i) { return f(v[i]); });
}

// Concatenate a sequence of vectors in parallel.
template <typename T>
std::vector<T> flatten(const std::vector<std::vector<T>>& parts) {
  std::vector<std::size_t> offsets(parts.size());
  parallel_for(0, parts.size(), [&](std::size_t i) { offsets[i] = parts[i].size(); });
  const std::size_t total = scan_exclusive(offsets);
  std::vector<T> out(total);
  parallel_for(
      0, parts.size(),
      [&](std::size_t i) {
        std::copy(parts[i].begin(), parts[i].end(),
                  out.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
      },
      1);
  return out;
}

}  // namespace psi
