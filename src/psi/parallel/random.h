// PSI-Lib: deterministic splittable randomness.
//
// Parallel algorithms need per-index random values that are reproducible
// regardless of the execution schedule. We use a counter-based construction:
// hash64(seed, i) is a high-quality pseudo-random function of (seed, i), so a
// parallel_for can draw independent values with no shared state.

#pragma once

#include <cstdint>

namespace psi {

// Finalizer from MurmurHash3 / SplitMix64: a strong 64-bit mixing function.
constexpr std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash64(std::uint64_t seed, std::uint64_t i) {
  return hash64(seed ^ hash64(i));
}

// Counter-based generator with the interface the data generators want.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eed) : seed_(hash64(seed)) {}

  // i-th random 64-bit value of this stream.
  constexpr std::uint64_t ith(std::uint64_t i) const { return hash64(seed_, i); }

  // Derive an independent child stream (for nested structures).
  constexpr Rng split(std::uint64_t tag) const { return Rng(hash64(seed_, tag)); }

  // i-th value uniform in [0, bound). Bound must be > 0.
  constexpr std::uint64_t ith_bounded(std::uint64_t i, std::uint64_t bound) const {
    // 128-bit multiply keeps the distribution close to uniform without a loop.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(ith(i)) * bound) >> 64);
  }

  // i-th value uniform in [0, 1).
  constexpr double ith_double(std::uint64_t i) const {
    return static_cast<double>(ith(i) >> 11) * 0x1.0p-53;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace psi
