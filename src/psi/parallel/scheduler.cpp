#include "psi/parallel/scheduler.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>

#include "psi/telemetry/registry.h"
#include "psi/telemetry/telemetry.h"

namespace psi {

namespace {

thread_local int tl_worker_id = -1;

// Worker-behaviour telemetry: file-scope (not per-Scheduler) so the
// counters are cumulative across set_num_workers restarts and the
// registry gauges below never dereference a restarted pool. Every member
// vanishes under PSI_TELEMETRY_DISABLED — the static_assert pins the
// zero-cost claim at compile time.
struct SchedTelemetry {
#ifndef PSI_TELEMETRY_DISABLED
  std::atomic<std::uint64_t> submits{0};
  std::atomic<std::uint64_t> foreign_jobs{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
#endif
  void on_submit(bool foreign) {
#ifndef PSI_TELEMETRY_DISABLED
    submits.fetch_add(1, std::memory_order_relaxed);
    if (foreign) foreign_jobs.fetch_add(1, std::memory_order_relaxed);
#else
    (void)foreign;
#endif
  }
  void on_steal() {
#ifndef PSI_TELEMETRY_DISABLED
    steals.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  void on_park() {
#ifndef PSI_TELEMETRY_DISABLED
    parks.fetch_add(1, std::memory_order_relaxed);
#endif
  }
};
static_assert(telemetry::kEnabled || sizeof(SchedTelemetry) == 1,
              "scheduler telemetry must cost nothing when disabled");

SchedTelemetry g_sched_telemetry;

// Idempotently expose the counters as registry gauges. The callbacks read
// file-scope atomics only, so they stay valid forever and never lock.
void register_scheduler_gauges() {
  if constexpr (!telemetry::kEnabled) return;
  static std::once_flag once;
  std::call_once(once, [] {
    auto& reg = telemetry::StatsRegistry::instance();
    reg.register_gauge("scheduler.submits", [] {
      return Scheduler::telemetry_counters().submits;
    });
    reg.register_gauge("scheduler.foreign_jobs", [] {
      return Scheduler::telemetry_counters().foreign_jobs;
    });
    reg.register_gauge("scheduler.steals", [] {
      return Scheduler::telemetry_counters().steals;
    });
    reg.register_gauge("scheduler.parks", [] {
      return Scheduler::telemetry_counters().parks;
    });
  });
}

int env_num_workers() {
  if (const char* s = std::getenv("PSI_NUM_WORKERS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// Strict PSI_GRAIN parse: the whole string must be a positive decimal
// number. A malformed ("2k"), empty, zero, or negative value falls back to
// the default instead of silently becoming 0 or a truncated prefix (atol
// would accept "12abc" as 12 and map garbage to 0); values beyond
// kMaxGrain — including out-of-range parses — clamp to kMaxGrain, which
// already means "never fork".
std::size_t env_grain() {
  const char* s = std::getenv("PSI_GRAIN");
  if (s == nullptr || *s == '\0') return kDefaultGrain;
  if (s[0] < '0' || s[0] > '9') return kDefaultGrain;  // strtoull would
  errno = 0;                                           // skip space / '-'
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return kDefaultGrain;
  if (errno == ERANGE || v > kMaxGrain) return kMaxGrain;
  if (v == 0) return kDefaultGrain;
  return static_cast<std::size_t>(v);
}

// 0 = not yet resolved from the environment.
std::atomic<std::size_t> g_fork_grain{0};

}  // namespace

std::size_t fork_grain() {
  std::size_t g = g_fork_grain.load(std::memory_order_relaxed);
  if (g == 0) {
    g = env_grain();
    g_fork_grain.store(g, std::memory_order_relaxed);
  }
  return g;
}

void set_fork_grain(std::size_t n) {
  g_fork_grain.store(n == 0 ? env_grain() : n, std::memory_order_relaxed);
}

std::size_t update_fork_cutoff() { return 2 * fork_grain(); }

std::unique_ptr<Scheduler> Scheduler::global_;
std::mutex Scheduler::global_mu_;

Scheduler& Scheduler::instance() {
  register_scheduler_gauges();
  std::lock_guard<std::mutex> lock(global_mu_);
  if (!global_) {
    global_.reset(new Scheduler(env_num_workers()));
  }
  return *global_;
}

SchedulerCounters Scheduler::telemetry_counters() {
  SchedulerCounters c;
#ifndef PSI_TELEMETRY_DISABLED
  c.submits = g_sched_telemetry.submits.load(std::memory_order_relaxed);
  c.foreign_jobs =
      g_sched_telemetry.foreign_jobs.load(std::memory_order_relaxed);
  c.steals = g_sched_telemetry.steals.load(std::memory_order_relaxed);
  c.parks = g_sched_telemetry.parks.load(std::memory_order_relaxed);
#endif
  return c;
}

void Scheduler::set_num_workers(int p) {
  std::lock_guard<std::mutex> lock(global_mu_);
  global_.reset();  // joins old workers
  global_.reset(new Scheduler(std::max(1, p)));
}

int Scheduler::worker_id() { return tl_worker_id; }

Scheduler::Scheduler(int num_workers) {
  deques_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  // The constructing thread acts as worker 0 (it participates in execution
  // only inside par_do joins).
  tl_worker_id = 0;
  threads_.reserve(static_cast<std::size_t>(num_workers - 1));
  for (int i = 1; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Reset the main thread's id so a future Scheduler can re-register it.
  tl_worker_id = -1;
}

void Scheduler::submit(detail::Job* job) {
  const int id = worker_id();
  g_sched_telemetry.on_submit(/*foreign=*/id < 0);
  Deque& d = *deques_[id >= 0 ? static_cast<std::size_t>(id) : 0];
  {
    std::lock_guard<std::mutex> lock(d.mu);
    d.jobs.push_back(job);
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_one();
}

void Scheduler::wake_one() { sleep_cv_.notify_one(); }

bool Scheduler::try_claim(detail::Job* job) {
  const int id = worker_id();
  Deque& d = *deques_[id >= 0 ? static_cast<std::size_t>(id) : 0];
  std::lock_guard<std::mutex> lock(d.mu);
  if (!d.jobs.empty() && d.jobs.back() == job) {
    d.jobs.pop_back();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

detail::Job* Scheduler::pop_local() {
  const int id = worker_id();
  Deque& d = *deques_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.jobs.empty()) return nullptr;
  detail::Job* job = d.jobs.back();
  d.jobs.pop_back();
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  return job;
}

detail::Job* Scheduler::steal() {
  // One randomized sweep over the other deques, stealing from the top
  // (FIFO end) to grab large subtrees of the computation.
  thread_local std::minstd_rand rng(
      std::random_device{}() ^
      static_cast<unsigned>(std::hash<std::thread::id>{}(std::this_thread::get_id())));
  const std::size_t p = deques_.size();
  const std::size_t start = rng() % p;
  for (std::size_t k = 0; k < p; ++k) {
    Deque& d = *deques_[(start + k) % p];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.jobs.empty()) continue;
    detail::Job* job = d.jobs.front();
    d.jobs.pop_front();
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    g_sched_telemetry.on_steal();
    return job;
  }
  return nullptr;
}

void Scheduler::help_until(detail::Job& job) {
  // Stealing join for pool threads: keep making progress on other tasks
  // while the forked task is executed elsewhere. Foreign threads wait
  // passively (see the header comment).
  const bool pool = worker_id() >= 0;
  int idle_spins = 0;
  while (!job.done.load(std::memory_order_acquire)) {
    detail::Job* other = nullptr;
    if (pool) {
      other = pop_local();
      if (other == nullptr) other = steal();
    }
    if (other != nullptr) {
      other->run();
      idle_spins = 0;
    } else if (++idle_spins > 64) {
      if (pool) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  }
}

void Scheduler::worker_loop(int id) {
  tl_worker_id = id;
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    detail::Job* job = pop_local();
    if (job == nullptr) job = steal();
    if (job != nullptr) {
      job->run();
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Nothing to do: sleep until new work is pushed.
    g_sched_telemetry.on_park();
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    idle_spins = 0;
  }
  tl_worker_id = -1;
}

}  // namespace psi
