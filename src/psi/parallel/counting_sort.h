// PSI-Lib: parallel counting sort — the "Sieve" primitive.
//
// This is the data-movement engine of the P-Orth tree and Pkd-tree (paper
// Sec 3.1, Alg 1/2): given a small number K of buckets and a bucket id per
// element, stably reorder the sequence so each bucket is contiguous, and
// return the bucket offsets. It is a blocked two-pass counting sort:
//
//   pass 1: per-block histograms (blocks processed in parallel)
//   scan  : exclusive scan of the (bucket-major) block×bucket count matrix —
//           this is the "matrix transpose" of Alg 3 line 16
//   pass 2: per-block scatter into the output at the scanned offsets
//
// The scatter is stable (blocks preserve input order, and offsets are
// bucket-major then block-major), which the tree algorithms rely on.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"

namespace psi {

// Offsets of each bucket in the sieved output: bucket k occupies
// [offsets[k], offsets[k+1]).
using BucketOffsets = std::vector<std::size_t>;

// Stable counting sort of in[0..n) into out[0..n) by key(i) in [0, K).
// `key` receives the *index* into `in` so callers can classify lazily.
// Returns the K+1 bucket offsets.
template <typename T, typename KeyFn>
BucketOffsets counting_sort_into(const T* in, T* out, std::size_t n,
                                 std::size_t num_buckets, KeyFn&& key) {
  BucketOffsets offsets(num_buckets + 1, 0);
  if (n == 0) return offsets;

  // Block size: each block's histogram should stay cache-resident; the paper
  // picks the chunk so that 2^{λD} counters fit in cache (Sec A).
  const std::size_t p = static_cast<std::size_t>(num_workers());
  const std::size_t block =
      std::max<std::size_t>(fork_grain(), (n + 8 * p - 1) / (8 * p));
  const std::size_t num_blocks = (n + block - 1) / block;

  // counts is bucket-major: counts[k * num_blocks + b] so the exclusive scan
  // directly yields per-(bucket, block) output offsets.
  std::vector<std::size_t> counts(num_buckets * num_blocks, 0);
  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ++counts[key(i) * num_blocks + b];
    }
  });

  std::vector<std::size_t> scanned = counts;
  const std::size_t total = scan_exclusive(scanned);
  (void)total;

  parallel_for_blocked(n, block, [&](std::size_t b, std::size_t lo, std::size_t hi) {
    // Local cursor per bucket for this block.
    std::vector<std::size_t> cursor(num_buckets);
    for (std::size_t k = 0; k < num_buckets; ++k) {
      cursor[k] = scanned[k * num_blocks + b];
    }
    for (std::size_t i = lo; i < hi; ++i) {
      out[cursor[key(i)]++] = in[i];
    }
  });

  for (std::size_t k = 0; k < num_buckets; ++k) {
    offsets[k] = scanned[k * num_blocks];
  }
  offsets[num_buckets] = n;
  return offsets;
}

// In-place sieve: reorder data[0..n) so buckets are contiguous. Uses an
// internal scratch buffer (one extra pass of writes back).
template <typename T, typename KeyFn>
BucketOffsets sieve(T* data, std::size_t n, std::size_t num_buckets, KeyFn&& key) {
  std::vector<T> scratch(n);
  BucketOffsets offsets =
      counting_sort_into(data, scratch.data(), n, num_buckets, key);
  parallel_for(0, n, [&](std::size_t i) { data[i] = scratch[i]; });
  return offsets;
}

}  // namespace psi
