// PSI-Lib: dynamic N-way fork-join on top of the work-stealing scheduler.
//
// `par_do` forks exactly two closures and only parallelises when called from
// a pool thread — a foreign thread (the service's background committer, a
// client thread running a snapshot query) silently degrades to sequential
// execution. AsyncTask/TaskGroup close both gaps:
//
//  * AsyncTask is a single detached task with an explicit join. Spawning
//    enqueues the job for the pool (foreign threads park it on deque 0,
//    from which workers steal it); join() claims-and-runs the job if nobody
//    stole it, otherwise waits — executing other pool work meanwhile when
//    the joiner is itself a pool thread. The service's pipelined group
//    commit uses one AsyncTask per shard to overlap the standby replay of
//    batch i with everything that follows its publication.
//  * TaskGroup owns any number of AsyncTasks and joins them all in wait()
//    (rethrowing the first captured exception after every task finished).
//    Snapshot queries use it to fan out over shards from reader threads.
//
// With num_workers() == 1 a spawn runs the closure inline, so all users
// keep the library-wide sequential fast path.
//
// Lifetime rules: a task must be joined before its AsyncTask is destroyed
// (the destructor joins, swallowing exceptions — join explicitly to see
// them), and the pool must not be restarted (set_num_workers) while tasks
// are in flight.

#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "psi/parallel/scheduler.h"

namespace psi {

namespace detail {

// A heap-owned job wrapping a copyable callable (unlike the on-stack
// JobImpl of par_do, the spawner's frame may unwind before execution).
struct OwnedJob final : Job {
  explicit OwnedJob(std::function<void()> f) : fn(std::move(f)) {}
  void execute() override { fn(); }
  std::function<void()> fn;
};

}  // namespace detail

class AsyncTask {
 public:
  AsyncTask() = default;

  // Spawn: enqueue the callable for the pool, or run it inline (exceptions
  // propagating immediately) when the pool is sequential.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, AsyncTask>>>
  explicit AsyncTask(F&& f) {
    Scheduler& s = Scheduler::instance();
    if (s.num_workers() <= 1) {
      f();
      return;
    }
    job_ = std::make_unique<detail::OwnedJob>(
        std::function<void()>(std::forward<F>(f)));
    s.submit(job_.get());
  }

  AsyncTask(AsyncTask&&) noexcept = default;
  AsyncTask& operator=(AsyncTask&& o) {
    if (this != &o) {
      join();
      job_ = std::move(o.job_);
    }
    return *this;
  }
  AsyncTask(const AsyncTask&) = delete;
  AsyncTask& operator=(const AsyncTask&) = delete;

  ~AsyncTask() {
    try {
      join();
    } catch (...) {
      // Destruction discards the task's exception; join() to observe it.
    }
  }

  // An unjoined in-flight task? (False for inline-executed spawns.)
  bool valid() const { return job_ != nullptr; }

  // Join: run the job inline if it is still unclaimed, else wait for its
  // thief. Rethrows the task's exception. No-op when not valid().
  void join() {
    if (!job_) return;
    Scheduler& s = Scheduler::instance();
    if (s.try_claim(job_.get())) {
      job_->run();
    } else {
      s.help_until(*job_);
    }
    std::exception_ptr err = job_->error;
    job_.reset();  // releases the closure (and anything it captured)
    if (err) std::rethrow_exception(err);
  }

 private:
  std::unique_ptr<detail::OwnedJob> job_;
};

// Dynamic fork-join region: spawn any number of tasks, join them all.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() {
    try {
      wait();
    } catch (...) {
      // As with AsyncTask: call wait() to observe task exceptions.
    }
  }

  template <typename F>
  void spawn(F&& f) {
    tasks_.emplace_back(std::forward<F>(f));
  }

  std::size_t size() const { return tasks_.size(); }

  // Join every spawned task; rethrow the first exception once all have
  // finished. The group is reusable afterwards.
  void wait() {
    std::exception_ptr first;
    // Newest-first: the newest task is the likeliest to still sit at the
    // back of our deque, so join() claims it without waiting.
    for (auto it = tasks_.rbegin(); it != tasks_.rend(); ++it) {
      try {
        it->join();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    tasks_.clear();
    if (first) std::rethrow_exception(first);
  }

 private:
  std::deque<AsyncTask> tasks_;
};

}  // namespace psi
