// PSI-Lib: parallel comparison sorts.
//
//  * sample_sort      — parallel sample sort (the backbone of HybridSort,
//                       paper Alg 3): sample → pivots → blocked classify →
//                       transpose scatter → per-bucket sort.
//  * sample_sort_transform — the HybridSort generalisation: the input is a
//                       sequence of source elements, and the sort key record
//                       (e.g. the ⟨SFC code, id⟩ pair) is *computed on first
//                       touch* inside the classification pass, saving one
//                       round of reads/writes over precompute-then-sort.
//  * merge_sort       — stable parallel merge sort with parallel merge,
//                       used where stability matters and in tests.
//
// All sorts fall back to std::sort / std::stable_sort below a threshold.

#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <type_traits>
#include <vector>

#include "psi/parallel/counting_sort.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"
#include "psi/parallel/scheduler.h"

namespace psi {

namespace detail_sort {

inline constexpr std::size_t kSortSeqThreshold = 1 << 13;
inline constexpr std::size_t kOversample = 24;

// Number of sample-sort buckets for input size n.
inline std::size_t num_sort_buckets(std::size_t n) {
  std::size_t k = 2;
  while (k * k * kSortSeqThreshold < n && k < 512) k *= 2;
  return k;
}

}  // namespace detail_sort

// ---------------------------------------------------------------------------
// sample_sort_transform (HybridSort core)
// ---------------------------------------------------------------------------

// Produce the sorted sequence {make(i) : i in [0, n)} under `less`, computing
// make(i) exactly once, during the classification pass (first touch).
template <typename R, typename MakeFn, typename Less>
std::vector<R> sample_sort_transform(std::size_t n, MakeFn&& make, Less&& less) {
  std::vector<R> out;
  out.reserve(n);
  if (n == 0) return out;

  if (n <= detail_sort::kSortSeqThreshold || num_workers() <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(make(i));
    std::sort(out.begin(), out.end(), less);
    return out;
  }

  // Step 1: sample and select pivots (paper Alg 3 lines 6-7).
  const std::size_t num_buckets = detail_sort::num_sort_buckets(n);
  const std::size_t sample_size = num_buckets * detail_sort::kOversample;
  Rng rng(0x5a17e50);
  std::vector<R> sample(sample_size);
  parallel_for(0, sample_size,
               [&](std::size_t i) { sample[i] = make(rng.ith_bounded(i, n)); });
  std::sort(sample.begin(), sample.end(), less);
  std::vector<R> pivots(num_buckets - 1);
  for (std::size_t i = 0; i + 1 < num_buckets; ++i) {
    pivots[i] = sample[(i + 1) * detail_sort::kOversample];
  }

  // Steps 2-3: blocked classification with on-first-touch record creation,
  // then transpose scatter (Alg 3 lines 8-16). We materialise the records
  // into `made` in input order while counting, then counting_sort_into
  // scatters them bucket-contiguously.
  std::vector<R> made(n);
  parallel_for(0, n, [&](std::size_t i) { made[i] = make(i); });
  out.resize(n);
  std::vector<std::size_t> bucket_of(n);
  parallel_for(0, n, [&](std::size_t i) {
    bucket_of[i] = static_cast<std::size_t>(
        std::upper_bound(pivots.begin(), pivots.end(), made[i], less) -
        pivots.begin());
  });
  BucketOffsets offsets = counting_sort_into(
      made.data(), out.data(), n, num_buckets,
      [&](std::size_t i) { return bucket_of[i]; });

  // Step 4: sort each bucket in parallel (Alg 3 lines 17-18).
  parallel_for(
      0, num_buckets,
      [&](std::size_t k) {
        auto first = out.begin() + static_cast<std::ptrdiff_t>(offsets[k]);
        auto last = out.begin() + static_cast<std::ptrdiff_t>(offsets[k + 1]);
        std::sort(first, last, less);
      },
      1);
  return out;
}

// ---------------------------------------------------------------------------
// sample_sort (in place, by value)
// ---------------------------------------------------------------------------

template <typename T, typename Less = std::less<T>>
void sample_sort(std::vector<T>& v, Less&& less = Less{}) {
  if (v.size() <= detail_sort::kSortSeqThreshold || num_workers() <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  std::vector<T> sorted = sample_sort_transform<T>(
      v.size(), [&](std::size_t i) { return v[i]; }, less);
  v.swap(sorted);
}

// ---------------------------------------------------------------------------
// merge_sort (stable)
// ---------------------------------------------------------------------------

namespace detail_sort {

// Parallel merge of [a_lo,a_hi) and [b_lo,b_hi) from src into dst at d_lo,
// splitting the larger run at its midpoint and binary-searching the other.
template <typename T, typename Less>
void parallel_merge(const std::vector<T>& src, std::vector<T>& dst,
                    std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
                    std::size_t b_hi, std::size_t d_lo, Less& less) {
  const std::size_t na = a_hi - a_lo;
  const std::size_t nb = b_hi - b_lo;
  if (na + nb <= kSortSeqThreshold || num_workers() <= 1) {
    std::merge(src.begin() + static_cast<std::ptrdiff_t>(a_lo),
               src.begin() + static_cast<std::ptrdiff_t>(a_hi),
               src.begin() + static_cast<std::ptrdiff_t>(b_lo),
               src.begin() + static_cast<std::ptrdiff_t>(b_hi),
               dst.begin() + static_cast<std::ptrdiff_t>(d_lo), less);
    return;
  }
  if (na < nb) {
    // Split B at its midpoint; find the stable split point in A
    // (first element NOT less than the B pivot keeps A-before-B order).
    const std::size_t b_mid = b_lo + nb / 2;
    const std::size_t a_mid = static_cast<std::size_t>(
        std::upper_bound(src.begin() + static_cast<std::ptrdiff_t>(a_lo),
                         src.begin() + static_cast<std::ptrdiff_t>(a_hi),
                         src[b_mid], less) -
        src.begin());
    const std::size_t d_mid = d_lo + (a_mid - a_lo) + (b_mid - b_lo);
    par_do(
        [&] { parallel_merge(src, dst, a_lo, a_mid, b_lo, b_mid, d_lo, less); },
        [&] { parallel_merge(src, dst, a_mid, a_hi, b_mid, b_hi, d_mid, less); });
  } else {
    const std::size_t a_mid = a_lo + na / 2;
    const std::size_t b_mid = static_cast<std::size_t>(
        std::lower_bound(src.begin() + static_cast<std::ptrdiff_t>(b_lo),
                         src.begin() + static_cast<std::ptrdiff_t>(b_hi),
                         src[a_mid], less) -
        src.begin());
    const std::size_t d_mid = d_lo + (a_mid - a_lo) + (b_mid - b_lo);
    par_do(
        [&] { parallel_merge(src, dst, a_lo, a_mid, b_lo, b_mid, d_lo, less); },
        [&] { parallel_merge(src, dst, a_mid, a_hi, b_mid, b_hi, d_mid, less); });
  }
}

// Sort src[lo,hi); result lands in src if !to_buf, else in buf.
template <typename T, typename Less>
void merge_sort_rec(std::vector<T>& src, std::vector<T>& buf, std::size_t lo,
                    std::size_t hi, bool to_buf, Less& less) {
  const std::size_t n = hi - lo;
  if (n <= kSortSeqThreshold || num_workers() <= 1) {
    std::stable_sort(src.begin() + static_cast<std::ptrdiff_t>(lo),
                     src.begin() + static_cast<std::ptrdiff_t>(hi), less);
    if (to_buf) {
      std::copy(src.begin() + static_cast<std::ptrdiff_t>(lo),
                src.begin() + static_cast<std::ptrdiff_t>(hi),
                buf.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    return;
  }
  const std::size_t mid = lo + n / 2;
  par_do([&] { merge_sort_rec(src, buf, lo, mid, !to_buf, less); },
         [&] { merge_sort_rec(src, buf, mid, hi, !to_buf, less); });
  // Children left their results in the *other* buffer; merge into ours.
  if (to_buf) {
    parallel_merge(src, buf, lo, mid, mid, hi, lo, less);
  } else {
    parallel_merge(buf, src, lo, mid, mid, hi, lo, less);
  }
}

}  // namespace detail_sort

template <typename T, typename Less = std::less<T>>
void merge_sort(std::vector<T>& v, Less&& less = Less{}) {
  if (v.size() <= detail_sort::kSortSeqThreshold || num_workers() <= 1) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  std::vector<T> buf(v.size());
  detail_sort::merge_sort_rec(v, buf, 0, v.size(), false, less);
}

}  // namespace psi
