// PSI-Lib api layer: the formal index contract.
//
// `BatchDynamicIndex` pins down, as a C++20 concept, the surface every
// PSI-Lib backend provides and every generic layer (service, bench harness,
// AnyIndex) is allowed to rely on:
//
//   maintenance   build / batch_insert / batch_delete
//   cardinality   size / empty
//   bounds        bounds() — tight bbox of the contents (shard pruning)
//   queries       knn / range_count / range_list / ball_count / ball_list
//   streaming     range_visit / ball_visit / knn_visit into a sink
//                 (query.h; the *_list/knn forms are adapters over these)
//   extraction    flatten() — multiset of stored points (rebuilds, tests)
//
// The concept is deliberately expression-based: `build(pts)` must accept a
// const lvalue vector, but backends are free to take it by value (and move
// from a copy) or by const reference. Every backend in the library is
// static_assert-checked against this concept in conformance.h, so drift
// between an index and the service layer is a compile error, not a runtime
// surprise in a sharded store.

#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::api {

namespace detail {
template <typename I>
using point_of = typename I::point_t;
template <typename I>
using box_of = typename I::box_t;
template <typename I>
using sink_of =
    PointSink<typename I::point_t::coord_t, I::point_t::kDim>;
template <typename I>
using par_sink_of =
    ConcurrentSink<typename I::point_t::coord_t, I::point_t::kDim>;
template <typename I>
using par_knn_of =
    ConcurrentKnnBuffer<typename I::point_t::coord_t, I::point_t::kDim>;
}  // namespace detail

// The batch-dynamic spatial index contract (see header comment).
template <typename I>
concept BatchDynamicIndex =
    std::movable<I> &&
    requires(I& x, const I& c, const std::vector<detail::point_of<I>>& pts,
             const detail::point_of<I>& q, const detail::box_of<I>& b,
             std::size_t k, double radius, detail::sink_of<I> sink) {
      typename I::point_t;
      typename I::box_t;

      // Maintenance.
      x.build(pts);
      x.batch_insert(pts);
      x.batch_delete(pts);

      // Cardinality and bounds.
      { c.size() } -> std::convertible_to<std::size_t>;
      { c.empty() } -> std::convertible_to<bool>;
      { c.bounds() } -> std::convertible_to<detail::box_of<I>>;

      // Materialising queries (adapters over the visits below).
      { c.knn(q, k) } -> std::convertible_to<std::vector<detail::point_of<I>>>;
      { c.range_count(b) } -> std::convertible_to<std::size_t>;
      {
        c.range_list(b)
      } -> std::convertible_to<std::vector<detail::point_of<I>>>;
      { c.ball_count(q, radius) } -> std::convertible_to<std::size_t>;
      {
        c.ball_list(q, radius)
      } -> std::convertible_to<std::vector<detail::point_of<I>>>;

      // Streaming queries: results flow into the sink, which may stop the
      // traversal early by returning false (query.h).
      c.range_visit(b, sink);
      c.ball_visit(q, radius, sink);
      c.knn_visit(q, k, sink);

      // Extraction.
      { c.flatten() } -> std::convertible_to<std::vector<detail::point_of<I>>>;
    };

// Optional capability: native parallel subtree fan-out for the listing
// and kNN queries, feeding a ConcurrentSink (listing) or a shared
// ConcurrentKnnBuffer (kNN) from many workers at once (query.h).
// Backends without it are served by the sequential shims in query.h
// (range_visit_par/ball_visit_par/knn_visit_par free functions), so
// generic layers call the shim and never branch on this concept
// themselves — it exists so conformance.h can pin down *which* backends
// carry the native fan-out.
template <typename I>
concept ParallelQueryIndex =
    BatchDynamicIndex<I> &&
    requires(const I& c, const detail::point_of<I>& q,
             const detail::box_of<I>& b, double radius, std::size_t k,
             detail::par_sink_of<I>& sink, detail::par_knn_of<I>& kbuf) {
      c.range_visit_par(b, sink);
      c.ball_visit_par(q, radius, sink);
      c.knn_visit_par(q, k, kbuf);
    };

// Optional capability: relocatable arena storage (core/arena). A
// relocatable backend keeps its whole structure in one contiguous,
// offset-linked arena and can emit/adopt it as a self-validating image
// (length-prefixed, CRC-framed; chunk_pool.h), which turns shard handoff
// and checkpoint restart into O(bytes) memcpys instead of per-point
// rebuilds. adopt_arena must validate before install: a corrupt image
// throws and leaves no partial state visible. Generic layers (net,
// durability, ShardStore) branch on this concept — or, through AnyIndex,
// on its runtime `relocatable()` flag — and fall back to the point-wise
// flatten()/build() codec for everything else.
template <typename I>
concept RelocatableIndex =
    BatchDynamicIndex<I> &&
    requires(I& x, const I& c, const std::uint8_t* data, std::size_t n) {
      { c.arena_bytes() } -> std::convertible_to<std::size_t>;
      { c.arena_chunks() } -> std::convertible_to<std::size_t>;
      {
        c.serialize_arena()
      } -> std::convertible_to<std::vector<std::uint8_t>>;
      x.adopt_arena(data, n);
    };

}  // namespace psi::api
