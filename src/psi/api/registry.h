// PSI-Lib api layer: name-based backend construction.
//
// BackendRegistry<Coord, D> maps backend names to AnyIndex factories, so
// callers pick index structures at *runtime* — a bench flag
// (`--backend spac-h`), a config file, or the index advisor's per-shard
// recommendation feeding a heterogeneous SpatialService. The built-in
// catalogue mirrors psi.h:
//
//   porth    P-Orth tree (paper Sec 3)
//   spac-h   SPaC tree, Hilbert curve (paper Sec 4)
//   spac-z   SPaC tree, Morton curve (paper Sec 4)
//   cpam-z   SPaC tree in CPAM-baseline mode (total order, unfused build)
//   pkd      parallel kd-tree baseline
//   zd       Morton-sorted orth-tree baseline
//   rtree    sequential quadratic R-tree baseline
//   log      log-structured (logarithmic method) baseline
//   bhl      rebuild-on-update static kd-tree baseline
//   brute    O(n) oracle
//
// `add` installs or overrides an entry (projects can register their own
// backends or parameterised variants). The registry is a process-wide
// singleton per <Coord, D>; mutation is expected at startup, before
// concurrent use.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "psi/api/any_index.h"
#include "psi/baselines/brute_force.h"
#include "psi/baselines/log_structured.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/baselines/rtree.h"
#include "psi/baselines/zd_tree.h"
#include "psi/core/porth/porth_tree.h"
#include "psi/core/spac/spac_tree.h"

namespace psi::api {

template <typename Coord, int D>
class BackendRegistry {
 public:
  using any_index_t = AnyIndex<Coord, D>;
  using factory_t = std::function<any_index_t()>;

  static BackendRegistry& instance() {
    static BackendRegistry reg;
    return reg;
  }

  // Install (or override) a named backend factory.
  void add(std::string name, factory_t factory) {
    factories_[std::move(name)] = std::move(factory);
  }

  bool contains(const std::string& name) const {
    return factories_.count(name) != 0;
  }

  // Construct a fresh index of the named backend; throws std::out_of_range
  // with the catalogue in the message for unknown names.
  any_index_t make(const std::string& name) const {
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::out_of_range("psi::api::BackendRegistry: unknown backend '" +
                              name + "' (known: " + known + ")");
    }
    return it->second();
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [n, f] : factories_) out.push_back(n);
    return out;
  }

 private:
  BackendRegistry() {
    add("porth", [] { return any_index_t(POrthTree<Coord, D>{}, "porth"); });
    add("spac-h", [] {
      return any_index_t(SpacHTree<Coord, D>{}, "spac-h");
    });
    add("spac-z", [] {
      return any_index_t(SpacZTree<Coord, D>{}, "spac-z");
    });
    add("cpam-z", [] {
      return any_index_t(SpacZTree<Coord, D>(cpam_params()), "cpam-z");
    });
    add("pkd", [] { return any_index_t(PkdTree<Coord, D>{}, "pkd"); });
    add("zd", [] { return any_index_t(ZdTree<Coord, D>{}, "zd"); });
    add("rtree", [] { return any_index_t(RTree<Coord, D>{}, "rtree"); });
    add("log", [] { return any_index_t(LogTree<Coord, D>{}, "log"); });
    add("bhl", [] { return any_index_t(BhlTree<Coord, D>{}, "bhl"); });
    add("brute", [] {
      return any_index_t(BruteForceIndex<Coord, D>{}, "brute");
    });
  }

  std::map<std::string, factory_t> factories_;
};

using BackendRegistry2 = BackendRegistry<std::int64_t, 2>;
using BackendRegistry3 = BackendRegistry<std::int64_t, 3>;

}  // namespace psi::api
