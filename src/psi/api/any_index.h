// PSI-Lib api layer: AnyIndex — a type-erased batch-dynamic index handle.
//
// AnyIndex<Coord, D> wraps any backend satisfying BatchDynamicIndex behind
// one concrete type, so runtime-chosen and *heterogeneous* backends can
// flow through code compiled once — most importantly the service layer: a
// SpatialService<AnyIndex<...>> can run SPaC-Z on its hot shards and the
// log-structured baseline on its cold shards from a single per-shard
// factory (see service.h), and shard split/merge migrates points across
// backend types through the common flatten()/build() surface.
//
// Dispatch is one hand-rolled vtable shared per wrapped type (a static
// constexpr table of plain function pointers) and one heap allocation per
// wrapped index — no std::function, no per-operation allocation, no RTTI.
// Streaming queries cross the virtual boundary as PointSink (query.h), a
// two-word function_ref, so a range_visit through AnyIndex costs one
// indirect call per *visit* plus one per *match*, and still terminates
// early when the sink asks to.
//
// Cost model: the virtual hop is ~1 indirect call per operation — noise for
// batch updates and whole queries, measurable only for per-point hot loops
// (which the sink API batches away). Monomorphic services
// (SpatialService<SpacZTree2>) keep the fully templated zero-overhead path;
// AnyIndex is the flexibility tier, not a replacement.
//
// AnyIndex itself models BatchDynamicIndex (checked in conformance.h), so
// every generic layer treats it exactly like a concrete backend. It is
// move-only; a default-constructed AnyIndex wraps an empty BruteForceIndex
// so that default-constructed services stay safe (production factories
// always install a real backend).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "psi/api/concepts.h"
#include "psi/api/query.h"
#include "psi/baselines/brute_force.h"
#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::api {

template <typename Coord, int D>
class AnyIndex {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using sink_t = PointSink<Coord, D>;
  using par_sink_t = ConcurrentSink<Coord, D>;
  using par_knn_t = ConcurrentKnnBuffer<Coord, D>;

  AnyIndex() : AnyIndex(BruteForceIndex<Coord, D>{}, "brute") {}

  template <typename Index>
    requires BatchDynamicIndex<std::remove_cvref_t<Index>> &&
             (!std::same_as<std::remove_cvref_t<Index>, AnyIndex>)
  explicit AnyIndex(Index&& index, std::string backend_name = "index")
      : self_(new std::remove_cvref_t<Index>(std::forward<Index>(index))),
        vt_(&kVTable<std::remove_cvref_t<Index>>),
        name_(std::move(backend_name)) {}

  ~AnyIndex() { reset(); }

  AnyIndex(AnyIndex&& o) noexcept
      : self_(std::exchange(o.self_, nullptr)),
        vt_(std::exchange(o.vt_, nullptr)),
        name_(std::move(o.name_)) {}
  AnyIndex& operator=(AnyIndex&& o) noexcept {
    if (this != &o) {
      reset();
      self_ = std::exchange(o.self_, nullptr);
      vt_ = std::exchange(o.vt_, nullptr);
      name_ = std::move(o.name_);
    }
    return *this;
  }
  AnyIndex(const AnyIndex&) = delete;
  AnyIndex& operator=(const AnyIndex&) = delete;

  // Name the index was registered/wrapped under ("spac-z", "log", ...).
  const std::string& backend_name() const { return name_; }

  // ---- maintenance ----------------------------------------------------
  void build(const std::vector<point_t>& pts) { vt_->build(self_, pts); }
  void batch_insert(const std::vector<point_t>& pts) {
    vt_->batch_insert(self_, pts);
  }
  void batch_delete(const std::vector<point_t>& pts) {
    vt_->batch_delete(self_, pts);
  }

  // ---- cardinality / bounds -------------------------------------------
  std::size_t size() const { return vt_->size(self_); }
  bool empty() const { return size() == 0; }
  box_t bounds() const { return vt_->bounds(self_); }

  // ---- streaming queries ----------------------------------------------
  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    vt_->range_visit(self_, query, sink_t(sink));
  }
  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    vt_->ball_visit(self_, q, radius, sink_t(sink));
  }
  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    vt_->knn_visit(self_, q, k, sink_t(sink));
  }

  // ---- parallel streaming queries -------------------------------------
  // ConcurrentSink is a concrete type, so it crosses the vtable boundary
  // directly (by pointer); the wrapped backend's native fan-out is used
  // when it has one, the sequential shim (query.h) otherwise — AnyIndex
  // therefore always models ParallelQueryIndex, with backend-dependent
  // parallelism underneath.
  void range_visit_par(const box_t& query, par_sink_t& sink) const {
    vt_->range_visit_par(self_, query, &sink);
  }
  void ball_visit_par(const point_t& q, double radius,
                      par_sink_t& sink) const {
    vt_->ball_visit_par(self_, q, radius, &sink);
  }
  void knn_visit_par(const point_t& q, std::size_t k, par_knn_t& buf) const {
    vt_->knn_visit_par(self_, q, k, &buf);
  }

  // ---- materialising adapters -----------------------------------------
  std::size_t range_count(const box_t& query) const {
    return vt_->range_count(self_, query);
  }
  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, collect_into(out));
    return out;
  }
  std::size_t ball_count(const point_t& q, double radius) const {
    return vt_->ball_count(self_, q, radius);
  }
  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, collect_into(out));
    return out;
  }
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const { return vt_->flatten(self_); }

  // ---- relocatable-arena pass-through ---------------------------------
  // The RelocatableIndex capability (concepts.h) survives type erasure as
  // nullable vtable slots: relocatable() reports whether the wrapped
  // backend carries it, and the arena calls throw std::logic_error when it
  // does not — callers (handoff, checkpoint) branch on relocatable() and
  // fall back to the point-wise codec.
  bool relocatable() const { return vt_->serialize_arena != nullptr; }
  std::size_t arena_bytes() const {
    return relocatable() ? vt_->arena_bytes(self_) : 0;
  }
  std::size_t arena_chunks() const {
    return relocatable() ? vt_->arena_chunks(self_) : 0;
  }
  std::vector<std::uint8_t> serialize_arena() const {
    if (!relocatable()) {
      throw std::logic_error("AnyIndex: backend is not relocatable");
    }
    return vt_->serialize_arena(self_);
  }
  void adopt_arena(const std::uint8_t* data, std::size_t n) {
    if (!relocatable()) {
      throw std::logic_error("AnyIndex: backend is not relocatable");
    }
    vt_->adopt_arena(self_, data, n);
  }
  void adopt_arena(const std::vector<std::uint8_t>& image) {
    adopt_arena(image.data(), image.size());
  }

 private:
  struct VTable {
    void (*destroy)(void*) noexcept;
    void (*build)(void*, const std::vector<point_t>&);
    void (*batch_insert)(void*, const std::vector<point_t>&);
    void (*batch_delete)(void*, const std::vector<point_t>&);
    std::size_t (*size)(const void*);
    box_t (*bounds)(const void*);
    std::size_t (*range_count)(const void*, const box_t&);
    std::size_t (*ball_count)(const void*, const point_t&, double);
    void (*range_visit)(const void*, const box_t&, sink_t);
    void (*ball_visit)(const void*, const point_t&, double, sink_t);
    void (*knn_visit)(const void*, const point_t&, std::size_t, sink_t);
    void (*range_visit_par)(const void*, const box_t&, par_sink_t*);
    void (*ball_visit_par)(const void*, const point_t&, double, par_sink_t*);
    void (*knn_visit_par)(const void*, const point_t&, std::size_t,
                          par_knn_t*);
    std::vector<point_t> (*flatten)(const void*);
    // Null for backends without the RelocatableIndex capability.
    std::size_t (*arena_bytes)(const void*);
    std::size_t (*arena_chunks)(const void*);
    std::vector<std::uint8_t> (*serialize_arena)(const void*);
    void (*adopt_arena)(void*, const std::uint8_t*, std::size_t);
  };

  template <typename Index>
  static const Index& as(const void* p) {
    return *static_cast<const Index*>(p);
  }
  template <typename Index>
  static Index& as(void* p) {
    return *static_cast<Index*>(p);
  }

  template <typename Index>
  static constexpr VTable kVTable = {
      /*destroy=*/[](void* p) noexcept { delete static_cast<Index*>(p); },
      /*build=*/
      [](void* p, const std::vector<point_t>& pts) { as<Index>(p).build(pts); },
      /*batch_insert=*/
      [](void* p, const std::vector<point_t>& pts) {
        as<Index>(p).batch_insert(pts);
      },
      /*batch_delete=*/
      [](void* p, const std::vector<point_t>& pts) {
        as<Index>(p).batch_delete(pts);
      },
      /*size=*/[](const void* p) { return as<Index>(p).size(); },
      /*bounds=*/[](const void* p) { return as<Index>(p).bounds(); },
      /*range_count=*/
      [](const void* p, const box_t& b) { return as<Index>(p).range_count(b); },
      /*ball_count=*/
      [](const void* p, const point_t& q, double r) {
        return as<Index>(p).ball_count(q, r);
      },
      /*range_visit=*/
      [](const void* p, const box_t& b, sink_t sink) {
        as<Index>(p).range_visit(b, sink);
      },
      /*ball_visit=*/
      [](const void* p, const point_t& q, double r, sink_t sink) {
        as<Index>(p).ball_visit(q, r, sink);
      },
      /*knn_visit=*/
      [](const void* p, const point_t& q, std::size_t k, sink_t sink) {
        as<Index>(p).knn_visit(q, k, sink);
      },
      /*range_visit_par=*/
      [](const void* p, const box_t& b, par_sink_t* sink) {
        api::range_visit_par(as<Index>(p), b, *sink);
      },
      /*ball_visit_par=*/
      [](const void* p, const point_t& q, double r, par_sink_t* sink) {
        api::ball_visit_par(as<Index>(p), q, r, *sink);
      },
      /*knn_visit_par=*/
      [](const void* p, const point_t& q, std::size_t k, par_knn_t* buf) {
        api::knn_visit_par(as<Index>(p), q, k, *buf);
      },
      /*flatten=*/[](const void* p) { return as<Index>(p).flatten(); },
      /*arena_bytes=*/
      [] {
        if constexpr (RelocatableIndex<Index>) {
          return +[](const void* p) { return as<Index>(p).arena_bytes(); };
        } else {
          return static_cast<std::size_t (*)(const void*)>(nullptr);
        }
      }(),
      /*arena_chunks=*/
      [] {
        if constexpr (RelocatableIndex<Index>) {
          return +[](const void* p) { return as<Index>(p).arena_chunks(); };
        } else {
          return static_cast<std::size_t (*)(const void*)>(nullptr);
        }
      }(),
      /*serialize_arena=*/
      [] {
        if constexpr (RelocatableIndex<Index>) {
          return +[](const void* p) { return as<Index>(p).serialize_arena(); };
        } else {
          return static_cast<std::vector<std::uint8_t> (*)(const void*)>(
              nullptr);
        }
      }(),
      /*adopt_arena=*/
      [] {
        if constexpr (RelocatableIndex<Index>) {
          return +[](void* p, const std::uint8_t* d, std::size_t n) {
            as<Index>(p).adopt_arena(d, n);
          };
        } else {
          return static_cast<void (*)(void*, const std::uint8_t*,
                                      std::size_t)>(nullptr);
        }
      }(),
  };

  void reset() noexcept {
    if (self_ != nullptr) vt_->destroy(self_);
    self_ = nullptr;
    vt_ = nullptr;
  }

  void* self_ = nullptr;
  const VTable* vt_ = nullptr;
  std::string name_;
};

using AnyIndex2 = AnyIndex<std::int64_t, 2>;
using AnyIndex3 = AnyIndex<std::int64_t, 3>;

}  // namespace psi::api
