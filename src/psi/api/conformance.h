// PSI-Lib api layer: compile-time conformance checks.
//
// Every backend in the library is asserted against the BatchDynamicIndex
// concept here, in 2D and 3D, plus AnyIndex itself (the contract must
// survive type erasure). Including psi.h therefore proves, at compile time,
// that every index the service layer might shard over still speaks the
// full contract — adding a backend or evolving the contract breaks the
// build here, not a downstream user at runtime.

#pragma once

#include <cstdint>

#include "psi/api/any_index.h"
#include "psi/api/concepts.h"
#include "psi/baselines/brute_force.h"
#include "psi/baselines/log_structured.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/baselines/rtree.h"
#include "psi/baselines/zd_tree.h"
#include "psi/core/porth/porth_tree.h"
#include "psi/core/spac/spac_tree.h"

namespace psi::api {

// The paper's two contributions.
static_assert(BatchDynamicIndex<POrthTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<POrthTree<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<SpacHTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<SpacHTree<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<SpacZTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<SpacZTree<std::int64_t, 3>>);

// Baselines.
static_assert(BatchDynamicIndex<PkdTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<PkdTree<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<ZdTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<ZdTree<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<RTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<RTree<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<LogTree<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<BhlTree<std::int64_t, 2>>);

// Oracle and the type-erased handle.
static_assert(BatchDynamicIndex<BruteForceIndex<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<BruteForceIndex<std::int64_t, 3>>);
static_assert(BatchDynamicIndex<AnyIndex<std::int64_t, 2>>);
static_assert(BatchDynamicIndex<AnyIndex<std::int64_t, 3>>);

// Native parallel subtree fan-out (ParallelQueryIndex — range/ball sinks
// plus the shared-bound kNN buffer): the paper's two contributions and the
// two tree baselines carry it; the remaining backends are served by the
// sequential shims in query.h. AnyIndex always models the capability — its
// vtable routes through the shims, so the wrapped backend's native fan-out
// is used exactly when it exists.
static_assert(ParallelQueryIndex<POrthTree<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<POrthTree<std::int64_t, 3>>);
static_assert(ParallelQueryIndex<SpacHTree<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<SpacHTree<std::int64_t, 3>>);
static_assert(ParallelQueryIndex<SpacZTree<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<SpacZTree<std::int64_t, 3>>);
static_assert(ParallelQueryIndex<ZdTree<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<ZdTree<std::int64_t, 3>>);
static_assert(ParallelQueryIndex<PkdTree<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<PkdTree<std::int64_t, 3>>);
static_assert(ParallelQueryIndex<AnyIndex<std::int64_t, 2>>);
static_assert(ParallelQueryIndex<AnyIndex<std::int64_t, 3>>);

// Relocatable arena storage (core/arena): the SPaC-tree family and the
// Zd-tree baseline keep all nodes in one offset-linked chunk pool, so
// handoff and checkpoint move them as raw CRC-framed images. The other
// baselines stay heap-allocated and take the point-wise codec path.
// AnyIndex carries the capability syntactically; whether a given instance
// actually relocates is its runtime relocatable() flag.
static_assert(RelocatableIndex<SpacHTree<std::int64_t, 2>>);
static_assert(RelocatableIndex<SpacHTree<std::int64_t, 3>>);
static_assert(RelocatableIndex<SpacZTree<std::int64_t, 2>>);
static_assert(RelocatableIndex<SpacZTree<std::int64_t, 3>>);
static_assert(RelocatableIndex<ZdTree<std::int64_t, 2>>);
static_assert(RelocatableIndex<ZdTree<std::int64_t, 3>>);
static_assert(RelocatableIndex<AnyIndex<std::int64_t, 2>>);
static_assert(RelocatableIndex<AnyIndex<std::int64_t, 3>>);
static_assert(!RelocatableIndex<RTree<std::int64_t, 2>>);
static_assert(!RelocatableIndex<POrthTree<std::int64_t, 2>>);
static_assert(!RelocatableIndex<BruteForceIndex<std::int64_t, 2>>);

}  // namespace psi::api
