// PSI-Lib api layer: the redesigned read surface.
//
// One query description + one read-options policy, shared by every read
// facade in the library. Instead of a method per (shape × result × cache)
// combination — the `range_list` / `range_list_cached` / `ball_count_cached`
// / `knn_cached` zoo that accreted on SpatialService and DistributedService —
// a caller builds a QueryDesc (what to ask), picks ReadOptions (how to read
// it), and streams the answer into a sink:
//
//   svc.query(QueryDesc::range_list(box), ReadOptions::read_committed(), sink)
//
// The legacy names survive as thin adapters over this entry point.
//
// ReadOptions names the *consistency point* of a read:
//
//   * ReadCommitted — the read runs against the latest published epoch.
//     A multi-shard fan-out may observe different epochs per shard if a
//     commit lands mid-query (the distributed layer detects and retries,
//     see distributed_service.h).
//   * PinnedEpoch(e) — the read runs against the retained view of epoch
//     `e`, exactly as published: snapshot-consistent across every shard,
//     repeatable, and stable under concurrent writers. Epochs are retained
//     to a bounded configurable depth (ServiceConfig::retained_epochs);
//     reading past the horizon raises EpochRetired rather than blocking
//     the committer.
//
// The cache policy is orthogonal: kUse routes the read through the
// service's result cache (query_cache.h) under the usual coverage
// validation, kBypass always recomputes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::api {

// Which published state a read observes. See header comment.
enum class Consistency : std::uint8_t {
  kReadCommitted = 0,
  kPinnedEpoch = 1,
};

// Whether a read may be served from / admitted to the result cache.
enum class CachePolicy : std::uint8_t {
  kBypass = 0,
  kUse = 1,
};

// The "how" of a read: consistency point + cache policy. Cheap value type;
// build with the named constructors.
struct ReadOptions {
  Consistency consistency = Consistency::kReadCommitted;
  // The pinned epoch; meaningful only when consistency == kPinnedEpoch.
  std::uint64_t pinned_epoch = 0;
  CachePolicy cache = CachePolicy::kBypass;
  // Stream list results over the wire in bounded chunks (wire v3
  // kQueryChunk frames under credit-based backpressure) instead of one
  // materialised reply per node. Only meaningful for list kinds on the
  // distributed facade; the in-process path delivers points one at a time
  // regardless. Incompatible with cache == kUse (caching requires the
  // materialised result); the cache policy wins.
  bool stream = false;

  static constexpr ReadOptions read_committed() { return {}; }
  static constexpr ReadOptions pinned(std::uint64_t epoch) {
    ReadOptions o;
    o.consistency = Consistency::kPinnedEpoch;
    o.pinned_epoch = epoch;
    return o;
  }
  // Same options with the cache enabled (fluent: `pinned(e).cached()`).
  constexpr ReadOptions cached() const {
    ReadOptions o = *this;
    o.cache = CachePolicy::kUse;
    return o;
  }
  // Same options with wire streaming enabled (fluent: `pinned(e).streamed()`).
  constexpr ReadOptions streamed() const {
    ReadOptions o = *this;
    o.stream = true;
    return o;
  }
  constexpr bool is_pinned() const {
    return consistency == Consistency::kPinnedEpoch;
  }
};

// A pinned read asked for an epoch older than the retention horizon (or,
// distributed, for a shard version no retained host view still holds).
// Retention is bounded by design — the committer drops the oldest retained
// view rather than ever blocking on a pinned reader — so long-lived pins
// must be prepared to re-pin and retry.
class EpochRetired : public std::runtime_error {
 public:
  explicit EpochRetired(std::uint64_t epoch)
      : std::runtime_error("epoch " + std::to_string(epoch) +
                           " retired beyond the retention horizon"),
        epoch_(epoch) {}
  std::uint64_t epoch() const { return epoch_; }

 private:
  std::uint64_t epoch_;
};

// The "what" of a read: one value describing any of the library's query
// shapes. List kinds stream their matches into the caller's sink; count
// kinds touch no sink and return the count.
template <typename Coord, int D>
struct QueryDesc {
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  enum class Kind : std::uint8_t {
    kRangeList = 0,
    kRangeCount = 1,
    kBallList = 2,
    kBallCount = 3,
    kKnn = 4,
  };

  Kind kind = Kind::kRangeCount;
  box_t box{};       // range kinds
  point_t center{};  // ball + knn kinds
  double radius = 0;
  std::size_t k = 0;  // knn

  static QueryDesc range_list(const box_t& b) {
    QueryDesc q;
    q.kind = Kind::kRangeList;
    q.box = b;
    return q;
  }
  static QueryDesc range_count(const box_t& b) {
    QueryDesc q;
    q.kind = Kind::kRangeCount;
    q.box = b;
    return q;
  }
  static QueryDesc ball_list(const point_t& c, double radius) {
    QueryDesc q;
    q.kind = Kind::kBallList;
    q.center = c;
    q.radius = radius;
    return q;
  }
  static QueryDesc ball_count(const point_t& c, double radius) {
    QueryDesc q;
    q.kind = Kind::kBallCount;
    q.center = c;
    q.radius = radius;
    return q;
  }
  static QueryDesc knn(const point_t& c, std::size_t k) {
    QueryDesc q;
    q.kind = Kind::kKnn;
    q.center = c;
    q.k = k;
    return q;
  }

  bool is_list() const {
    return kind == Kind::kRangeList || kind == Kind::kBallList ||
           kind == Kind::kKnn;
  }
};

}  // namespace psi::api
