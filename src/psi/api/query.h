// PSI-Lib api layer: the streaming query-sink model.
//
// Every index answers its listing queries (range, ball, kNN) by *streaming*
// matches into a caller-supplied sink instead of materialising a
// std::vector. A sink is any callable taking a point; it may return
//
//   * void  — consume every match, or
//   * bool  — `false` stops the traversal early (top-N, existence tests,
//             paginated reads), `true` continues.
//
// `sink_accept` normalises the two shapes so backend traversal code is
// written once. The materialising entry points (`range_list`, `ball_list`,
// `knn`) survive everywhere as thin adapters over the visits, so existing
// callers are untouched while new callers (the service snapshot path, the
// examples) stream with zero intermediate copies.
//
// PointSink is the type-erased face of the same idea: a non-owning
// function_ref (one context pointer + one function pointer, no allocation,
// no std::function) used across AnyIndex's virtual dispatch boundary where
// a template parameter cannot pass. Sinks are only invoked synchronously
// during the visit call, so the non-owning reference is always valid.

#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/geometry/point.h"

namespace psi::api {

// Feed one point to a sink; true = keep going. Accepts both void- and
// bool-returning sinks (see header comment).
template <typename Sink, typename PointT>
constexpr bool sink_accept(Sink& sink, const PointT& p) {
  if constexpr (std::is_void_v<decltype(sink(p))>) {
    sink(p);
    return true;
  } else {
    return static_cast<bool>(sink(p));
  }
}

// Non-owning type-erased sink reference: the sink signature AnyIndex's
// vtable speaks. Constructible from any lvalue callable compatible with
// sink_accept; copying copies the reference, not the callable.
template <typename Coord, int D>
class PointSink {
 public:
  using point_t = Point<Coord, D>;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, PointSink>>>
  PointSink(F&& f)  // NOLINT(google-explicit-constructor): sink adaptor
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* ctx, const point_t& p) {
          return sink_accept(*static_cast<std::remove_reference_t<F>*>(ctx),
                             p);
        }) {}

  bool operator()(const point_t& p) const { return fn_(ctx_, p); }

 private:
  void* ctx_;
  bool (*fn_)(void*, const point_t&);
};

// Collecting adaptor: the one-liner behind every materialising `*_list`.
template <typename PointT>
struct CollectSink {
  std::vector<PointT>& out;
  void operator()(const PointT& p) const { out.push_back(p); }
};

template <typename PointT>
CollectSink<PointT> collect_into(std::vector<PointT>& out) {
  return CollectSink<PointT>{out};
}

// Counting adaptor (ball_count on backends without a native counting walk).
template <typename PointT>
struct CountSink {
  std::size_t count = 0;
  void operator()(const PointT&) { ++count; }
};

// Fan-out adaptor: wraps a sink for callers that visit several sources
// (shards, log components) in sequence. Remembers the sink's stop request
// in `alive` so the caller can skip the remaining sources.
template <typename Sink>
struct StopGuard {
  Sink& sink;
  bool alive = true;
  template <typename PointT>
  bool operator()(const PointT& p) {
    alive = sink_accept(sink, p);
    return alive;
  }
};

}  // namespace psi::api
