// PSI-Lib api layer: the streaming query-sink model.
//
// Every index answers its listing queries (range, ball, kNN) by *streaming*
// matches into a caller-supplied sink instead of materialising a
// std::vector. A sink is any callable taking a point; it may return
//
//   * void  — consume every match, or
//   * bool  — `false` stops the traversal early (top-N, existence tests,
//             paginated reads), `true` continues.
//
// `sink_accept` normalises the two shapes so backend traversal code is
// written once. The materialising entry points (`range_list`, `ball_list`,
// `knn`) survive everywhere as thin adapters over the visits, so existing
// callers are untouched while new callers (the service snapshot path, the
// examples) stream with zero intermediate copies.
//
// PointSink is the type-erased face of the same idea: a non-owning
// function_ref (one context pointer + one function pointer, no allocation,
// no std::function) used across AnyIndex's virtual dispatch boundary where
// a template parameter cannot pass. Sinks are only invoked synchronously
// during the visit call, so the non-owning reference is always valid.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/scheduler.h"

namespace psi::api {

// Feed one point to a sink; true = keep going. Accepts both void- and
// bool-returning sinks (see header comment).
template <typename Sink, typename PointT>
constexpr bool sink_accept(Sink& sink, const PointT& p) {
  if constexpr (std::is_void_v<decltype(sink(p))>) {
    sink(p);
    return true;
  } else {
    return static_cast<bool>(sink(p));
  }
}

// Non-owning type-erased sink reference: the sink signature AnyIndex's
// vtable speaks. Constructible from any lvalue callable compatible with
// sink_accept; copying copies the reference, not the callable.
template <typename Coord, int D>
class PointSink {
 public:
  using point_t = Point<Coord, D>;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, PointSink>>>
  PointSink(F&& f)  // NOLINT(google-explicit-constructor): sink adaptor
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_([](void* ctx, const point_t& p) {
          return sink_accept(*static_cast<std::remove_reference_t<F>*>(ctx),
                             p);
        }) {}

  bool operator()(const point_t& p) const { return fn_(ctx_, p); }

 private:
  void* ctx_;
  bool (*fn_)(void*, const point_t&);
};

// Collecting adaptor: the one-liner behind every materialising `*_list`.
template <typename PointT>
struct CollectSink {
  std::vector<PointT>& out;
  void operator()(const PointT& p) const { out.push_back(p); }
};

template <typename PointT>
CollectSink<PointT> collect_into(std::vector<PointT>& out) {
  return CollectSink<PointT>{out};
}

// Counting adaptor (ball_count on backends without a native counting walk).
template <typename PointT>
struct CountSink {
  std::size_t count = 0;
  void operator()(const PointT&) { ++count; }
};

// Fan-out adaptor: wraps a sink for callers that visit several sources
// (shards, log components) in sequence. Remembers the sink's stop request
// in `alive` so the caller can skip the remaining sources.
template <typename Sink>
struct StopGuard {
  Sink& sink;
  bool alive = true;
  template <typename PointT>
  bool operator()(const PointT& p) {
    alive = sink_accept(sink, p);
    return alive;
  }
};

// ---------------------------------------------------------------------------
// The parallel sink contract.
// ---------------------------------------------------------------------------
//
// A ConcurrentSink is the one sink type that may be fed from several workers
// at once, which is what lets a traversal fork over subtrees/shards instead
// of streaming through a single callable. Matches land in per-worker buffers
// (cache-line padded, no locks) that the caller merges with take() *after*
// the fork-join completed; early termination is a relaxed atomic stop flag —
// parallel traversals poll stopped() at node granularity and the sequential
// fallback stops on the usual false return. With `limit` set, exactly
// min(limit, matches) points are retained even under concurrent emission
// (the atomic ticket counter admits the first `limit` and flips the stop
// flag), so top-N queries keep their semantics on the parallel path.
//
// Delivery order is unspecified — parallel callers that need an order sort
// the merged result. One foreign (non-pool) thread may drive a sink (it
// gets a dedicated slot); two foreign threads must not share one.

template <typename Coord, int D>
class ConcurrentSink {
 public:
  using point_t = Point<Coord, D>;

  // limit == 0: unbounded collection.
  explicit ConcurrentSink(std::size_t limit = 0)
      : limit_(limit),
        buffers_(static_cast<std::size_t>(num_workers()) + 1) {}

  // Thread-safe emit; false = the traversal should stop.
  bool operator()(const point_t& p) {
    if (stopped()) return false;
    if (limit_ != 0) {
      const std::size_t ticket =
          accepted_.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= limit_) {
        request_stop();
        return false;
      }
      buffers_[slot()].pts.push_back(p);
      if (ticket + 1 == limit_) {
        request_stop();
        return false;
      }
      return true;
    }
    buffers_[slot()].pts.push_back(p);
    return true;
  }

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  // Total matches retained so far. Only stable after the traversal joined.
  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b.pts.size();
    return n;
  }

  // Merge the per-worker buffers (moving out of the largest one). Call
  // after the traversal joined; the sink is empty afterwards.
  std::vector<point_t> take() {
    const std::size_t total = count();
    std::size_t largest = 0;
    for (std::size_t i = 1; i < buffers_.size(); ++i) {
      if (buffers_[i].pts.size() > buffers_[largest].pts.size()) largest = i;
    }
    std::vector<point_t> out = std::move(buffers_[largest].pts);
    buffers_[largest].pts.clear();
    out.reserve(total);
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      if (i == largest) continue;
      out.insert(out.end(), buffers_[i].pts.begin(), buffers_[i].pts.end());
      buffers_[i].pts.clear();
    }
    return out;
  }

 private:
  struct alignas(64) Buffer {
    std::vector<point_t> pts;
  };

  // Workers 0..P-1 use slots 1..P; the (single) foreign driver gets slot 0.
  std::size_t slot() const {
    return static_cast<std::size_t>(worker_id() + 1);
  }

  std::size_t limit_;
  std::vector<Buffer> buffers_;
  std::atomic<std::size_t> accepted_{0};
  std::atomic<bool> stop_{false};
};

// ---------------------------------------------------------------------------
// The parallel kNN contract.
// ---------------------------------------------------------------------------
//
// A ConcurrentKnnBuffer is the kNN analogue of ConcurrentSink: the one top-k
// accumulator that may be fed from several workers at once, which is what
// lets a kNN traversal fork over subtrees (and shards) instead of streaming
// through a single bounded heap. Candidates land in per-worker padded
// KnnBuffers (no locks); the *pruning* state is shared — one relaxed-atomic
// squared-distance bound, tightened by CAS-min whenever some worker's local
// heap fills. Any single full heap's worst is already an upper bound on the
// true global k-th distance (it holds k candidates), so pruning a subtree
// whose min distance reaches bound() never drops a true neighbour, and
// sharing the bound across shards seeds every shard's search with the best
// radius found anywhere so far. merged_sorted() merges the per-worker heaps
// after the fork-join completed: the exact k smallest candidates offered,
// in increasing distance order. Tie *membership* at the k-th distance is
// unspecified (as on the sequential path); distances are exact.
//
// Slot model as ConcurrentSink: workers use their own slot, one foreign
// (non-pool) driver gets slot 0; two foreign threads must not share one.

template <typename Coord, int D>
class ConcurrentKnnBuffer {
 public:
  using point_t = Point<Coord, D>;
  using entry_t = typename KnnBuffer<point_t>::Entry;

  explicit ConcurrentKnnBuffer(std::size_t k)
      : k_(k),
        bound_(k == 0 ? -std::numeric_limits<double>::infinity()
                      : std::numeric_limits<double>::infinity()),
        slots_(static_cast<std::size_t>(num_workers()) + 1,
               Slot{KnnBuffer<point_t>(k)}) {}

  std::size_t capacity() const { return k_; }

  // Current global pruning radius (squared distance). Traversals skip any
  // subtree whose min squared distance is >= bound(). Starts at +inf
  // (-inf for k == 0, so everything prunes) and only ever tightens.
  double bound() const { return bound_.load(std::memory_order_relaxed); }

  // Thread-safe offer of one candidate.
  void offer(double dist2, const point_t& p) {
    if (dist2 >= bound()) return;
    KnnBuffer<point_t>& local = slots_[slot()].heap;
    local.offer(dist2, p);
    if (local.full()) tighten(local.worst());
  }

  // Exact merge of the per-worker heaps: the k smallest candidates overall,
  // sorted by increasing distance. Only call after the traversal joined.
  std::vector<entry_t> merged_sorted() const {
    std::vector<entry_t> all;
    for (const auto& s : slots_) {
      all.insert(all.end(), s.heap.raw().begin(), s.heap.raw().end());
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k_) all.resize(k_);
    return all;
  }

 private:
  struct alignas(64) Slot {
    KnnBuffer<point_t> heap;
  };

  // Workers 0..P-1 use slots 1..P; the (single) foreign driver gets slot 0.
  std::size_t slot() const {
    return static_cast<std::size_t>(worker_id() + 1);
  }

  void tighten(double cand) {
    double cur = bound_.load(std::memory_order_relaxed);
    while (cand < cur && !bound_.compare_exchange_weak(
                             cur, cand, std::memory_order_relaxed)) {
    }
  }

  std::size_t k_;
  std::atomic<double> bound_;
  std::vector<Slot> slots_;
};

// Trait for generic callers (Snapshot) that choose the parallel fan-out
// when handed a ConcurrentSink and the sequential stream otherwise.
template <typename T>
inline constexpr bool is_concurrent_sink_v = false;
template <typename Coord, int D>
inline constexpr bool is_concurrent_sink_v<ConcurrentSink<Coord, D>> = true;

// Parallel-visit dispatch: the backend's native subtree fan-out when it has
// one, its sequential traversal into the same sink otherwise. This is the
// shim that makes the parallel contract an *optional* backend capability.
template <typename Index, typename Coord, int D>
void range_visit_par(const Index& index, const typename Index::box_t& query,
                     ConcurrentSink<Coord, D>& sink) {
  if constexpr (requires { index.range_visit_par(query, sink); }) {
    index.range_visit_par(query, sink);
  } else {
    index.range_visit(query, sink);
  }
}

template <typename Index, typename Coord, int D>
void ball_visit_par(const Index& index, const typename Index::point_t& q,
                    double radius, ConcurrentSink<Coord, D>& sink) {
  if constexpr (requires { index.ball_visit_par(q, radius, sink); }) {
    index.ball_visit_par(q, radius, sink);
  } else {
    index.ball_visit(q, radius, sink);
  }
}

// kNN dispatch: the backend's native subtree fan-out into the shared
// buffer when it has one; otherwise the backend's own sequential
// bounded-heap search, its (at most k) ranked results offered into the
// shared buffer — correct, just without intra-shard parallelism or
// global-bound pruning inside the backend.
template <typename Index, typename Coord, int D>
void knn_visit_par(const Index& index, const typename Index::point_t& q,
                   std::size_t k, ConcurrentKnnBuffer<Coord, D>& buf) {
  if constexpr (requires { index.knn_visit_par(q, k, buf); }) {
    index.knn_visit_par(q, k, buf);
  } else {
    index.knn_visit(q, k, [&](const typename Index::point_t& p) {
      buf.offer(squared_distance(p, q), p);
    });
  }
}

// Count-only kNN: |result| = min(k, population) through the streaming
// visit, with no materialised vector — the knn() adapters reserve and copy
// k points even when the caller only wants the count (bench loops do).
template <typename Index>
std::size_t knn_count(const Index& index, const typename Index::point_t& q,
                      std::size_t k) {
  std::size_t n = 0;
  index.knn_visit(q, k, [&](const typename Index::point_t&) { ++n; });
  return n;
}

}  // namespace psi::api
