// PSI-Lib: axis-aligned bounding boxes.
//
// Every index in the library augments tree nodes with the bounding box of
// the points in the subtree (paper Sec 1); queries prune subtrees through
// box predicates and box-to-point minimum distances.

#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "psi/geometry/point.h"

namespace psi {

template <typename Coord, int D>
struct Box {
  using point_t = Point<Coord, D>;

  point_t lo;  // componentwise minimum corner
  point_t hi;  // componentwise maximum corner (inclusive)

  // An empty box: identity for merge().
  static constexpr Box empty() {
    Box b;
    for (int d = 0; d < D; ++d) {
      b.lo[d] = std::numeric_limits<Coord>::max();
      b.hi[d] = std::numeric_limits<Coord>::lowest();
    }
    return b;
  }

  static constexpr Box of_point(const point_t& p) { return Box{p, p}; }

  constexpr bool is_empty() const {
    for (int d = 0; d < D; ++d) {
      if (lo[d] > hi[d]) return true;
    }
    return false;
  }

  constexpr bool contains(const point_t& p) const {
    for (int d = 0; d < D; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  // True iff `inner` lies entirely within *this.
  constexpr bool contains(const Box& inner) const {
    for (int d = 0; d < D; ++d) {
      if (inner.lo[d] < lo[d] || inner.hi[d] > hi[d]) return false;
    }
    return true;
  }

  constexpr bool intersects(const Box& other) const {
    for (int d = 0; d < D; ++d) {
      if (other.hi[d] < lo[d] || other.lo[d] > hi[d]) return false;
    }
    return true;
  }

  constexpr void expand(const point_t& p) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  constexpr void merge(const Box& other) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], other.lo[d]);
      hi[d] = std::max(hi[d], other.hi[d]);
    }
  }

  friend constexpr Box merged(Box a, const Box& b) {
    a.merge(b);
    return a;
  }

  friend constexpr bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << '[' << b.lo << ".." << b.hi << ']';
  }
};

// Squared minimum distance from q to any point of the (closed) box; 0 when
// q is inside. Used as the kNN pruning bound.
template <typename Coord, int D>
constexpr double min_squared_distance(const Box<Coord, D>& b,
                                      const Point<Coord, D>& q) {
  double acc = 0;
  for (int d = 0; d < D; ++d) {
    double diff = 0;
    if (q[d] < b.lo[d]) {
      diff = static_cast<double>(b.lo[d]) - static_cast<double>(q[d]);
    } else if (q[d] > b.hi[d]) {
      diff = static_cast<double>(q[d]) - static_cast<double>(b.hi[d]);
    }
    acc += diff * diff;
  }
  return acc;
}

// Squared maximum distance from q to any point of the (closed) box. Used
// by ball queries: a subtree whose box lies entirely within the ball can be
// accepted wholesale.
template <typename Coord, int D>
constexpr double max_squared_distance(const Box<Coord, D>& b,
                                      const Point<Coord, D>& q) {
  double acc = 0;
  for (int d = 0; d < D; ++d) {
    const double to_lo =
        std::abs(static_cast<double>(q[d]) - static_cast<double>(b.lo[d]));
    const double to_hi =
        std::abs(static_cast<double>(b.hi[d]) - static_cast<double>(q[d]));
    const double far = to_lo > to_hi ? to_lo : to_hi;
    acc += far * far;
  }
  return acc;
}

// Enclosure measures used by the R-tree split/choose heuristics.
template <typename Coord, int D>
constexpr double box_area(const Box<Coord, D>& b) {
  if (b.is_empty()) return 0;
  double a = 1;
  for (int d = 0; d < D; ++d) {
    a *= static_cast<double>(b.hi[d]) - static_cast<double>(b.lo[d]);
  }
  return a;
}

// Area increase if `b` were grown to include `p`.
template <typename Coord, int D>
constexpr double enlargement(const Box<Coord, D>& b, const Point<Coord, D>& p) {
  Box<Coord, D> grown = b;
  grown.expand(p);
  return box_area(grown) - box_area(b);
}

template <typename Coord, int D>
constexpr double enlargement(const Box<Coord, D>& b, const Box<Coord, D>& o) {
  Box<Coord, D> grown = b;
  grown.merge(o);
  return box_area(grown) - box_area(b);
}

using Box2 = Box<std::int64_t, 2>;
using Box3 = Box<std::int64_t, 3>;

}  // namespace psi
