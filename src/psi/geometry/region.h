// PSI-Lib: orthogonal region splitting.
//
// The space-partitioning trees (P-Orth, Zd, Pkd) divide a rectangular region
// at coordinate midpoints. This header centralises the split semantics so
// all trees agree exactly:
//
//   split point  s_d = lo_d + (hi_d - lo_d) / 2
//   low child    [lo_d, s_d]        (points with p_d <= s_d)
//   high child   [s_d + eps, hi_d]  (points with p_d >  s_d)
//
// For integer coordinates eps = 1; for floating point the high child keeps
// lo = s (classification is strict, so the shared boundary is harmless).
// A dimension of width zero always classifies into the low child and the
// region eventually becomes unsplittable, which is the recursion guard for
// duplicate-heavy inputs (P-Orth makes an oversized leaf there).

#pragma once

#include <type_traits>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi {

template <typename Coord, int D>
struct Region {
  using box_t = Box<Coord, D>;
  using point_t = Point<Coord, D>;

  // Midpoint used as the split plane in dimension d.
  static constexpr Coord split_point(const box_t& r, int d) {
    // lo + (hi-lo)/2 avoids overflow for wide integer regions.
    return r.lo[d] + (r.hi[d] - r.lo[d]) / 2;
  }

  // A region can be subdivided iff at least one dimension can shrink.
  static constexpr bool splittable(const box_t& r) {
    for (int d = 0; d < D; ++d) {
      const Coord s = split_point(r, d);
      if constexpr (std::is_integral_v<Coord>) {
        if (s < r.hi[d]) return true;
      } else {
        if (r.lo[d] < s && s < r.hi[d]) return true;
      }
    }
    return false;
  }

  // Orthant index of p: bit d set iff p_d > split_point(d).
  static constexpr int orthant(const box_t& r, const point_t& p) {
    int idx = 0;
    for (int d = 0; d < D; ++d) {
      if (p[d] > split_point(r, d)) idx |= 1 << d;
    }
    return idx;
  }

  // Sub-region for orthant index `idx` (an empty box in a dimension means
  // that orthant can hold no points — callers leave those children null).
  static constexpr box_t child(const box_t& r, int idx) {
    box_t c = r;
    for (int d = 0; d < D; ++d) {
      const Coord s = split_point(r, d);
      if (idx & (1 << d)) {
        if constexpr (std::is_integral_v<Coord>) {
          c.lo[d] = s + 1;
        } else {
          c.lo[d] = s;
        }
      } else {
        c.hi[d] = s;
      }
    }
    return c;
  }

  static constexpr int kFanout = 1 << D;
};

}  // namespace psi
