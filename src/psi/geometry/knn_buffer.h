// PSI-Lib: bounded k-nearest-neighbour buffer.
//
// A fixed-capacity max-heap keyed on squared distance. All indexes share it
// for k-NN queries: the heap's maximum is the current pruning radius.

#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

namespace psi {

template <typename PointT>
class KnnBuffer {
 public:
  struct Entry {
    double dist2;
    PointT point;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.dist2 < b.dist2;
    }
  };

  explicit KnnBuffer(std::size_t k) : k_(k) { heap_.reserve(k); }

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  // Current pruning radius: squared distance of the k-th best so far, or
  // +inf while fewer than k candidates have been seen. A k == 0 buffer is
  // permanently full with radius -inf, so every traversal prunes at once.
  double worst() const {
    if (k_ == 0) return -std::numeric_limits<double>::infinity();
    return full() ? heap_.front().dist2 : std::numeric_limits<double>::infinity();
  }

  // Offer a candidate; keeps the k smallest.
  void offer(double dist2, const PointT& p) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{dist2, p});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (dist2 < heap_.front().dist2) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = Entry{dist2, p};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  // Results sorted by increasing distance.
  std::vector<Entry> sorted() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

  const std::vector<Entry>& raw() const { return heap_; }

 private:
  std::size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace psi
