// PSI-Lib: point type.
//
// Points are fixed-dimension coordinate tuples. The paper evaluates 2D/3D
// points with 64-bit integer coordinates; the indexes are templated on the
// point type so other coordinate types work where the algorithm allows
// (P-Orth explicitly supports arbitrary coordinate types, Sec 3; the
// SFC-based indexes require integers within the curve precision).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace psi {

template <typename Coord, int D>
struct Point {
  static_assert(D >= 1, "dimension must be positive");
  using coord_t = Coord;
  static constexpr int kDim = D;

  std::array<Coord, D> coords{};

  constexpr Coord& operator[](int d) { return coords[static_cast<std::size_t>(d)]; }
  constexpr const Coord& operator[](int d) const {
    return coords[static_cast<std::size_t>(d)];
  }

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }
  // Lexicographic order: a canonical total order used as a tiebreak when two
  // distinct points are otherwise indistinguishable (e.g. equal SFC codes).
  friend constexpr bool operator<(const Point& a, const Point& b) {
    return a.coords < b.coords;
  }

  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    os << '(';
    for (int d = 0; d < D; ++d) {
      if (d) os << ',';
      os << p[d];
    }
    return os << ')';
  }
};

// Squared Euclidean distance, computed in a wide accumulator so integer
// coordinates up to ~2^31 cannot overflow.
template <typename Coord, int D>
constexpr double squared_distance(const Point<Coord, D>& a,
                                  const Point<Coord, D>& b) {
  double acc = 0;
  for (int d = 0; d < D; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    acc += diff * diff;
  }
  return acc;
}

// Common instantiations used across the library and paper experiments.
using Point2 = Point<std::int64_t, 2>;
using Point3 = Point<std::int64_t, 3>;
using Point2f = Point<double, 2>;
using Point3f = Point<double, 3>;

// Hash for unordered containers in tests.
template <typename Coord, int D>
struct PointHash {
  std::size_t operator()(const Point<Coord, D>& p) const {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (int d = 0; d < D; ++d) {
      h ^= std::hash<Coord>{}(p[d]) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace psi
