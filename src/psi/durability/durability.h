// PSI-Lib durability: configuration and the compile-time gate.
//
// The durability subsystem (wal.h / checkpoint.h / recovery.h) makes the
// service's committed state survive a crash: every commit group is appended
// to a per-node write-ahead log and fsync'd *before* the epoch publishes
// (update futures resolve after publication, so an acknowledged commit is
// always on durable media), and epoch-stamped checkpoints bound the log's
// replay tail.
//
// Everything is off by default (`DurabilityConfig::enabled = false`), so a
// service without a configured log directory pays exactly one untaken
// branch per commit. Building with -DPSI_DURABILITY=OFF sets
// PSI_DURABILITY_DISABLED and folds even that away: `kEnabled` becomes
// false and every call site guarded by `if constexpr (durability::kEnabled)`
// compiles out, the same discipline as telemetry::kEnabled.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace psi::durability {

#ifdef PSI_DURABILITY_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

struct DurabilityConfig {
  // Master switch. Off: no files are touched, no WAL is opened.
  bool enabled = false;
  // Log + checkpoint directory (created if absent). For the distributed
  // service this is the *base*: each host logs under <dir>/node-<id> and
  // the coordinator's commit markers land under <dir>/coordinator.
  std::string dir{};
  // Rotate to a fresh segment once the active one exceeds this many bytes.
  std::size_t segment_bytes = std::size_t{64} << 20;
  // fsync appended records before the commit publishes (and checkpoint
  // files before the manifest renames over). Turning this off keeps the
  // format and replay machinery testable without paying the media.
  bool fsync = true;
  // Auto-checkpoint every N committed epochs (0 = manual checkpoints only).
  // A checkpoint truncates the log, so this bounds both recovery time and
  // disk growth.
  std::uint64_t checkpoint_every = 0;

  bool armed() const { return kEnabled && enabled && !dir.empty(); }
};

}  // namespace psi::durability
