// Epoch-stamped checkpoints: per-shard point snapshots + a manifest.
//
// A checkpoint is taken from a *retained read view* — RCU retention keeps
// the view's shard snapshots valid while the writer keeps committing, so
// the only work under the commit lock is pinning the view and rotating the
// WAL; the (slow) file writes happen against the pinned snapshots with no
// writer stall.
//
// On-disk artifacts in the durability directory:
//
//   ckpt-<epoch>-<key>.bin   one dataset_io binary point file per shard
//   MANIFEST                 [u32 magic "PSIM"][u32 version][u64 epoch]
//                            [u64 watermark][u32 nshards]
//                            { [u64 key][u64 version][u64 factory_id]
//                              [u32 name_len][name bytes] }*
//                            [u32 crc32 of everything above]
//
// Ordering makes the whole thing atomic: shard files are written
// fsync+rename-atomically FIRST, the manifest is renamed over LAST, and
// only then are pre-checkpoint WAL segments and stale ckpt files removed.
// A crash at any point leaves the previous manifest naming the previous
// (still present) shard files — the new half-written generation is inert
// garbage that the next successful checkpoint sweeps up.
//
// `watermark` is the WAL segment seq returned by the rotate: every record
// appended before the checkpoint's view was pinned lives in a segment
// below it. Recovery replays only segments >= watermark, with the
// manifest's epoch as a second filter (records with epoch <= manifest
// epoch are already inside the snapshots).

#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "psi/durability/wal.h"
#include "psi/geometry/point.h"
#include "psi/io/dataset_io.h"

namespace psi::durability {

inline constexpr std::uint32_t kManifestMagic = 0x5053494D;  // "PSIM"
// v2: per-shard format byte after the file name — kCkptFormatPoints is the
// dataset_io point codec, kCkptFormatArena a raw relocatable-arena image
// (core/arena/chunk_pool.h; itself CRC-framed and validated on adopt).
// v1 manifests (no format byte) read back as all-points.
inline constexpr std::uint32_t kManifestVersion = 2;

inline constexpr std::uint8_t kCkptFormatPoints = 0;
inline constexpr std::uint8_t kCkptFormatArena = 1;

struct ManifestShard {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  std::uint64_t factory_id = 0;
  std::string file;
  std::uint8_t format = kCkptFormatPoints;
};

struct Manifest {
  std::uint64_t epoch = 0;
  std::uint64_t watermark = 0;
  std::vector<ManifestShard> shards;
};

inline std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

inline std::string checkpoint_file(std::uint64_t epoch, std::uint64_t key) {
  return "ckpt-" + std::to_string(epoch) + "-" + std::to_string(key) + ".bin";
}

// Arena-image snapshot of one shard (the "ckpt-" prefix keeps it inside
// remove_stale_checkpoints' sweep).
inline std::string checkpoint_arena_file(std::uint64_t epoch,
                                         std::uint64_t key) {
  return "ckpt-" + std::to_string(epoch) + "-" + std::to_string(key) +
         ".arena";
}

inline void write_manifest(const std::string& dir, const Manifest& m,
                           bool do_fsync = true) {
  net::WireWriter w;
  w.put_u32(kManifestMagic);
  w.put_u32(kManifestVersion);
  w.put_u64(m.epoch);
  w.put_u64(m.watermark);
  w.put_u32(static_cast<std::uint32_t>(m.shards.size()));
  for (const auto& s : m.shards) {
    w.put_u64(s.key);
    w.put_u64(s.version);
    w.put_u64(s.factory_id);
    w.put_string(s.file);
    w.put_u8(s.format);
  }
  auto bytes = std::move(w).finish(net::MsgType::kOk).bytes;
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  io::write_file_atomic(manifest_path(dir), bytes.data(), bytes.size(),
                        do_fsync);
}

// nullopt when no manifest exists (fresh directory, or a deployment that
// crashed before its first checkpoint). A manifest that exists but fails
// validation throws: rename atomicity means it can only be damaged by
// something recovery should not paper over.
inline std::optional<Manifest> read_manifest(const std::string& dir) {
  std::ifstream in(manifest_path(dir), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < 4) throw net::WireError("manifest too short");
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  if (crc32(bytes.data(), bytes.size() - 4) != crc) {
    throw net::WireError("manifest checksum mismatch");
  }
  net::WireReader r(bytes.data(), bytes.size() - 4);
  if (r.get_u32() != kManifestMagic) throw net::WireError("bad manifest magic");
  const std::uint32_t version = r.get_u32();
  if (version != 1 && version != kManifestVersion) {
    throw net::WireError("unsupported manifest version");
  }
  Manifest m;
  m.epoch = r.get_u64();
  m.watermark = r.get_u64();
  const std::uint32_t n = r.get_u32();
  m.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ManifestShard s;
    s.key = r.get_u64();
    s.version = r.get_u64();
    s.factory_id = r.get_u64();
    s.file = r.get_string();
    s.format = version >= 2 ? r.get_u8() : kCkptFormatPoints;
    if (s.format != kCkptFormatPoints && s.format != kCkptFormatArena) {
      throw net::WireError("unknown checkpoint shard format");
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Coordinator topology record
// ---------------------------------------------------------------------------
//
// The per-host manifests name shard contents (key -> file) but not the
// routing that stitched them into a cluster: the shard map's code
// boundaries, owners, and the coordinator epoch live only in coordinator
// memory. The TOPOLOGY file (written under `<dir>/coordinator`, atomically,
// after every successful full checkpoint) records exactly that, so a
// restart whose WAL tails are clean can re-install every checkpointed
// shard verbatim — arena images adopt in O(bytes) — instead of decoding
// the whole cluster to points and re-partitioning from scratch.
//
//   TOPOLOGY   [u32 magic "PSIT"][u32 version][u64 epoch][u32 nshards]
//              { [u64 key][u64 upper][u64 shard_version][u32 owner] }*
//              [u32 crc32 of everything above]
//
// `upper` is the shard's inclusive upper SFC-code bound; shards are listed
// in map order, so the uppers must strictly increase and end at 2^64-1.
// The file is an accelerator, never the source of truth: recovery falls
// back to the decode-and-rebuild path whenever the record is missing or
// disagrees with what the manifests actually delivered.

inline constexpr std::uint32_t kTopologyMagic = 0x50534954;  // "PSIT"
inline constexpr std::uint32_t kTopologyVersion = 1;

struct TopologyShard {
  std::uint64_t key = 0;
  std::uint64_t upper = 0;  // inclusive upper code bound
  std::uint64_t version = 0;
  std::uint32_t owner = 0;  // NodeId
};

struct Topology {
  std::uint64_t epoch = 0;
  std::vector<TopologyShard> shards;
};

inline std::string topology_path(const std::string& dir) {
  return dir + "/TOPOLOGY";
}

inline void write_topology(const std::string& dir, const Topology& t,
                           bool do_fsync = true) {
  std::filesystem::create_directories(dir);
  net::WireWriter w;
  w.put_u32(kTopologyMagic);
  w.put_u32(kTopologyVersion);
  w.put_u64(t.epoch);
  w.put_u32(static_cast<std::uint32_t>(t.shards.size()));
  for (const auto& s : t.shards) {
    w.put_u64(s.key);
    w.put_u64(s.upper);
    w.put_u64(s.version);
    w.put_u32(s.owner);
  }
  auto bytes = std::move(w).finish(net::MsgType::kOk).bytes;
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  io::write_file_atomic(topology_path(dir), bytes.data(), bytes.size(),
                        do_fsync);
}

// nullopt when absent (pre-topology deployment, or never checkpointed).
// Corruption throws, like the manifest: rename atomicity means a damaged
// record is real trouble, not a half-written one.
inline std::optional<Topology> read_topology(const std::string& dir) {
  std::ifstream in(topology_path(dir), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < 4) throw net::WireError("topology too short");
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  if (crc32(bytes.data(), bytes.size() - 4) != crc) {
    throw net::WireError("topology checksum mismatch");
  }
  net::WireReader r(bytes.data(), bytes.size() - 4);
  if (r.get_u32() != kTopologyMagic) throw net::WireError("bad topology magic");
  if (r.get_u32() != kTopologyVersion) {
    throw net::WireError("unsupported topology version");
  }
  Topology t;
  t.epoch = r.get_u64();
  const std::uint32_t n = r.get_u32();
  t.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TopologyShard s;
    s.key = r.get_u64();
    s.upper = r.get_u64();
    s.version = r.get_u64();
    s.owner = r.get_u32();
    t.shards.push_back(s);
  }
  return t;
}

// Remove ckpt files (and orphaned .tmp leftovers) that the durable
// manifest no longer references.
inline void remove_stale_checkpoints(const std::string& dir,
                                     const Manifest& keep) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    const bool is_ckpt = name.rfind("ckpt-", 0) == 0;
    const bool is_tmp = name.size() > 4 &&
                        name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!is_ckpt && !is_tmp) continue;
    bool referenced = false;
    for (const auto& s : keep.shards) {
      if (name == s.file) {
        referenced = true;
        break;
      }
    }
    if (!referenced) fs::remove(e.path(), ec);
  }
}

// One shard's snapshot contents, in whichever encoding the caller chose:
// a non-empty image means the arena fast path (the shard moves to disk as
// one memcpy'd, self-validating blob — no flatten, no per-point encode);
// otherwise `pts` takes the point codec.
template <typename Coord, int D>
struct CheckpointShard {
  std::vector<Point<Coord, D>> pts;
  std::vector<std::uint8_t> image;
  bool is_arena() const { return !image.empty(); }
};

// Full checkpoint write: shard files first (atomically, fsync'd), manifest
// last, stale-generation sweep after. `m.shards[i].file` and `.format` are
// filled in here; callers set key/version/factory_id and epoch/watermark.
template <typename Coord, int D>
void write_checkpoint(const std::string& dir, Manifest m,
                      const std::vector<CheckpointShard<Coord, D>>& shards,
                      bool do_fsync = true) {
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    if (shards[i].is_arena()) {
      m.shards[i].format = kCkptFormatArena;
      m.shards[i].file = checkpoint_arena_file(m.epoch, m.shards[i].key);
      io::write_file_atomic(dir + "/" + m.shards[i].file,
                            shards[i].image.data(), shards[i].image.size(),
                            do_fsync);
    } else {
      m.shards[i].format = kCkptFormatPoints;
      m.shards[i].file = checkpoint_file(m.epoch, m.shards[i].key);
      io::save_binary_atomic<Coord, D>(dir + "/" + m.shards[i].file,
                                       shards[i].pts, do_fsync);
    }
  }
  write_manifest(dir, m, do_fsync);
  remove_stale_checkpoints(dir, m);
}

// Point-wise convenience overload (tests, non-arena callers).
template <typename Coord, int D>
void write_checkpoint(const std::string& dir, Manifest m,
                      const std::vector<std::vector<Point<Coord, D>>>& pts,
                      bool do_fsync = true) {
  std::vector<CheckpointShard<Coord, D>> shards(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) shards[i].pts = pts[i];
  write_checkpoint<Coord, D>(dir, std::move(m), shards, do_fsync);
}

}  // namespace psi::durability
