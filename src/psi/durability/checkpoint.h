// Epoch-stamped checkpoints: per-shard point snapshots + a manifest.
//
// A checkpoint is taken from a *retained read view* — RCU retention keeps
// the view's shard snapshots valid while the writer keeps committing, so
// the only work under the commit lock is pinning the view and rotating the
// WAL; the (slow) file writes happen against the pinned snapshots with no
// writer stall.
//
// On-disk artifacts in the durability directory:
//
//   ckpt-<epoch>-<key>.bin   one dataset_io binary point file per shard
//   MANIFEST                 [u32 magic "PSIM"][u32 version][u64 epoch]
//                            [u64 watermark][u32 nshards]
//                            { [u64 key][u64 version][u64 factory_id]
//                              [u32 name_len][name bytes] }*
//                            [u32 crc32 of everything above]
//
// Ordering makes the whole thing atomic: shard files are written
// fsync+rename-atomically FIRST, the manifest is renamed over LAST, and
// only then are pre-checkpoint WAL segments and stale ckpt files removed.
// A crash at any point leaves the previous manifest naming the previous
// (still present) shard files — the new half-written generation is inert
// garbage that the next successful checkpoint sweeps up.
//
// `watermark` is the WAL segment seq returned by the rotate: every record
// appended before the checkpoint's view was pinned lives in a segment
// below it. Recovery replays only segments >= watermark, with the
// manifest's epoch as a second filter (records with epoch <= manifest
// epoch are already inside the snapshots).

#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "psi/durability/wal.h"
#include "psi/geometry/point.h"
#include "psi/io/dataset_io.h"

namespace psi::durability {

inline constexpr std::uint32_t kManifestMagic = 0x5053494D;  // "PSIM"
inline constexpr std::uint32_t kManifestVersion = 1;

struct ManifestShard {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  std::uint64_t factory_id = 0;
  std::string file;
};

struct Manifest {
  std::uint64_t epoch = 0;
  std::uint64_t watermark = 0;
  std::vector<ManifestShard> shards;
};

inline std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

inline std::string checkpoint_file(std::uint64_t epoch, std::uint64_t key) {
  return "ckpt-" + std::to_string(epoch) + "-" + std::to_string(key) + ".bin";
}

inline void write_manifest(const std::string& dir, const Manifest& m,
                           bool do_fsync = true) {
  net::WireWriter w;
  w.put_u32(kManifestMagic);
  w.put_u32(kManifestVersion);
  w.put_u64(m.epoch);
  w.put_u64(m.watermark);
  w.put_u32(static_cast<std::uint32_t>(m.shards.size()));
  for (const auto& s : m.shards) {
    w.put_u64(s.key);
    w.put_u64(s.version);
    w.put_u64(s.factory_id);
    w.put_string(s.file);
  }
  auto bytes = std::move(w).finish(net::MsgType::kOk).bytes;
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  io::write_file_atomic(manifest_path(dir), bytes.data(), bytes.size(),
                        do_fsync);
}

// nullopt when no manifest exists (fresh directory, or a deployment that
// crashed before its first checkpoint). A manifest that exists but fails
// validation throws: rename atomicity means it can only be damaged by
// something recovery should not paper over.
inline std::optional<Manifest> read_manifest(const std::string& dir) {
  std::ifstream in(manifest_path(dir), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (bytes.size() < 4) throw net::WireError("manifest too short");
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i]) << (8 * i);
  }
  if (crc32(bytes.data(), bytes.size() - 4) != crc) {
    throw net::WireError("manifest checksum mismatch");
  }
  net::WireReader r(bytes.data(), bytes.size() - 4);
  if (r.get_u32() != kManifestMagic) throw net::WireError("bad manifest magic");
  if (r.get_u32() != kManifestVersion) {
    throw net::WireError("unsupported manifest version");
  }
  Manifest m;
  m.epoch = r.get_u64();
  m.watermark = r.get_u64();
  const std::uint32_t n = r.get_u32();
  m.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ManifestShard s;
    s.key = r.get_u64();
    s.version = r.get_u64();
    s.factory_id = r.get_u64();
    s.file = r.get_string();
    m.shards.push_back(std::move(s));
  }
  return m;
}

// Remove ckpt files (and orphaned .tmp leftovers) that the durable
// manifest no longer references.
inline void remove_stale_checkpoints(const std::string& dir,
                                     const Manifest& keep) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    const bool is_ckpt = name.rfind("ckpt-", 0) == 0;
    const bool is_tmp = name.size() > 4 &&
                        name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!is_ckpt && !is_tmp) continue;
    bool referenced = false;
    for (const auto& s : keep.shards) {
      if (name == s.file) {
        referenced = true;
        break;
      }
    }
    if (!referenced) fs::remove(e.path(), ec);
  }
}

// Full checkpoint write: shard files first (atomically, fsync'd), manifest
// last, stale-generation sweep after. `m.shards[i].file` is filled in here;
// callers set key/version/factory_id and epoch/watermark.
template <typename Coord, int D>
void write_checkpoint(const std::string& dir, Manifest m,
                      const std::vector<std::vector<Point<Coord, D>>>& pts,
                      bool do_fsync = true) {
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    m.shards[i].file = checkpoint_file(m.epoch, m.shards[i].key);
    io::save_binary_atomic<Coord, D>(dir + "/" + m.shards[i].file, pts[i],
                                     do_fsync);
  }
  write_manifest(dir, m, do_fsync);
  remove_stale_checkpoints(dir, m);
}

}  // namespace psi::durability
