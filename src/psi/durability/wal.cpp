#include "psi/durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "psi/telemetry/registry.h"

namespace psi::durability {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected, polynomial 0xEDB88320) — table built once.
// ---------------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void put_u32_le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64_le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string segment_name(std::uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.seg",
                static_cast<unsigned long long>(seq));
  return buf;
}

// Parses "wal-<16 hex>.seg"; false for anything else in the directory.
bool parse_segment_name(const std::string& name, std::uint64_t* seq) {
  if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
      name.compare(20, 4, ".seg") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *seq = v;
  return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const char* what) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("WAL write failed (") + what +
                               "): " + std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parse_segment_name(e.path().filename().string(), &seq)) {
      out.emplace_back(seq, e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

WalWriter::~WalWriter() { close(); }

void WalWriter::open(const std::string& dir, const DurabilityConfig& cfg) {
  close();
  dir_ = dir;
  cfg_ = cfg;
  fs::create_directories(dir_);
  std::uint64_t next = 1;
  for (const auto& [seq, path] : list_segments(dir_)) {
    (void)path;
    next = std::max(next, seq + 1);
  }
  open_segment(next);
}

void WalWriter::open_segment(std::uint64_t seq) {
  const std::string path = dir_ + "/" + segment_name(seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WAL segment open failed: " + path + ": " +
                             std::strerror(errno));
  }
  seq_ = seq;
  std::uint8_t hdr[kSegmentHeaderBytes];
  put_u32_le(hdr, kWalMagic);
  put_u32_le(hdr + 4, kWalVersion);
  put_u64_le(hdr + 8, seq);
  write_all(fd_, hdr, sizeof(hdr), "segment header");
  segment_size_ = sizeof(hdr);
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::append(const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) throw std::runtime_error("WAL append on closed writer");
  if (payload.empty() || payload.size() > kMaxRecordBytes) {
    throw std::runtime_error("WAL record size out of bounds");
  }
  const std::size_t framed = kRecordPreludeBytes + payload.size();
  if (segment_size_ + framed > cfg_.segment_bytes &&
      segment_size_ > kSegmentHeaderBytes) {
    rotate();
  }
  std::vector<std::uint8_t> frame(framed);
  put_u32_le(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32_le(frame.data() + 4, crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + 8, payload.data(), payload.size());
  write_all(fd_, frame.data(), frame.size(), "record");
  segment_size_ += framed;
  ++appends_;
  bytes_ += framed;
  telemetry::StatsRegistry::instance().counter("psi_wal_appends_total").inc();
  telemetry::StatsRegistry::instance()
      .counter("psi_wal_bytes_total")
      .inc(framed);
}

std::uint64_t WalWriter::sync() {
  if (fd_ < 0) throw std::runtime_error("WAL sync on closed writer");
  if (!cfg_.fsync) return 0;
  const std::uint64_t t0 = now_ns();
  if (::fsync(fd_) != 0) {
    throw std::runtime_error(std::string("WAL fsync failed: ") +
                             std::strerror(errno));
  }
  const std::uint64_t ns = now_ns() - t0;
  telemetry::StatsRegistry::instance().histogram("psi_wal_fsync_ns").record(ns);
  return ns;
}

std::uint64_t WalWriter::rotate() {
  if (fd_ < 0) throw std::runtime_error("WAL rotate on closed writer");
  if (cfg_.fsync) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
  open_segment(seq_ + 1);
  return seq_;
}

void WalWriter::truncate_below(std::uint64_t watermark) {
  for (const auto& [seq, path] : list_segments(dir_)) {
    if (seq < watermark) ::unlink(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// WalSegmentCursor
// ---------------------------------------------------------------------------

WalSegmentCursor::WalSegmentCursor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    torn_ = true;
    return;
  }
  data_.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  if (data_.size() < kSegmentHeaderBytes ||
      get_u32_le(data_.data()) != kWalMagic ||
      get_u32_le(data_.data() + 4) != kWalVersion) {
    torn_ = true;
    return;
  }
  seq_ = get_u64_le(data_.data() + 8);
  pos_ = kSegmentHeaderBytes;
  valid_ = true;
}

bool WalSegmentCursor::next(std::vector<std::uint8_t>& payload) {
  if (!valid_ || torn_) return false;
  if (pos_ == data_.size()) return false;  // clean end
  if (data_.size() - pos_ < kRecordPreludeBytes) {
    torn_ = true;
    return false;
  }
  const std::uint32_t len = get_u32_le(data_.data() + pos_);
  const std::uint32_t crc = get_u32_le(data_.data() + pos_ + 4);
  if (len == 0 || len > kMaxRecordBytes ||
      len > data_.size() - pos_ - kRecordPreludeBytes) {
    torn_ = true;
    return false;
  }
  const std::uint8_t* body = data_.data() + pos_ + kRecordPreludeBytes;
  if (crc32(body, len) != crc) {
    torn_ = true;
    return false;
  }
  payload.assign(body, body + len);
  pos_ += kRecordPreludeBytes + len;
  return true;
}

std::uint64_t last_marker(const std::string& dir) {
  std::uint64_t cut = 0;
  std::vector<std::uint8_t> payload;
  for (const auto& [seq, path] : list_segments(dir)) {
    (void)seq;
    WalSegmentCursor cur(path);
    while (cur.next(payload)) {
      try {
        if (record_kind(payload) == RecordKind::kCommitMark) {
          cut = decode_mark_record(payload);
        }
      } catch (const net::WireError&) {
        return cut;  // structurally valid frame, malformed payload: stop
      }
    }
    if (cur.torn()) return cut;
  }
  return cut;
}

}  // namespace psi::durability
