// Write-ahead log: length-prefixed, CRC32-framed records in segment files.
//
// On-disk layout (all integers little-endian, same codec as net/wire.h):
//
//   segment file  wal-<seq>.seg
//   ┌──────────────────────────────────────────────────────────────┐
//   │ header: [u32 magic "PSIW"][u32 version][u64 seq]             │
//   │ record: [u32 len][u32 crc32(payload)][payload: len bytes]    │
//   │ record: ...                                                  │
//   └──────────────────────────────────────────────────────────────┘
//
//   commit payload  [u8 kind=1][u64 epoch][u32 nshards]
//                   { [u64 shard_key][u64 shard_version][op runs] }*
//   marker payload  [u8 kind=2][u64 epoch]
//
// One record per commit group: the group is the unit of atomicity, so a
// torn tail either contains the whole group or none of it — recovery can
// never observe a partially applied batch. Op runs reuse the wire codec
// (`WireWriter::put_runs` / `WireReader::get_runs`), so the log speaks the
// same dialect as the transport.
//
// The writer always *rotates to a fresh segment on open* and never appends
// after a pre-existing (possibly torn) tail; replay stops at the first
// record whose length or checksum fails, which is exactly the longest
// valid prefix. Marker records are the coordinator's commit-cut protocol:
// a distributed commit is acknowledged only after every host fsync'd its
// records AND the coordinator fsync'd a marker, so recovery drops host
// records beyond the last marker — either a commit is uniformly present on
// all hosts or uniformly dropped.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "psi/durability/durability.h"
#include "psi/net/wire.h"
#include "psi/service/shard_store.h"

namespace psi::durability {

inline constexpr std::uint32_t kWalMagic = 0x50534957;  // "PSIW"
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordPreludeBytes = 8;  // len + crc
// Sanity bound on a single record; a length above this is treated as a
// torn/corrupt tail rather than an allocation request.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

enum class RecordKind : std::uint8_t {
  kCommit = 1,      // one committed group: epoch + per-shard op runs
  kCommitMark = 2,  // coordinator cut marker: this epoch fully acked
};

// IEEE CRC32 (same polynomial as zip/zlib), table-driven, no dependencies.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

// ---------------------------------------------------------------------------
// Record payload codec
// ---------------------------------------------------------------------------

template <typename PointT>
struct CommitShardRef {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  const std::vector<service::OpRun<PointT>>* runs = nullptr;
};

template <typename PointT>
std::vector<std::uint8_t> encode_commit_record(
    std::uint64_t epoch, const std::vector<CommitShardRef<PointT>>& shards) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(RecordKind::kCommit));
  w.put_u64(epoch);
  w.put_u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& s : shards) {
    w.put_u64(s.key);
    w.put_u64(s.version);
    w.put_runs(*s.runs);
  }
  return std::move(w).finish(net::MsgType::kOk).bytes;
}

inline std::vector<std::uint8_t> encode_mark_record(std::uint64_t epoch) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(RecordKind::kCommitMark));
  w.put_u64(epoch);
  return std::move(w).finish(net::MsgType::kOk).bytes;
}

inline RecordKind record_kind(const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) throw net::WireError("empty WAL record");
  return static_cast<RecordKind>(payload[0]);
}

template <typename PointT>
struct CommitRecord {
  struct Shard {
    std::uint64_t key = 0;
    std::uint64_t version = 0;
    std::vector<service::OpRun<PointT>> runs;
  };
  std::uint64_t epoch = 0;
  std::vector<Shard> shards;
};

template <typename PointT>
CommitRecord<PointT> decode_commit_record(
    const std::vector<std::uint8_t>& payload) {
  net::WireReader r(payload.data(), payload.size());
  if (static_cast<RecordKind>(r.get_u8()) != RecordKind::kCommit) {
    throw net::WireError("not a commit record");
  }
  CommitRecord<PointT> rec;
  rec.epoch = r.get_u64();
  const std::uint32_t n = r.get_u32();
  rec.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    typename CommitRecord<PointT>::Shard s;
    s.key = r.get_u64();
    s.version = r.get_u64();
    s.runs = r.template get_runs<PointT>();
    rec.shards.push_back(std::move(s));
  }
  return rec;
}

inline std::uint64_t decode_mark_record(
    const std::vector<std::uint8_t>& payload) {
  net::WireReader r(payload.data(), payload.size());
  if (static_cast<RecordKind>(r.get_u8()) != RecordKind::kCommitMark) {
    throw net::WireError("not a marker record");
  }
  return r.get_u64();
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Appends framed records to segment files via POSIX fds. Single-writer by
// design: the group committer (or a ShardHost's handler thread, already
// serialised under its mutex) is the only appender. Not thread-safe.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Creates `dir` if needed, scans existing segments, and opens a FRESH
  // segment numbered past every existing one. Never appends to an old
  // segment: its tail may be torn, and a valid record appended after a
  // torn one would be unreachable by prefix replay.
  void open(const std::string& dir, const DurabilityConfig& cfg);
  void close();
  bool is_open() const { return fd_ >= 0; }

  // Buffered in the kernel only — call sync() before exposing the commit.
  void append(const std::vector<std::uint8_t>& payload);

  // fsync the active segment; returns nanoseconds spent (0 when cfg.fsync
  // is off). Also feeds the psi_wal_* registry series.
  std::uint64_t sync();

  // Close the active segment and open the next one; returns the NEW
  // segment's seq. Records appended before rotate() live strictly below
  // the returned watermark — the checkpoint protocol's truncation point.
  std::uint64_t rotate();

  // Unlink every segment with seq < watermark (checkpoint truncation).
  void truncate_below(std::uint64_t watermark);

  std::uint64_t appends() const { return appends_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t active_seq() const { return seq_; }
  const std::string& dir() const { return dir_; }

 private:
  void open_segment(std::uint64_t seq);

  int fd_ = -1;
  std::string dir_;
  DurabilityConfig cfg_;
  std::uint64_t seq_ = 0;
  std::size_t segment_size_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Iterates the valid record prefix of one segment file. Any framing
// violation — short header, bad magic, truncated record, length out of
// bounds, CRC mismatch — ends iteration with torn() == true; it never
// throws on corrupt input.
class WalSegmentCursor {
 public:
  explicit WalSegmentCursor(const std::string& path);

  // True while the segment header was intact.
  bool valid() const { return valid_; }
  std::uint64_t seq() const { return seq_; }
  // True once iteration stopped because of a torn/corrupt record (as
  // opposed to a clean end-of-file).
  bool torn() const { return torn_; }

  // Fills `payload` with the next record; false at end or first tear.
  bool next(std::vector<std::uint8_t>& payload);

 private:
  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t seq_ = 0;
  bool valid_ = false;
  bool torn_ = false;
};

// Segment files under `dir`, sorted by seq. Missing dir → empty.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir);

// Scan every segment in seq order and return the epoch of the last valid
// kCommitMark record (0 if none). Stops at the first torn record, like
// replay. This is the coordinator's recovery cut.
std::uint64_t last_marker(const std::string& dir);

}  // namespace psi::durability
