// Recovery: manifest + checkpoints + WAL-tail replay → recovered state.
//
// Startup sequence for one durability directory:
//   1. Read the MANIFEST (if present) and load each referenced shard
//      snapshot — that is the state as of `checkpoint_epoch`.
//   2. Scan WAL segments with seq >= the manifest's watermark, in order,
//      and apply every valid kCommit record whose epoch is
//      > checkpoint_epoch and <= epoch_cut. Replay stops at the first
//      structurally invalid record (torn tail): by construction that is
//      exactly the longest valid prefix of the log.
//   3. Shards named by a replayed record but absent from the manifest
//      (post-checkpoint splits) materialise as empty shards and fill from
//      the run stream.
//
// `epoch_cut` is the distributed-commit cut: a coordinator acknowledges a
// commit only after appending a marker to its own log, so a host record
// beyond the last marker belongs to a commit that was never acknowledged
// and may be missing on sibling hosts — it is dropped uniformly
// everywhere. Single-node recovery passes no cut (everything fsync'd
// before publish was acknowledged-able, so everything valid replays).
//
// Replay is a multiset evaluation of the op runs (insert = append,
// delete = remove one matching point), independent of any index backend:
// recovery rebuilds indexes afterwards by bulk-loading the recovered
// points, which is both simpler and faster than replaying through a tree.

#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "psi/durability/checkpoint.h"
#include "psi/durability/wal.h"
#include "psi/geometry/point.h"
#include "psi/io/dataset_io.h"

namespace psi::durability {

// Turns one arena checkpoint image back into points — callers that know
// the index type implement it as adopt + flatten. recover() invokes it
// only when WAL-tail replay forces materialisation; a clean restart keeps
// the images intact for the O(bytes) adopt path.
template <typename Coord, int D>
using ArenaDecoder = std::function<std::vector<Point<Coord, D>>(
    std::uint64_t factory_id, const std::vector<std::uint8_t>& image)>;

template <typename Coord, int D>
struct RecoveredShard {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  std::uint64_t factory_id = 0;
  std::vector<Point<Coord, D>> pts;
  // Non-empty iff the shard survived as a raw arena image (checkpoint
  // format kCkptFormatArena, no WAL tail forced materialisation). Exactly
  // one of pts/image carries the contents.
  std::vector<std::uint8_t> image;
};

template <typename Coord, int D>
struct RecoveredState {
  // False when the directory holds neither a manifest nor any WAL record:
  // nothing was ever made durable here.
  bool found = false;
  std::uint64_t checkpoint_epoch = 0;
  // Highest epoch actually replayed (== checkpoint_epoch if the tail was
  // empty).
  std::uint64_t last_epoch = 0;
  std::size_t records_applied = 0;
  // Records skipped by the epoch filters (already in the checkpoint, or
  // beyond the coordinator cut).
  std::size_t records_skipped = 0;
  // True when replay ended at a corrupt/torn record instead of clean EOF.
  bool torn_tail = false;
  std::vector<RecoveredShard<Coord, D>> shards;

  bool has_images() const {
    for (const auto& s : shards) {
      if (!s.image.empty()) return true;
    }
    return false;
  }

  // Decode every remaining arena image to points (callers that bulk-load
  // through a topology reshuffle need the multiset, not the structure).
  void materialize(const ArenaDecoder<Coord, D>& decoder) {
    for (auto& s : shards) {
      if (s.image.empty()) continue;
      s.pts = decoder(s.factory_id, s.image);
      s.image.clear();
      s.image.shrink_to_fit();
    }
  }

  std::vector<Point<Coord, D>> all_points() const {
    // Opaque images hold points this multiset must include — losing them
    // silently would be data loss; materialize() first.
    if (has_images()) {
      throw std::logic_error(
          "recovery: all_points() with unmaterialized arena images");
    }
    std::vector<Point<Coord, D>> out;
    std::size_t total = 0;
    for (const auto& s : shards) total += s.pts.size();
    out.reserve(total);
    for (const auto& s : shards) {
      out.insert(out.end(), s.pts.begin(), s.pts.end());
    }
    return out;
  }
};

namespace detail {

// Remove ONE occurrence of p (multiset semantics); false when absent.
template <typename Coord, int D>
bool erase_one(std::vector<Point<Coord, D>>& pts, const Point<Coord, D>& p) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i] == p) {
      pts[i] = pts.back();
      pts.pop_back();
      return true;
    }
  }
  return false;
}

}  // namespace detail

template <typename Coord, int D>
RecoveredState<Coord, D> recover(
    const std::string& dir,
    std::uint64_t epoch_cut = std::numeric_limits<std::uint64_t>::max(),
    const ArenaDecoder<Coord, D>& decoder = nullptr) {
  using point_t = Point<Coord, D>;
  RecoveredState<Coord, D> out;

  auto manifest = read_manifest(dir);
  std::uint64_t watermark = 0;
  if (manifest) {
    out.found = true;
    out.checkpoint_epoch = manifest->epoch;
    out.last_epoch = manifest->epoch;
    watermark = manifest->watermark;
    out.shards.reserve(manifest->shards.size());
    for (const auto& s : manifest->shards) {
      RecoveredShard<Coord, D> r;
      r.key = s.key;
      r.version = s.version;
      r.factory_id = s.factory_id;
      if (s.format == kCkptFormatArena) {
        // The image bytes load verbatim; validation (CRC, fingerprint)
        // happens where they are adopted or decoded, never here.
        std::ifstream in(dir + "/" + s.file, std::ios::binary);
        if (!in) {
          throw std::runtime_error("recovery: missing checkpoint file " +
                                   s.file);
        }
        r.image.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
      } else {
        r.pts = io::load_binary<Coord, D>(dir + "/" + s.file);
      }
      out.shards.push_back(std::move(r));
    }
  }

  // WAL replay is a multiset evaluation over point vectors (deletes may
  // search every shard), so the first record that actually applies forces
  // every arena image down to points. A clean tail — the common restart
  // after an orderly checkpoint — never decodes anything.
  bool materialized = false;
  auto ensure_points = [&] {
    if (materialized) return;
    materialized = true;
    if (!out.has_images()) return;
    if (!decoder) {
      throw std::runtime_error(
          "recovery: WAL tail replay over an arena checkpoint requires a "
          "decoder");
    }
    out.materialize(decoder);
  };

  auto slot_of = [&out](std::uint64_t key) -> RecoveredShard<Coord, D>& {
    for (auto& s : out.shards) {
      if (s.key == key) return s;
    }
    RecoveredShard<Coord, D> fresh;
    fresh.key = key;
    out.shards.push_back(std::move(fresh));
    return out.shards.back();
  };

  std::vector<std::uint8_t> payload;
  for (const auto& [seq, path] : list_segments(dir)) {
    if (seq < watermark) continue;  // truncation raced the crash; skip
    WalSegmentCursor cur(path);
    if (!cur.valid()) {
      out.torn_tail = true;
      return out;
    }
    while (cur.next(payload)) {
      RecordKind kind;
      try {
        kind = record_kind(payload);
      } catch (const net::WireError&) {
        out.torn_tail = true;
        return out;
      }
      if (kind == RecordKind::kCommitMark) continue;
      if (kind != RecordKind::kCommit) {
        // Unknown kind: a format from the future. Stop, like a tear —
        // replaying past a record we cannot interpret would reorder ops.
        out.torn_tail = true;
        return out;
      }
      CommitRecord<point_t> rec;
      try {
        rec = decode_commit_record<point_t>(payload);
      } catch (const net::WireError&) {
        out.torn_tail = true;
        return out;
      }
      if (rec.epoch <= out.checkpoint_epoch || rec.epoch > epoch_cut) {
        ++out.records_skipped;
        continue;
      }
      ensure_points();
      out.found = true;
      for (auto& sh : rec.shards) {
        auto& slot = slot_of(sh.key);
        for (const auto& run : sh.runs) {
          if (!run.is_delete) {
            slot.pts.insert(slot.pts.end(), run.pts.begin(), run.pts.end());
            continue;
          }
          for (const auto& p : run.pts) {
            // Own shard first; then everywhere. Splits and merges between
            // the checkpoint and the crash re-key shards without logging
            // the redistribution (installs are not WAL events), so a
            // post-split delete can target a key whose victim still sits
            // under the pre-split key in the recovered state. The union is
            // what recovery promises (callers bulk-load all_points()), and
            // the union only needs ONE matching occurrence gone.
            if (!detail::erase_one(slot.pts, p)) {
              for (auto& other : out.shards) {
                if (&other != &slot && detail::erase_one(other.pts, p)) break;
              }
            }
          }
        }
        if (sh.version > slot.version) slot.version = sh.version;
      }
      if (rec.epoch > out.last_epoch) out.last_epoch = rec.epoch;
      ++out.records_applied;
    }
    if (cur.torn()) {
      out.torn_tail = true;
      return out;
    }
  }
  return out;
}

}  // namespace psi::durability
