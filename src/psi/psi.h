// PSI-Lib (Ψ-Lib): Parallel Spatial Index Library — umbrella header.
//
// Reproduction of "Parallel Dynamic Spatial Indexes" (PPoPP 2026).
//
// Index structures (all share the same interface: build / batch_insert /
// batch_delete / knn / range_count / range_list / size):
//
//   psi::POrthTree<Coord, D>            paper contribution #1 (Sec 3)
//   psi::SpacHTree<Coord, D>            paper contribution #2, Hilbert curve
//   psi::SpacZTree<Coord, D>            paper contribution #2, Morton curve
//   psi::SpacTree<...>(cpam_params())   CPAM-H / CPAM-Z baseline behaviour
//   psi::PkdTree<Coord, D>              parallel kd-tree baseline
//   psi::ZdTree<Coord, D>               Morton-sorted orth-tree baseline
//   psi::RTree<Coord, D>                sequential quadratic R-tree baseline
//   psi::BruteForceIndex<Coord, D>      O(n) oracle (tests)
//
// Service layer (psi::service): SpatialService<Index> — a sharded,
// epoch-versioned concurrent façade over any of the indexes above
// (submit()/flush()/snapshot()/stats(); see src/psi/service/service.h).
//
// Substrates: psi::parallel (fork-join scheduler + primitives), psi::sfc
// (Morton/Hilbert codecs), psi::datagen (paper workload generators).

#pragma once

#include "psi/baselines/brute_force.h"
#include "psi/baselines/log_structured.h"
#include "psi/bench/batch_queries.h"
#include "psi/bench/index_stats.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/baselines/rtree.h"
#include "psi/baselines/zd_tree.h"
#include "psi/core/porth/porth_tree.h"
#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/geometry/region.h"
#include "psi/io/dataset_io.h"
#include "psi/parallel/counting_sort.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/service/epoch.h"
#include "psi/service/group_commit.h"
#include "psi/service/request_queue.h"
#include "psi/service/service.h"
#include "psi/service/service_stats.h"
#include "psi/service/shard_map.h"
#include "psi/service/snapshot.h"
#include "psi/sfc/codec.h"
