// PSI-Lib (Ψ-Lib): Parallel Spatial Index Library — umbrella header.
//
// Reproduction of "Parallel Dynamic Spatial Indexes" (PPoPP 2026).
//
// Index structures — all conform to the psi::api::BatchDynamicIndex
// concept (src/psi/api/concepts.h): build / batch_insert / batch_delete /
// size / bounds / knn / range_count / range_list / ball_count / ball_list /
// flatten, plus the streaming sink queries range_visit / ball_visit /
// knn_visit (src/psi/api/query.h). Conformance of every backend is
// static_assert-checked in src/psi/api/conformance.h:
//
//   psi::POrthTree<Coord, D>            paper contribution #1 (Sec 3)
//   psi::SpacHTree<Coord, D>            paper contribution #2, Hilbert curve
//   psi::SpacZTree<Coord, D>            paper contribution #2, Morton curve
//   psi::SpacTree<...>(cpam_params())   CPAM-H / CPAM-Z baseline behaviour
//   psi::PkdTree<Coord, D>              parallel kd-tree baseline
//   psi::ZdTree<Coord, D>               Morton-sorted orth-tree baseline
//   psi::RTree<Coord, D>                sequential quadratic R-tree baseline
//   psi::LogTree / psi::BhlTree         log-structured baselines (Fig 8)
//   psi::BruteForceIndex<Coord, D>      O(n) oracle (tests)
//
// The streaming-sink query model: listing queries stream matches into a
// caller-supplied sink (any callable; returning false stops the traversal
// early) instead of materialising vectors. The classic materialising forms
// (range_list / ball_list / knn) remain as thin adapters over the visits.
//
// Type erasure (psi::api): AnyIndex<Coord, D> wraps any conforming backend
// behind one concrete type via a small hand-rolled vtable (one indirect
// call per operation — no std::function, no RTTI); BackendRegistry maps
// names ("spac-z", "log", ...) to AnyIndex factories for runtime backend
// choice. Monomorphic instantiations keep the fully templated
// zero-overhead path; AnyIndex buys flexibility for one virtual hop.
//
// Service layer (psi::service): SpatialService<Index> — a sharded,
// epoch-versioned concurrent façade over any conforming index
// (submit()/flush()/snapshot()/stats(); see src/psi/service/service.h).
// Snapshots expose the same streaming queries, fanning sinks across shards
// with no intermediate per-shard vectors. The shard factory takes the
// shard id, so SpatialService<api::AnyIndex<...>> runs *heterogeneous*
// backends per shard — e.g. SPaC-Z hot shards and log-structured cold
// shards in one service — and shard split/merge migrates points across
// backend types.
//
// The redesigned read surface (psi::api, src/psi/api/read_options.h): one
// entry point on every read facade —
//
//   query(QueryDesc, ReadOptions, Sink&)
//
// QueryDesc names the shape (range/ball list or count, knn), ReadOptions
// names the consistency point (ReadCommitted, or PinnedEpoch(e) against a
// bounded ring of retained views — past the horizon raises EpochRetired),
// the cache policy, and wire streaming (v3 kQueryChunk frames under
// credit-based backpressure on the distributed facade). The historical
// range_list / ball_count_cached / knn... method zoo survives as thin
// adapters over query(). See README "Read consistency & streaming".
//
// Substrates: psi::parallel (fork-join scheduler + primitives), psi::sfc
// (Morton/Hilbert codecs), psi::datagen (paper workload generators).
//
// Observability (psi::telemetry): lock-free log2-bucketed latency
// histograms at every service entry point and commit stage, per-shard
// read/write heat with per-epoch EWMA decay, PSI_TRACE_SPAN pipeline
// tracing with Chrome-trace export, and a StatsRegistry rendering JSON or
// Prometheus text. Compiles out under PSI_TELEMETRY_DISABLED
// (-DPSI_TELEMETRY=OFF); see README "Observability".

#pragma once

#include "psi/api/any_index.h"
#include "psi/api/concepts.h"
#include "psi/api/conformance.h"
#include "psi/api/query.h"
#include "psi/api/read_options.h"
#include "psi/api/registry.h"
#include "psi/baselines/brute_force.h"
#include "psi/baselines/log_structured.h"
#include "psi/bench/batch_queries.h"
#include "psi/bench/index_stats.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/baselines/rtree.h"
#include "psi/baselines/zd_tree.h"
#include "psi/core/porth/porth_tree.h"
#include "psi/core/spac/spac_tree.h"
#include "psi/datagen/generators.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/geometry/region.h"
#include "psi/io/dataset_io.h"
#include "psi/net/distributed_service.h"
#include "psi/net/node.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"
#include "psi/parallel/counting_sort.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/parallel/task_group.h"
#include "psi/service/epoch.h"
#include "psi/service/group_commit.h"
#include "psi/service/query_cache.h"
#include "psi/service/request_queue.h"
#include "psi/service/service.h"
#include "psi/service/service_stats.h"
#include "psi/service/shard_map.h"
#include "psi/service/shard_store.h"
#include "psi/service/snapshot.h"
#include "psi/sfc/codec.h"
#include "psi/telemetry/histogram.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/registry.h"
#include "psi/telemetry/telemetry.h"
#include "psi/telemetry/trace.h"
