// PSI-Lib: dataset I/O.
//
// Simple binary and CSV point-file formats so generated workloads can be
// persisted and external datasets (e.g. real OSM/COSMO extracts, paper
// Sec F.4) can be loaded. The binary format is a small header (magic,
// version, dimension, coordinate width, count) followed by row-major
// little-endian coordinates.

#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "psi/geometry/point.h"

namespace psi::io {

inline constexpr std::uint32_t kMagic = 0x50534931;  // "PSI1"

struct BinaryHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t dimension;
  std::uint32_t coord_bytes;
  std::uint64_t count;
};

template <typename Coord, int D>
void save_binary(const std::string& path,
                 const std::vector<Point<Coord, D>>& pts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("io: cannot open for write: " + path);
  BinaryHeader h{kMagic, 1, static_cast<std::uint32_t>(D),
                 static_cast<std::uint32_t>(sizeof(Coord)),
                 static_cast<std::uint64_t>(pts.size())};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(pts.data()),
            static_cast<std::streamsize>(pts.size() * sizeof(Point<Coord, D>)));
  if (!out) throw std::runtime_error("io: write failed: " + path);
}

template <typename Coord, int D>
std::vector<Point<Coord, D>> load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("io: cannot open for read: " + path);
  BinaryHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in || h.magic != kMagic) {
    throw std::runtime_error("io: bad magic in " + path);
  }
  if (h.dimension != static_cast<std::uint32_t>(D) ||
      h.coord_bytes != sizeof(Coord)) {
    throw std::runtime_error("io: dimension/coordinate mismatch in " + path);
  }
  std::vector<Point<Coord, D>> pts(h.count);
  in.read(reinterpret_cast<char*>(pts.data()),
          static_cast<std::streamsize>(h.count * sizeof(Point<Coord, D>)));
  if (!in) throw std::runtime_error("io: truncated file: " + path);
  return pts;
}

// CSV: one point per line, coordinates separated by commas. Lines starting
// with '#' are skipped.
template <typename Coord, int D>
void save_csv(const std::string& path, const std::vector<Point<Coord, D>>& pts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("io: cannot open for write: " + path);
  for (const auto& p : pts) {
    for (int d = 0; d < D; ++d) {
      if (d) out << ',';
      out << p[d];
    }
    out << '\n';
  }
}

template <typename Coord, int D>
std::vector<Point<Coord, D>> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("io: cannot open for read: " + path);
  std::vector<Point<Coord, D>> pts;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    Point<Coord, D> p;
    std::string cell;
    for (int d = 0; d < D; ++d) {
      if (!std::getline(ss, cell, ',')) {
        throw std::runtime_error("io: short row in " + path);
      }
      if constexpr (std::is_integral_v<Coord>) {
        p[d] = static_cast<Coord>(std::stoll(cell));
      } else {
        p[d] = static_cast<Coord>(std::stod(cell));
      }
    }
    pts.push_back(p);
  }
  return pts;
}

}  // namespace psi::io
