// PSI-Lib: dataset I/O.
//
// Simple binary and CSV point-file formats so generated workloads can be
// persisted and external datasets (e.g. real OSM/COSMO extracts, paper
// Sec F.4) can be loaded. The binary format is a small header (magic,
// version, dimension, coordinate width, count) followed by row-major
// little-endian coordinates.
//
// Error contract: every failure path throws std::runtime_error with the
// offending path (and line number for CSV) in the message — a nonexistent
// file, a short/truncated read, a corrupt or wrong-version header, and a
// header whose count disagrees with the actual file size all fail loudly
// instead of returning truncated data or allocating from a garbage count.

#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "psi/geometry/point.h"

namespace psi::io {

inline constexpr std::uint32_t kMagic = 0x50534931;  // "PSI1"
inline constexpr std::uint32_t kFormatVersion = 1;

struct BinaryHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t dimension;
  std::uint32_t coord_bytes;
  std::uint64_t count;
};

template <typename Coord, int D>
void save_binary(const std::string& path,
                 const std::vector<Point<Coord, D>>& pts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("io: cannot open for write: " + path);
  BinaryHeader h{kMagic, kFormatVersion, static_cast<std::uint32_t>(D),
                 static_cast<std::uint32_t>(sizeof(Coord)),
                 static_cast<std::uint64_t>(pts.size())};
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(pts.data()),
            static_cast<std::streamsize>(pts.size() * sizeof(Point<Coord, D>)));
  if (!out) throw std::runtime_error("io: write failed: " + path);
}

// ---------------------------------------------------------------------------
// Durable variants. `save_binary` above hands bytes to the page cache and
// returns — fine for datasets, not for recovery artifacts. These reach the
// media: fsync the file, and for the atomic variant write-then-rename so a
// crash mid-write leaves either the old file or the new one, never a
// partial. Used by the durability checkpoint writer.
// ---------------------------------------------------------------------------

inline void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("io: fsync open failed: " + path + ": " +
                             std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("io: fsync failed: " + path + ": " +
                             std::strerror(errno));
  }
}

inline void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  fsync_path(parent.empty() ? "." : parent.string());
}

// save_binary + fsync before close: the bytes are on durable media when
// this returns (or it throws).
template <typename Coord, int D>
void save_binary_fsync(const std::string& path,
                       const std::vector<Point<Coord, D>>& pts) {
  save_binary(path, pts);
  fsync_path(path);
}

// Write to `path.tmp`, fsync, rename over `path`, fsync the directory.
// POSIX rename is atomic, so a reader (or a post-crash recovery) sees
// either the previous complete file or the new complete file.
template <typename Coord, int D>
void save_binary_atomic(const std::string& path,
                        const std::vector<Point<Coord, D>>& pts,
                        bool do_fsync = true) {
  const std::string tmp = path + ".tmp";
  try {
    save_binary(tmp, pts);
    if (do_fsync) fsync_path(tmp);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("io: atomic rename failed: " + path + ": " +
                             std::strerror(errno));
  }
  if (do_fsync) fsync_parent_dir(path);
}

// Raw-bytes flavour of the same write-then-rename dance (used for the
// checkpoint manifest, which is not a point file).
inline void write_file_atomic(const std::string& path,
                              const std::uint8_t* data, std::size_t n,
                              bool do_fsync = true) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("io: cannot open for write: " + tmp);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    if (!out) {
      ::unlink(tmp.c_str());
      throw std::runtime_error("io: write failed: " + tmp);
    }
  }
  try {
    if (do_fsync) fsync_path(tmp);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("io: atomic rename failed: " + path + ": " +
                             std::strerror(errno));
  }
  if (do_fsync) fsync_parent_dir(path);
}

template <typename Coord, int D>
std::vector<Point<Coord, D>> load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("io: cannot open for read: " + path);
  BinaryHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(h))) {
    throw std::runtime_error("io: truncated header (file shorter than " +
                             std::to_string(sizeof(h)) + " bytes): " + path);
  }
  if (h.magic != kMagic) {
    throw std::runtime_error("io: bad magic in " + path);
  }
  if (h.version != kFormatVersion) {
    throw std::runtime_error("io: unsupported format version " +
                             std::to_string(h.version) + " (expected " +
                             std::to_string(kFormatVersion) + ") in " + path);
  }
  if (h.dimension != static_cast<std::uint32_t>(D) ||
      h.coord_bytes != sizeof(Coord)) {
    throw std::runtime_error("io: dimension/coordinate mismatch in " + path);
  }
  // Validate the declared count against the actual payload size BEFORE
  // allocating: a corrupt header must not trigger a multi-gigabyte
  // allocation (or a silent short read), and count * point_size is checked
  // for overflow before it is formed.
  constexpr std::uint64_t point_bytes = sizeof(Point<Coord, D>);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) throw std::runtime_error("io: cannot stat: " + path);
  const std::uint64_t payload =
      static_cast<std::uint64_t>(end_pos) - sizeof(h);
  if (h.count > payload / point_bytes) {
    throw std::runtime_error(
        "io: truncated file: header declares " + std::to_string(h.count) +
        " points of " + std::to_string(point_bytes) + " bytes but only " +
        std::to_string(payload) + " payload bytes are present: " + path);
  }
  in.seekg(static_cast<std::streamoff>(sizeof(h)), std::ios::beg);
  std::vector<Point<Coord, D>> pts(h.count);
  in.read(reinterpret_cast<char*>(pts.data()),
          static_cast<std::streamsize>(h.count * point_bytes));
  if (in.gcount() != static_cast<std::streamsize>(h.count * point_bytes)) {
    throw std::runtime_error("io: truncated file: " + path);
  }
  return pts;
}

// CSV: one point per line, coordinates separated by commas. Lines starting
// with '#' are skipped.
template <typename Coord, int D>
void save_csv(const std::string& path, const std::vector<Point<Coord, D>>& pts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("io: cannot open for write: " + path);
  for (const auto& p : pts) {
    for (int d = 0; d < D; ++d) {
      if (d) out << ',';
      out << p[d];
    }
    out << '\n';
  }
}

template <typename Coord, int D>
std::vector<Point<Coord, D>> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("io: cannot open for read: " + path);
  std::vector<Point<Coord, D>> pts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    Point<Coord, D> p;
    std::string cell;
    for (int d = 0; d < D; ++d) {
      if (!std::getline(ss, cell, ',')) {
        throw std::runtime_error("io: short row (expected " +
                                 std::to_string(D) + " coordinates) at " +
                                 path + ":" + std::to_string(lineno));
      }
      // Strict cell parse: stoll/stod alone would accept trailing junk
      // ("12;3" parses as 12) and throw bare invalid_argument with no
      // location on garbage.
      try {
        std::size_t used = 0;
        if constexpr (std::is_integral_v<Coord>) {
          p[d] = static_cast<Coord>(std::stoll(cell, &used));
        } else {
          p[d] = static_cast<Coord>(std::stod(cell, &used));
        }
        while (used < cell.size() &&
               (cell[used] == ' ' || cell[used] == '\t' ||
                cell[used] == '\r')) {
          ++used;
        }
        if (used != cell.size()) {
          throw std::invalid_argument("trailing characters");
        }
      } catch (const std::exception&) {
        throw std::runtime_error("io: bad coordinate '" + cell + "' at " +
                                 path + ":" + std::to_string(lineno));
      }
    }
    pts.push_back(p);
  }
  return pts;
}

}  // namespace psi::io
