// PSI-Lib telemetry: pipeline tracing with per-thread ring buffers.
//
// A TraceSpan is an RAII complete-event recorder: construction stamps the
// start, destruction appends {name, start, duration, thread} to the
// calling thread's ring buffer. When tracing is disabled at runtime (the
// default) a span costs one relaxed atomic load; when enabled it costs a
// clock read on each end plus an uncontended lock around the thread's own
// ring — tens of nanoseconds, cheap enough to leave on the commit pipeline
// and the query fan-out permanently. Rings are bounded (newest events
// win), so a tracer left enabled can never exhaust memory.
//
// Per-thread rings are each guarded by their own mutex rather than written
// racily: the writer is always the owning thread, so the lock is
// uncontended on the hot path, and the dump side (which walks every ring)
// stays TSan-clean without per-event atomics.
//
// Export is Chrome trace format — one JSON object with "traceEvents" "X"
// (complete) entries, loadable directly in chrome://tracing or Perfetto.
// Span names must be string literals (the ring stores the pointer).
//
// Compiled out entirely under PSI_TELEMETRY_DISABLED: PSI_TRACE_SPAN
// expands to nothing and the singleton is never instantiated.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "psi/telemetry/telemetry.h"

namespace psi::telemetry {

class Tracer {
 public:
  // Leaked singleton: spans may fire from detached pool threads during
  // static destruction; a leaked instance cannot be destroyed under them.
  static Tracer& instance() {
    static Tracer* t = new Tracer();
    return *t;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Append one complete event to the calling thread's ring.
  void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns) {
    Ring& ring = local_ring();
    std::lock_guard<std::mutex> g(ring.mu);
    if (ring.events.size() < kRingCapacity) {
      ring.events.push_back(Event{name, ts_ns, dur_ns});
    } else {
      ring.events[ring.next % kRingCapacity] = Event{name, ts_ns, dur_ns};
      ++ring.dropped;
    }
    ++ring.next;
  }

  // Events currently buffered across all rings (diagnostics/tests).
  std::size_t event_count() const {
    std::lock_guard<std::mutex> g(rings_mu_);
    std::size_t n = 0;
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> rg(r->mu);
      n += r->events.size();
    }
    return n;
  }

  // Drop all buffered events (between bench cells).
  void clear() {
    std::lock_guard<std::mutex> g(rings_mu_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> rg(r->mu);
      r->events.clear();
      r->next = 0;
      r->dropped = 0;
    }
  }

  // Chrome trace JSON ("X" complete events, microsecond timestamps).
  std::string chrome_trace() const {
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::lock_guard<std::mutex> g(rings_mu_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> rg(r->mu);
      for (const Event& e : r->events) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << r->tid << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1000.0
           << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0 << '}';
      }
    }
    os << "]}";
    return os.str();
  }

  // Dump to a file; false (with no partial file) if it cannot be opened.
  bool write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = chrome_trace();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  static constexpr std::size_t kRingCapacity = 8192;

  struct Event {
    const char* name;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
  };

  struct Ring {
    mutable std::mutex mu;
    std::vector<Event> events;
    std::size_t next = 0;
    std::uint64_t dropped = 0;
    std::uint64_t tid = 0;
  };

  Tracer() = default;

  Ring& local_ring() {
    thread_local std::shared_ptr<Ring> ring = [this] {
      auto r = std::make_shared<Ring>();
      std::lock_guard<std::mutex> g(rings_mu_);
      r->tid = ++tid_counter_;
      rings_.push_back(r);
      return r;
    }();
    return *ring;
  }

  std::atomic<bool> enabled_{false};
  mutable std::mutex rings_mu_;
  // Rings are never removed: a thread's ring outlives the thread (events
  // must survive until the dump), and the tracer itself is leaked.
  std::vector<std::shared_ptr<Ring>> rings_;
  std::uint64_t tid_counter_ = 0;
};

// RAII complete-event span. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if constexpr (kEnabled) {
      if (Tracer::instance().enabled()) {
        name_ = name;
        start_ = now_ns();
      }
    } else {
      (void)name;
    }
  }
  ~TraceSpan() {
    if constexpr (kEnabled) {
      if (name_ != nullptr) {
        Tracer::instance().record(name_, start_, now_ns() - start_);
      }
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace psi::telemetry

// Scoped span covering the rest of the enclosing block.
#ifndef PSI_TELEMETRY_DISABLED
#define PSI_TRACE_CONCAT_INNER(a, b) a##b
#define PSI_TRACE_CONCAT(a, b) PSI_TRACE_CONCAT_INNER(a, b)
#define PSI_TRACE_SPAN(name)                                       \
  ::psi::telemetry::TraceSpan PSI_TRACE_CONCAT(psi_trace_span_,    \
                                               __LINE__) { name }
#else
#define PSI_TRACE_SPAN(name) ((void)0)
#endif
