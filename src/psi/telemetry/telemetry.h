// PSI-Lib telemetry: the substrate shared by every instrument.
//
// The observability layer (histogram.h, trace.h, registry.h, metrics.h)
// has one compile-time switch: building with -DPSI_TELEMETRY_DISABLED
// turns every record/span/counter into a no-op with zero storage, so a
// latency-critical deployment pays nothing — the CMake option
// PSI_TELEMETRY (default ON) maps to it. `kEnabled` lets instrumented
// code branch with `if constexpr` instead of sprinkling #ifdefs.
//
// All timestamps in the telemetry layer are steady-clock nanoseconds
// (now_ns below): monotone, comparable across threads, never affected by
// wall-clock adjustments. Chrome-trace export converts to microseconds at
// dump time (trace.h).

#pragma once

#include <chrono>
#include <cstdint>

namespace psi::telemetry {

#ifdef PSI_TELEMETRY_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Monotone nanosecond timestamp.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace psi::telemetry
