// PSI-Lib telemetry: the service-layer instrument bundle.
//
// ServiceMetrics groups the histograms one service (or one distributed
// shard host) records into: end-to-end queued-op latency per request kind,
// snapshot read-path latency per query kind, commit-pipeline stage
// timings, and cache hit/miss service times. It is shared by shared_ptr
// between the group committer (owner), the shard store (whose detached
// replay tasks must keep it alive), and every published View (so readers
// record into it without touching the committer) — histograms are
// individually thread-safe, so no further coordination is needed.
//
// ShardHeat is the per-shard access-skew accounting the ROADMAP's
// heat-driven autopilot consumes: one cache-line-padded pair of relaxed
// read/write counters per shard, keyed positionally but *carried across
// topology changes by the shard's stable key* (realign), with a per-epoch
// EWMA fold (decay) so "hot" means hot recently, not hot ever. The cell
// vector is published inside each View by shared_ptr: readers of an old
// view keep bumping the old cells, whose counts are dropped at the next
// realign — an acceptable undercount during the brief topology-change
// window, in exchange for a read path with zero synchronisation beyond
// one relaxed fetch_add per routed shard.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "psi/telemetry/histogram.h"
#include "psi/telemetry/telemetry.h"

namespace psi::telemetry {

// Queued (end-to-end) op kinds; mirrors service::RequestKind order.
enum class QueuedOp : std::size_t {
  kInsert = 0,
  kDelete,
  kKnn,
  kRangeCount,
  kRangeList,
  kBall,
};
inline constexpr std::size_t kNumQueuedOps = 6;

// Snapshot read-path kinds. The streaming visits fold into the list
// kinds (range_visit -> kRangeList, ball_visit -> kBallList): same
// traversal, and the materialising adapters do not route through the
// visits, so nothing is double-counted.
enum class ReadOp : std::size_t {
  kKnn = 0,
  kRangeCount,
  kRangeList,
  kBallCount,
  kBallList,
};
inline constexpr std::size_t kNumReadOps = 5;

// Commit-pipeline stages (group_commit.h / shard_store.h / service.h).
enum class Stage : std::size_t {
  kDrain = 0,   // queue drain (per commit group)
  kApply,       // per-shard standby apply + swap (per shard)
  kReplay,      // asynchronous standby replay (per task)
  kGrace,       // grace-period wait inside apply (per shard)
  kPublish,     // view construction + epoch swap (per commit)
};
inline constexpr std::size_t kNumStages = 5;

inline const char* queued_op_name(std::size_t i) {
  static const char* kNames[kNumQueuedOps] = {
      "insert", "delete", "knn", "range_count", "range_list", "ball"};
  return kNames[i];
}
inline const char* read_op_name(std::size_t i) {
  static const char* kNames[kNumReadOps] = {"knn", "range_count", "range_list",
                                            "ball_count", "ball_list"};
  return kNames[i];
}
inline const char* stage_name(std::size_t i) {
  static const char* kNames[kNumStages] = {"drain", "apply", "replay", "grace",
                                           "publish"};
  return kNames[i];
}

struct ServiceMetrics {
  std::vector<std::unique_ptr<Histogram>> queued =
      make_hists(kNumQueuedOps);
  std::vector<std::unique_ptr<Histogram>> read = make_hists(kNumReadOps);
  std::vector<std::unique_ptr<Histogram>> stage = make_hists(kNumStages);
  Histogram cache_hit;
  Histogram cache_miss;
  // Durability write path: time to serialise+append a commit record and
  // time spent in the pre-publish fsync.
  Histogram wal_append;
  Histogram wal_fsync;

  Histogram& queued_hist(QueuedOp o) {
    return *queued[static_cast<std::size_t>(o)];
  }
  Histogram& read_hist(ReadOp o) { return *read[static_cast<std::size_t>(o)]; }
  Histogram& stage_hist(Stage s) {
    return *stage[static_cast<std::size_t>(s)];
  }

 private:
  // Histograms are non-movable (atomics), so the arrays hold unique_ptrs.
  static std::vector<std::unique_ptr<Histogram>> make_hists(std::size_t n) {
    std::vector<std::unique_ptr<Histogram>> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(std::make_unique<Histogram>());
    }
    return v;
  }
};

// One shard's heat on the wire / in stats: raw cumulative counters keyed
// by the shard's stable key.
struct HeatEntry {
  std::uint64_t key = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

class ShardHeat {
 public:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };
  using cells_t = std::vector<Cell>;

  // Per-epoch EWMA weight: heat halves every epoch without fresh traffic.
  static constexpr double kDecay = 0.5;

  // Writer side; all calls externally serialised (the commit lock / host
  // mutation mutex). Readers only ever touch the published cells.

  // Match the cell array to the current shard topology. Counters, EWMA,
  // and deltas carry over for keys that survive; new keys start cold.
  // Re-publishing the SAME keys keeps the same cells (the common
  // every-commit call is a cheap vector compare).
  void realign(const std::vector<std::uint64_t>& keys) {
    if constexpr (!kEnabled) return;
    if (cells_ && keys == keys_) return;
    auto fresh = std::make_shared<cells_t>(keys.size());
    std::vector<std::uint64_t> last_r(keys.size(), 0), last_w(keys.size(), 0);
    std::vector<double> ewma(keys.size(), 0.0);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t old = index_of(keys[i]);
      if (old == npos) continue;
      (*fresh)[i].reads.store((*cells_)[old].reads.load(
                                  std::memory_order_relaxed),
                              std::memory_order_relaxed);
      (*fresh)[i].writes.store((*cells_)[old].writes.load(
                                   std::memory_order_relaxed),
                               std::memory_order_relaxed);
      last_r[i] = last_reads_[old];
      last_w[i] = last_writes_[old];
      ewma[i] = ewma_[old];
    }
    cells_ = std::move(fresh);
    keys_ = keys;
    last_reads_ = std::move(last_r);
    last_writes_ = std::move(last_w);
    ewma_ = std::move(ewma);
  }

  // Fold the traffic since the last call into the EWMA. Call once per
  // published epoch.
  void decay() {
    if constexpr (!kEnabled) return;
    if (!cells_) return;
    for (std::size_t i = 0; i < cells_->size(); ++i) {
      const std::uint64_t r =
          (*cells_)[i].reads.load(std::memory_order_relaxed);
      const std::uint64_t w =
          (*cells_)[i].writes.load(std::memory_order_relaxed);
      const double delta = static_cast<double>((r - last_reads_[i]) +
                                               (w - last_writes_[i]));
      ewma_[i] = kDecay * ewma_[i] + delta;
      last_reads_[i] = r;
      last_writes_[i] = w;
    }
  }

  void record_write(std::size_t i, std::uint64_t n) {
    if constexpr (!kEnabled) return;
    if (!cells_ || i >= cells_->size()) return;
    (*cells_)[i].writes.fetch_add(n, std::memory_order_relaxed);
  }

  // The published cell array (null when telemetry is disabled).
  const std::shared_ptr<cells_t>& cells() const { return cells_; }

  // Observers (writer-serialised, like the mutators).
  std::vector<std::uint64_t> reads() const { return load(&Cell::reads); }
  std::vector<std::uint64_t> writes() const { return load(&Cell::writes); }
  const std::vector<double>& decayed() const { return ewma_; }

  std::vector<HeatEntry> entries() const {
    std::vector<HeatEntry> out;
    if (!cells_) return out;
    out.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      out.push_back(HeatEntry{
          keys_[i], (*cells_)[i].reads.load(std::memory_order_relaxed),
          (*cells_)[i].writes.load(std::memory_order_relaxed)});
    }
    return out;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t index_of(std::uint64_t key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return i;
    }
    return npos;
  }

  std::vector<std::uint64_t> load(
      std::atomic<std::uint64_t> Cell::* field) const {
    std::vector<std::uint64_t> out;
    if (!cells_) return out;
    out.reserve(cells_->size());
    for (const Cell& c : *cells_) {
      out.push_back((c.*field).load(std::memory_order_relaxed));
    }
    return out;
  }

  std::shared_ptr<cells_t> cells_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> last_reads_, last_writes_;
  std::vector<double> ewma_;
};

// Bump the read counter of shards [lo, hi] in a published cell array.
// Null-safe: views published with telemetry disabled carry no cells.
inline void record_reads(const std::shared_ptr<ShardHeat::cells_t>& cells,
                         std::size_t lo, std::size_t hi) {
  if constexpr (!kEnabled) return;
  if (!cells) return;
  for (std::size_t i = lo; i <= hi && i < cells->size(); ++i) {
    (*cells)[i].reads.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void record_read(const std::shared_ptr<ShardHeat::cells_t>& cells,
                        std::size_t i) {
  if constexpr (!kEnabled) return;
  if (!cells) return;
  if (i < cells->size()) {
    (*cells)[i].reads.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace psi::telemetry
