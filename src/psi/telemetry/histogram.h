// PSI-Lib telemetry: lock-free log2-bucketed latency histograms.
//
// A Histogram is a fixed array of 65 power-of-two buckets (bucket 0 holds
// the value 0; bucket b holds [2^(b-1), 2^b - 1]) replicated over a small
// number of cache-line-padded slots. Threads are striped over the slots by
// a cheap thread-local id, so concurrent record() calls from the service's
// reader threads, the commit writer, and the pool workers touch disjoint
// cache lines in the common case and never take a lock — every slot field
// is a relaxed atomic. Nanosecond-scale values over a 64-bit range fit the
// scheme exactly: relative bucket error is < 2x everywhere, which is well
// inside the run-to-run noise of any latency percentile.
//
// Reads go through snapshot(): a HistogramSnapshot is a plain value with
// bucket-wise merge (associative and commutative — the distributed stats
// RPC merges per-host snapshots into cluster-wide percentiles, node.h /
// distributed_service.h) and percentile extraction. percentile(p) returns
// the inclusive upper bound of the bucket containing the rank-p sample,
// so the reported p50/p95/p99 are exact up to bucket resolution: the true
// sample provably lies in the same bucket (the oracle test asserts this).
//
// With PSI_TELEMETRY_DISABLED the class keeps its interface but drops all
// storage; record() compiles to nothing.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "psi/telemetry/telemetry.h"

namespace psi::telemetry {

inline constexpr std::size_t kNumBuckets = 65;

// Bucket index of a nanosecond value: bit_width gives 0 for 0 and
// floor(log2(v)) + 1 otherwise — exactly the [2^(b-1), 2^b) partition.
inline constexpr std::size_t bucket_of(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

// Inclusive upper bound of bucket b (the value percentile() reports).
inline constexpr std::uint64_t bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

// A consistent point-in-time copy of a histogram: plain integers, safe to
// serialise, merge, and ship over the wire.
struct HistogramSnapshot {
  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  bool empty() const { return count == 0; }

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Bucket-wise merge: associative + commutative, the cluster aggregation
  // primitive.
  HistogramSnapshot& merge(const HistogramSnapshot& o) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) buckets[b] += o.buckets[b];
    count += o.count;
    sum += o.sum;
    max = std::max(max, o.max);
    return *this;
  }
  friend HistogramSnapshot operator+(HistogramSnapshot a,
                                     const HistogramSnapshot& b) {
    a.merge(b);
    return a;
  }

  // Value at percentile p (0 < p <= 100): the upper bound of the bucket
  // holding the sample of rank ceil(p/100 * count) — the same rank a
  // sorted-vector oracle would index. 0 when empty.
  std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    const double want = p / 100.0 * static_cast<double>(count);
    std::uint64_t rank =
        static_cast<std::uint64_t>(want) >= want
            ? static_cast<std::uint64_t>(want)
            : static_cast<std::uint64_t>(want) + 1;  // ceil
    rank = std::clamp<std::uint64_t>(rank, 1, count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets[b];
      if (seen >= rank) return bucket_upper(b);
    }
    return max;
  }
};

// The flat per-op summary ServiceStats carries (and the benches emit).
struct LatencySummary {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
  double mean = 0;
};

inline LatencySummary summarize(const HistogramSnapshot& s) {
  LatencySummary out;
  out.count = s.count;
  out.p50 = s.percentile(50);
  out.p95 = s.percentile(95);
  out.p99 = s.percentile(99);
  out.max = s.max;
  out.mean = s.mean();
  return out;
}

namespace detail {
// Threads stripe over the histogram slots by a process-wide thread id:
// assigned once per thread, shared by every histogram so one hot thread
// stays on one cache line of each.
inline constexpr std::size_t kSlots = 8;
inline std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}
}  // namespace detail

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Record one nanosecond sample. Lock-free: relaxed adds on the calling
  // thread's slot, plus a CAS loop only when the slot max advances.
  void record(std::uint64_t ns) {
#ifndef PSI_TELEMETRY_DISABLED
    Slot& s = slots_[detail::thread_slot()];
    s.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (ns > cur &&
           !s.max.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
#else
    (void)ns;
#endif
  }

  // Merge every slot into one plain snapshot. Concurrent record()s may or
  // may not be included — each sample is whole (count/sum/bucket drift
  // between fields is bounded by the in-flight calls), which is all a
  // monitoring read needs.
  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
#ifndef PSI_TELEMETRY_DISABLED
    for (const Slot& s : slots_) {
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        const std::uint64_t c = s.buckets[b].load(std::memory_order_relaxed);
        out.buckets[b] += c;
        out.count += c;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
      out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
    }
#endif
    return out;
  }

 private:
#ifndef PSI_TELEMETRY_DISABLED
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Slot, detail::kSlots> slots_{};
#endif
};

// RAII sample: records (destruction - construction) into the histogram.
// A null histogram makes it a no-op, so call sites can instrument
// unconditionally against optional metrics (snapshot.h null-guards views
// published before telemetry wiring).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : hist_(h) {
    if constexpr (kEnabled) {
      if (hist_ != nullptr) start_ = now_ns();
    }
  }
  ~ScopedTimer() {
    if constexpr (kEnabled) {
      if (hist_ != nullptr) hist_->record(now_ns() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_ = 0;
};

}  // namespace psi::telemetry
