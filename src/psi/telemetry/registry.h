// PSI-Lib telemetry: the process-wide stats registry.
//
// A StatsRegistry is the export surface: named Counters (relaxed atomics),
// named Histograms (histogram.h), and gauge callbacks (sampled at snapshot
// time — the scheduler registers its steal/park counters this way so the
// registry never holds a pointer into a pool that may be restarted).
// snapshot() produces a plain value that renders as one-line JSON or as
// Prometheus text exposition — scrape by running any process endpoint that
// calls prometheus() (the library is transport-agnostic; see README
// "Observability").
//
// The singleton is leaked deliberately: detached pool tasks may bump
// counters during static destruction. find-or-create is mutex-guarded and
// returns stable references — Counter/Histogram addresses never move after
// creation (node-based map), so hot paths cache the reference and never
// re-enter the lock.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "psi/telemetry/histogram.h"
#include "psi/telemetry/telemetry.h"

namespace psi::telemetry {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
#ifndef PSI_TELEMETRY_DISABLED
    v_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  std::uint64_t value() const {
#ifndef PSI_TELEMETRY_DISABLED
    return v_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

 private:
#ifndef PSI_TELEMETRY_DISABLED
  alignas(64) std::atomic<std::uint64_t> v_{0};
#endif
};

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // + gauges
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // One-line JSON: {"name":value,...,"hist":{"count":..,"p50":..,...},...}
  std::string json() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto& [name, v] : counters) {
      if (!first) os << ',';
      first = false;
      os << '"' << name << "\":" << v;
    }
    for (const auto& [name, h] : histograms) {
      if (!first) os << ',';
      first = false;
      const LatencySummary s = summarize(h);
      os << '"' << name << "\":{\"count\":" << s.count << ",\"p50\":" << s.p50
         << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99
         << ",\"max\":" << s.max << '}';
    }
    os << '}';
    return os.str();
  }

  // Prometheus text exposition (version 0.0.4): counters as counters,
  // histograms as cumulative le-buckets + _sum/_count. Metric names are
  // sanitised to [a-zA-Z0-9_:]; empty buckets are elided (log2 over a
  // 64-bit range would otherwise emit 65 lines per histogram).
  std::string prometheus() const {
    std::ostringstream os;
    for (const auto& [name, v] : counters) {
      const std::string n = sanitize(name);
      os << "# TYPE " << n << " counter\n" << n << ' ' << v << '\n';
    }
    for (const auto& [name, h] : histograms) {
      const std::string n = sanitize(name);
      os << "# TYPE " << n << " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        if (h.buckets[b] == 0) continue;
        cum += h.buckets[b];
        os << n << "_bucket{le=\"" << bucket_upper(b) << "\"} " << cum << '\n';
      }
      os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n'
         << n << "_sum " << h.sum << '\n'
         << n << "_count " << h.count << '\n';
    }
    return os.str();
  }

 private:
  static std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) c = '_';
    }
    return out;
  }
};

class StatsRegistry {
 public:
  // Leaked singleton (see header comment).
  static StatsRegistry& instance() {
    static StatsRegistry* r = new StatsRegistry();
    return *r;
  }

  // Find-or-create; the returned reference is stable forever.
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> g(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> g(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  // Register (or replace) a gauge sampled at snapshot() time. The callback
  // must be callable forever (capture by value, tolerate torn-down
  // producers) — it may fire from any thread.
  void register_gauge(const std::string& name,
                      std::function<std::uint64_t()> fn) {
    std::lock_guard<std::mutex> g(mu_);
    gauges_[name] = std::move(fn);
  }

  RegistrySnapshot snapshot() const {
    // Copy the gauge callbacks out first: a gauge may itself create
    // counters (or take unrelated locks), so it must not run under mu_.
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>> gauges;
    RegistrySnapshot out;
    {
      std::lock_guard<std::mutex> g(mu_);
      for (const auto& [name, c] : counters_) {
        out.counters.emplace_back(name, c->value());
      }
      for (const auto& [name, h] : histograms_) {
        out.histograms.emplace_back(name, h->snapshot());
      }
      for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
    }
    for (const auto& [name, fn] : gauges) out.counters.emplace_back(name, fn());
    return out;
  }

 private:
  StatsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<std::uint64_t()>> gauges_;
};

}  // namespace psi::telemetry
