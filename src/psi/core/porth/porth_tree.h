// PSI-Lib: the P-Orth tree (paper Sec 3) — a parallel orth-tree
// (quadtree/octree) with batch construction and batch updates that avoid
// space-filling curves entirely.
//
// Key algorithmic structure (Alg 1 & Alg 2):
//   * Construction builds a λ-level *tree skeleton* (an implicit full
//     2^D-ary subdivision of the current region), classifies every point to
//     a skeleton leaf ("bucket") with λ rounds of midpoint comparisons, and
//     uses the Sieve (parallel counting sort) to gather each bucket
//     contiguously — one round of global data movement per λ levels. Each
//     bucket recurses in parallel. Conceptually this is an MSD integer sort
//     of the points' Morton codes, λ·D bits per round, but no code is ever
//     computed, stored, or compared.
//   * Batch insertion/deletion retrieves the skeleton from the *actual*
//     tree (truncated at depth λ, stopping early at leaves and empty
//     children), sieves the update batch to the skeleton frontier, and
//     recurses per frontier slot in parallel. Orth-trees never rebalance:
//     after recursion only bounding boxes/sizes are refreshed, plus (for
//     deletions) flattening of subtrees that fall under the leaf wrap.
//
// The tree is history-independent modulo leaf point order: the structure is
// a deterministic function of (universe region, point multiset), which the
// tests verify and which explains the paper's observation that P-Orth query
// performance does not degrade under heavy update churn (Sec 5.1.3).
//
// Duplicates and degenerate inputs: when a region becomes unsplittable
// (width ≤ 1 in every dimension / all points identical) the recursion stops
// with an oversized leaf, so duplicate-heavy inputs terminate. Points
// outside the universe region are tolerated (classification still
// terminates; bounding boxes — which queries rely on — are always computed
// from the actual points), but the universe should normally enclose all
// data; it is fixed at the first build so that rebuild-equivalence holds.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/geometry/region.h"
#include "psi/parallel/counting_sort.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"

namespace psi {

struct POrthParams {
  std::size_t leaf_wrap = 32;  // φ, paper Sec C
  int skeleton_levels = 0;     // λ; 0 = paper default (3 for 2D, 2 for 3D)
};

template <typename Coord, int D>
class POrthTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using Reg = Region<Coord, D>;
  static constexpr int kFanout = Reg::kFanout;

  explicit POrthTree(POrthParams params = {})
      : params_(params) {
    if (params_.skeleton_levels <= 0) {
      params_.skeleton_levels = D == 2 ? 3 : 2;  // paper Sec C
    }
  }

  POrthTree(POrthParams params, box_t universe) : POrthTree(params) {
    universe_ = universe;
    have_universe_ = true;
  }

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  // Build from scratch, replacing any existing contents.
  void build(std::vector<point_t> pts) {
    if (!have_universe_) {
      universe_ = compute_bbox(pts.data(), pts.size());
      have_universe_ = !universe_.is_empty();
    }
    root_ = build_rec(pts.data(), pts.size(), universe_);
  }

  void batch_insert(std::vector<point_t> pts) {
    if (pts.empty()) return;
    if (!have_universe_) {
      universe_ = compute_bbox(pts.data(), pts.size());
      have_universe_ = true;
    }
    root_ = insert_rec(std::move(root_), pts.data(), pts.size(), universe_);
  }

  // Remove one stored instance per batch element (elements not present are
  // ignored).
  void batch_delete(std::vector<point_t> pts) {
    if (!root_ || pts.empty()) return;
    root_ = delete_rec(std::move(root_), pts.data(), pts.size(), universe_);
  }

  // Apply a combined difference: remove `deletes`, then add `inserts`
  // (the artifact's BatchDiff(); useful for move-style updates where the
  // same objects change position).
  void batch_diff(std::vector<point_t> inserts, std::vector<point_t> deletes) {
    batch_delete(std::move(deletes));
    batch_insert(std::move(inserts));
  }

  void clear() { root_.reset(); }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return size() == 0; }
  const box_t& universe() const { return universe_; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root_ ? root_->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root_) range_visit_rec(root_.get(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root_) ball_visit_rec(root_.get(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Fork across the 2^D children of interior nodes above the fork grain
  // (a one-task-per-child parallel_for, i.e. binary forking over the
  // orthants); the sequential visit handles subtrees below the grain. The
  // sink must tolerate concurrent emission (api::ConcurrentSink).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root_) range_visit_par_rec(root_.get(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root_) ball_visit_par_rec(root_.get(), q, radius * radius, sink);
  }

  // kNN fan-out: one task per viable orthant above the fork grain, each
  // pruning against the buffer's shared bound (api::ConcurrentKnnBuffer);
  // sequential nearest-orthant-first descent below the grain.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root_) knn_par_rec(root_.get(), q, buf);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root_) knn_rec(root_.get(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  // k nearest neighbours of q, sorted by increasing distance.
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root_ ? count_rec(root_.get(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root_ ? ball_count_rec(root_.get(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  // All stored points (unspecified order). Used by tests and rebuilds.
  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root_) collect(root_.get(), out);
    return out;
  }

  // -------------------------------------------------------------------
  // Introspection / invariants (test support)
  // -------------------------------------------------------------------

  std::size_t height() const { return height_rec(root_.get()); }

  // Throws std::logic_error on any structural violation.
  void check_invariants() const {
    if (root_) check_rec(root_.get(), universe_, /*is_root=*/true);
  }

  // Structure-and-contents equality modulo leaf point order (the paper's
  // history-independence granularity).
  friend bool structurally_equal(const POrthTree& a, const POrthTree& b) {
    return equal_rec(a.root_.get(), b.root_.get());
  }

 private:
  struct Node {
    box_t region;  // space owned (splitting guide)
    box_t bbox;    // tight bounds of the stored points
    std::size_t count = 0;
    bool leaf = true;
    std::vector<point_t> points;                          // leaf payload
    std::array<std::unique_ptr<Node>, kFanout> child{};   // interior links
  };

  POrthParams params_;
  box_t universe_ = Box<Coord, D>::empty();
  bool have_universe_ = false;
  std::unique_ptr<Node> root_;

  // -------------------------------------------------------------------
  // Shared helpers
  // -------------------------------------------------------------------

  static box_t compute_bbox(const point_t* pts, std::size_t n) {
    return reduce_map(
        0, n, [&](std::size_t i) { return box_t::of_point(pts[i]); },
        box_t::empty(), [](box_t a, const box_t& b) {
          a.merge(b);
          return a;
        });
  }

  std::unique_ptr<Node> make_leaf(const point_t* pts, std::size_t n,
                                  const box_t& region) const {
    auto leaf = std::make_unique<Node>();
    leaf->region = region;
    leaf->leaf = true;
    leaf->points.assign(pts, pts + n);
    leaf->count = n;
    leaf->bbox = compute_bbox(pts, n);
    return leaf;
  }

  static void collect(const Node* t, std::vector<point_t>& out) {
    if (t->leaf) {
      out.insert(out.end(), t->points.begin(), t->points.end());
      return;
    }
    for (const auto& c : t->child) {
      if (c) collect(c.get(), out);
    }
  }

  std::unique_ptr<Node> flatten_to_leaf(std::unique_ptr<Node> t) const {
    if (!t || t->leaf) return t;
    std::vector<point_t> pts;
    pts.reserve(t->count);
    collect(t.get(), pts);
    return make_leaf(pts.data(), pts.size(), t->region);
  }

  // -------------------------------------------------------------------
  // Construction (Alg 1)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> build_rec(point_t* pts, std::size_t n,
                                  const box_t& region) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap || !Reg::splittable(region)) {
      return make_leaf(pts, n, region);
    }
    // Step 1: the λ-level skeleton is implicit (full subdivision); compute
    // each point's bucket = concatenated orthant indices over λ levels.
    const int levels = params_.skeleton_levels;
    const std::size_t num_buckets = std::size_t{1}
                                    << (static_cast<std::size_t>(levels) * D);
    std::vector<std::uint32_t> ids(n);
    parallel_for(0, n, [&](std::size_t i) {
      box_t r = region;
      std::uint32_t id = 0;
      for (int l = 0; l < levels; ++l) {
        const int c = Reg::orthant(r, pts[i]);
        id = (id << D) | static_cast<std::uint32_t>(c);
        r = Reg::child(r, c);
      }
      ids[i] = id;
    });
    // Step 2: sieve — gather each bucket contiguously (Alg 1 line 6).
    BucketOffsets offsets =
        sieve(pts, n, num_buckets, [&](std::size_t i) { return ids[i]; });
    // Step 3: recurse per bucket and assemble the skeleton's internal
    // levels, flattening subtrees at or below the leaf wrap (line 10).
    return assemble(pts, offsets, 0, 0, region, levels);
  }

  // Build the skeleton interior node for `prefix` at `level`, whose buckets
  // span [prefix << (levels-level)*D, (prefix+1) << (levels-level)*D).
  std::unique_ptr<Node> assemble(point_t* base, const BucketOffsets& offsets,
                                 int level, std::size_t prefix,
                                 const box_t& region, int levels) const {
    const std::size_t width = std::size_t{1}
                              << (static_cast<std::size_t>(levels - level) * D);
    const std::size_t bucket_lo = prefix * width;
    const std::size_t span_lo = offsets[bucket_lo];
    const std::size_t span_n = offsets[bucket_lo + width] - span_lo;
    if (span_n == 0) return nullptr;
    if (level == levels) {
      return build_rec(base + span_lo, span_n, region);
    }
    if (!Reg::splittable(region)) {
      // Degenerate sub-region inside the skeleton: all its points share one
      // bucket path; stop with an (possibly oversized) leaf.
      return make_leaf(base + span_lo, span_n, region);
    }
    auto node = std::make_unique<Node>();
    node->region = region;
    node->leaf = false;
    parallel_for(
        0, kFanout,
        [&](std::size_t c) {
          node->child[c] =
              assemble(base, offsets, level + 1, (prefix << D) + c,
                       Reg::child(region, static_cast<int>(c)), levels);
        },
        span_n >= update_fork_cutoff() ? 1 : kFanout);
    refresh(node.get());
    if (node->count <= params_.leaf_wrap) {
      return flatten_to_leaf(std::move(node));
    }
    return node;
  }

  // Recompute count/bbox of an interior node from its children.
  static void refresh(Node* t) {
    t->count = 0;
    t->bbox = box_t::empty();
    for (const auto& c : t->child) {
      if (c) {
        t->count += c->count;
        t->bbox.merge(c->bbox);
      }
    }
  }

  // -------------------------------------------------------------------
  // Skeleton retrieval for updates (Alg 2 line 5)
  // -------------------------------------------------------------------

  // The update skeleton is the actual tree truncated at depth λ; its
  // frontier slots are (a) subtrees at depth λ, (b) leaves above depth λ,
  // and (c) empty child links (null subtrees for so-far-empty orthants).
  struct Skeleton {
    struct SkelNode {
      Node* node;
      std::array<std::int32_t, kFanout> next;  // >=0: skel index; <0: ~slot
    };
    struct Slot {
      std::unique_ptr<Node>* link;
      box_t region;
    };
    std::vector<SkelNode> internal;  // DFS preorder; [0] is the root
    std::vector<Slot> slots;

    std::size_t classify(const point_t& p) const {
      std::int32_t i = 0;
      for (;;) {
        const SkelNode& s = internal[static_cast<std::size_t>(i)];
        const std::int32_t nx =
            s.next[static_cast<std::size_t>(Reg::orthant(s.node->region, p))];
        if (nx < 0) return static_cast<std::size_t>(~nx);
        i = nx;
      }
    }
  };

  // Preconditions: t is a non-null interior node.
  Skeleton retrieve_skeleton(Node* t) const {
    Skeleton sk;
    build_skeleton(sk, t, 0, params_.skeleton_levels);
    return sk;
  }

  std::int32_t build_skeleton(Skeleton& sk, Node* t, int depth,
                              int max_depth) const {
    const auto idx = static_cast<std::int32_t>(sk.internal.size());
    sk.internal.push_back({t, {}});
    for (int c = 0; c < kFanout; ++c) {
      std::unique_ptr<Node>& link = t->child[static_cast<std::size_t>(c)];
      if (link && !link->leaf && depth + 1 < max_depth) {
        const std::int32_t child_idx =
            build_skeleton(sk, link.get(), depth + 1, max_depth);
        sk.internal[static_cast<std::size_t>(idx)]
            .next[static_cast<std::size_t>(c)] = child_idx;
      } else {
        const auto slot = static_cast<std::int32_t>(sk.slots.size());
        sk.slots.push_back({&link, Reg::child(t->region, c)});
        sk.internal[static_cast<std::size_t>(idx)]
            .next[static_cast<std::size_t>(c)] = ~slot;
      }
    }
    return idx;
  }

  // -------------------------------------------------------------------
  // Batch insertion (Alg 2)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> insert_rec(std::unique_ptr<Node> t, point_t* pts,
                                   std::size_t n, const box_t& region) {
    if (n == 0) return t;
    if (!t) return build_rec(pts, n, region);
    if (t->leaf) {
      if (t->count + n <= params_.leaf_wrap ||
          !Reg::splittable(t->region)) {
        // Append in place; orth-trees need no rebalancing.
        t->points.insert(t->points.end(), pts, pts + n);
        t->count += n;
        t->bbox.merge(compute_bbox(pts, n));
        return t;
      }
      // Leaf overflow: rebuild the subtree from the union (Alg 2 line 4).
      std::vector<point_t> all;
      all.reserve(t->count + n);
      all.insert(all.end(), t->points.begin(), t->points.end());
      all.insert(all.end(), pts, pts + n);
      return build_rec(all.data(), all.size(), t->region);
    }

    if (n <= kSmallBatch) {
      // Tiny batches skip the skeleton/sieve machinery: one level of
      // orthant dispatch from an on-stack buffer is cheaper than building
      // bucket metadata for a handful of points.
      small_step(t.get(), pts, n, /*inserting=*/true);
      return t;
    }

    Skeleton sk = retrieve_skeleton(t.get());
    apply_to_frontier(sk, pts, n, /*inserting=*/true);
    // Update bounding boxes/sizes of all affected skeleton nodes (line 11),
    // bottom-up (reverse preorder).
    for (auto it = sk.internal.rbegin(); it != sk.internal.rend(); ++it) {
      refresh(it->node);
    }
    return t;
  }

  static constexpr std::size_t kSmallBatch = 32;

  // One level of orthant dispatch for a small update batch on an interior
  // node; recursion handles the rest. `t` must be interior and non-null.
  void small_step(Node* t, point_t* pts, std::size_t n, bool inserting) {
    std::array<std::size_t, kFanout + 1> counts{};
    std::array<point_t, kSmallBatch> buf;
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[static_cast<std::size_t>(Reg::orthant(t->region, pts[i])) + 1];
    }
    for (int c = 0; c < kFanout; ++c) {
      counts[static_cast<std::size_t>(c) + 1] +=
          counts[static_cast<std::size_t>(c)];
    }
    std::array<std::size_t, kFanout> cursor{};
    for (int c = 0; c < kFanout; ++c) {
      cursor[static_cast<std::size_t>(c)] = counts[static_cast<std::size_t>(c)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      buf[cursor[static_cast<std::size_t>(Reg::orthant(t->region, pts[i]))]++] =
          pts[i];
    }
    for (int c = 0; c < kFanout; ++c) {
      const std::size_t lo = counts[static_cast<std::size_t>(c)];
      const std::size_t cnt = counts[static_cast<std::size_t>(c) + 1] - lo;
      if (cnt == 0) continue;
      auto& child = t->child[static_cast<std::size_t>(c)];
      const box_t child_region = Reg::child(t->region, c);
      if (inserting) {
        child = insert_rec(std::move(child), buf.data() + lo, cnt, child_region);
      } else {
        child = delete_rec(std::move(child), buf.data() + lo, cnt, child_region);
        if (child && !child->leaf && child->count <= params_.leaf_wrap) {
          child = flatten_to_leaf(std::move(child));
        }
      }
    }
    refresh(t);
  }

  // Sieve the batch to the skeleton frontier and recurse per slot.
  void apply_to_frontier(Skeleton& sk, point_t* pts, std::size_t n,
                         bool inserting) {
    std::vector<std::uint32_t> ids(n);
    parallel_for(0, n, [&](std::size_t i) {
      ids[i] = static_cast<std::uint32_t>(sk.classify(pts[i]));
    });
    BucketOffsets offsets =
        sieve(pts, n, sk.slots.size(), [&](std::size_t i) { return ids[i]; });
    parallel_for(
        0, sk.slots.size(),
        [&](std::size_t s) {
          const std::size_t lo = offsets[s];
          const std::size_t cnt = offsets[s + 1] - lo;
          if (cnt == 0) return;
          auto& slot = sk.slots[s];
          if (inserting) {
            *slot.link =
                insert_rec(std::move(*slot.link), pts + lo, cnt, slot.region);
          } else {
            *slot.link =
                delete_rec(std::move(*slot.link), pts + lo, cnt, slot.region);
          }
        },
        n >= update_fork_cutoff() ? 1 : sk.slots.size());
  }

  // -------------------------------------------------------------------
  // Batch deletion (Alg 2, symmetric; flattens underfull subtrees)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> delete_rec(std::unique_ptr<Node> t, point_t* pts,
                                   std::size_t n, const box_t& region) {
    (void)region;  // kept for symmetry with insert_rec (frontier dispatch)
    if (!t || n == 0) return t;
    if (t->leaf) {
      erase_from_leaf(t.get(), pts, n);
      if (t->count == 0) return nullptr;
      return t;
    }
    if (n <= kSmallBatch) {
      small_step(t.get(), pts, n, /*inserting=*/false);
      if (t->count == 0) return nullptr;
      if (t->count <= params_.leaf_wrap) return flatten_to_leaf(std::move(t));
      return t;
    }

    Skeleton sk = retrieve_skeleton(t.get());
    apply_to_frontier(sk, pts, n, /*inserting=*/false);
    // Bottom-up over the skeleton internals: refresh counts/boxes, drop
    // emptied children, flatten children that fell under the leaf wrap
    // (Alg 2's post-deletion flatten, restricted to the touched skeleton).
    for (auto it = sk.internal.rbegin(); it != sk.internal.rend(); ++it) {
      Node* nd = it->node;
      for (auto& c : nd->child) {
        if (!c) continue;
        if (c->count == 0) {
          c.reset();
        } else if (!c->leaf && c->count <= params_.leaf_wrap) {
          c = flatten_to_leaf(std::move(c));
        }
      }
      refresh(nd);
    }
    if (t->count == 0) return nullptr;
    if (t->count <= params_.leaf_wrap) {
      return flatten_to_leaf(std::move(t));
    }
    return t;
  }

  void erase_from_leaf(Node* leaf, const point_t* pts, std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      auto it = std::find(leaf->points.begin(), leaf->points.end(), pts[i]);
      if (it != leaf->points.end()) {
        *it = leaf->points.back();
        leaf->points.pop_back();
      }
    }
    leaf->count = leaf->points.size();
    leaf->bbox = compute_bbox(leaf->points.data(), leaf->points.size());
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      for (const auto& p : t->points) buf.offer(squared_distance(p, q), p);
      return;
    }
    // Visit children in increasing order of bbox distance (paper Sec C).
    // Tiny fixed-capacity insertion sort (<= 2^D children).
    std::array<std::pair<double, const Node*>, kFanout> order;
    int m = 0;
    for (const auto& c : t->child) {
      if (!c) continue;
      std::pair<double, const Node*> entry{min_squared_distance(c->bbox, q),
                                           c.get()};
      int i = m++;
      while (i > 0 && entry.first < order[static_cast<std::size_t>(i - 1)].first) {
        order[static_cast<std::size_t>(i)] = order[static_cast<std::size_t>(i - 1)];
        --i;
      }
      order[static_cast<std::size_t>(i)] = entry;
    }
    for (int i = 0; i < m; ++i) {
      const auto& [dist, child] = order[static_cast<std::size_t>(i)];
      if (buf.full() && dist >= buf.worst()) break;
      knn_rec(child, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& p : t->points) c += query.contains(p) ? 1 : 0;
      return c;
    }
    std::size_t total = 0;
    for (const auto& c : t->child) {
      if (c) total += count_rec(c.get(), query);
    }
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (!api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    for (const auto& c : t->child) {
      if (c && !visit_all_rec(c.get(), sink)) return false;
    }
    return true;
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (query.contains(p) && !api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    for (const auto& c : t->child) {
      if (c && !range_visit_rec(c.get(), query, sink)) return false;
    }
    return true;
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& p : t->points) c += squared_distance(p, q) <= r2 ? 1 : 0;
      return c;
    }
    std::size_t total = 0;
    for (const auto& c : t->child) {
      if (c) total += ball_count_rec(c.get(), q, r2);
    }
    return total;
  }

  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    parallel_for(
        0, kFanout,
        [&](std::size_t c) {
          if (t->child[c]) range_visit_par_rec(t->child[c].get(), query, sink);
        },
        1);
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    parallel_for(
        0, kFanout,
        [&](std::size_t c) {
          if (t->child[c]) ball_visit_par_rec(t->child[c].get(), q, r2, sink);
        },
        1);
  }

  // Parallel kNN: bound re-read at every node so forked subtrees keep
  // pruning against the best radius found anywhere (see spac_tree.h).
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      for (const auto& p : t->points) buf.offer(squared_distance(p, q), p);
      return;
    }
    std::array<std::pair<double, const Node*>, kFanout> order;
    int m = 0;
    for (const auto& c : t->child) {
      if (!c) continue;
      std::pair<double, const Node*> entry{min_squared_distance(c->bbox, q),
                                           c.get()};
      int i = m++;
      while (i > 0 && entry.first < order[static_cast<std::size_t>(i - 1)].first) {
        order[static_cast<std::size_t>(i)] = order[static_cast<std::size_t>(i - 1)];
        --i;
      }
      order[static_cast<std::size_t>(i)] = entry;
    }
    if (t->count >= fork_grain() && m > 1) {
      parallel_for(
          0, static_cast<std::size_t>(m),
          [&](std::size_t i) {
            const auto& [dist, child] = order[i];
            if (dist >= buf.bound()) return;
            knn_par_rec(child, q, buf);
          },
          1);
      return;
    }
    for (int i = 0; i < m; ++i) {
      const auto& [dist, child] = order[static_cast<std::size_t>(i)];
      // Sorted ascending and the bound only tightens: all done.
      if (dist >= buf.bound()) break;
      knn_par_rec(child, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (squared_distance(p, q) <= r2 && !api::sink_accept(sink, p)) {
          return false;
        }
      }
      return true;
    }
    for (const auto& c : t->child) {
      if (c && !ball_visit_rec(c.get(), q, r2, sink)) return false;
    }
    return true;
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    std::size_t h = 0;
    for (const auto& c : t->child) {
      if (c) h = std::max(h, height_rec(c.get()));
    }
    return h + 1;
  }

  // -------------------------------------------------------------------
  // Invariants
  // -------------------------------------------------------------------

  void check_rec(const Node* t, const box_t& region, bool is_root) const {
    (void)is_root;
    if (!(t->region == region)) {
      throw std::logic_error("porth: node region mismatch");
    }
    if (t->leaf) {
      if (t->count != t->points.size()) {
        throw std::logic_error("porth: leaf count mismatch");
      }
      if (t->count > params_.leaf_wrap && Reg::splittable(t->region)) {
        throw std::logic_error("porth: oversized splittable leaf");
      }
      box_t bb = compute_bbox(t->points.data(), t->points.size());
      if (!(bb == t->bbox)) throw std::logic_error("porth: leaf bbox not tight");
      return;
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("porth: interior at or below leaf wrap");
    }
    std::size_t total = 0;
    box_t bb = box_t::empty();
    for (int c = 0; c < kFanout; ++c) {
      const auto& ch = t->child[static_cast<std::size_t>(c)];
      if (!ch) continue;
      check_rec(ch.get(), Reg::child(t->region, c), false);
      total += ch->count;
      bb.merge(ch->bbox);
    }
    if (total != t->count) throw std::logic_error("porth: interior count mismatch");
    if (!(bb == t->bbox)) throw std::logic_error("porth: interior bbox mismatch");
    if (total == 0) throw std::logic_error("porth: empty interior node");
  }

  static bool equal_rec(const Node* a, const Node* b) {
    if (!a || !b) return a == b;
    if (a->leaf != b->leaf || a->count != b->count) return false;
    if (!(a->bbox == b->bbox)) return false;
    if (a->leaf) {
      auto pa = a->points, pb = b->points;
      std::sort(pa.begin(), pa.end());
      std::sort(pb.begin(), pb.end());
      return pa == pb;
    }
    for (int c = 0; c < kFanout; ++c) {
      if (!equal_rec(a->child[static_cast<std::size_t>(c)].get(),
                     b->child[static_cast<std::size_t>(c)].get())) {
        return false;
      }
    }
    return true;
  }
};

using POrthTree2 = POrthTree<std::int64_t, 2>;
using POrthTree3 = POrthTree<std::int64_t, 3>;

}  // namespace psi
