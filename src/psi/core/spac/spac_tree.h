// PSI-Lib: the SPaC-tree family (paper Sec 4) — a parallel R-tree built as a
// weight-balanced binary search tree over space-filling-curve codes, with
// join-based batch updates and leaf wrapping, plus the two ideas that give
// the SPaC-tree its update speed over the plain PaC-tree (the "CPAM"
// baseline):
//
//  1. HybridSort construction (Alg 3): the SFC code of each point is
//     computed on *first touch* inside the sample-sort's classification
//     pass, and only ⟨code, id⟩ pairs are moved during sorting; full points
//     are fetched once, into the leaves, at the end.
//  2. Relaxed leaf order (Alg 4): updates may leave leaf contents unsorted
//     (marked), because spatial queries scan whole leaves anyway; leaves are
//     re-sorted lazily, only when the join machinery must Expose them.
//
// The baseline behaviour is available through `LeafOrder::kTotal` +
// `fused_build = false`, which reproduces CPAM-H / CPAM-Z: codes are
// materialised into ⟨code, point⟩ records in a separate pass before sorting
// (the black-box PaC-tree usage the paper measures), and every leaf is kept
// sorted on every update. This makes the two columns of the paper's
// ablation share one code base, isolating exactly the claimed difference.
//
// Balancing: BB[α] weight-balance (α = 0.2, paper Sec C) maintained solely
// with Join (Blelloch–Ferizovic–Sun join-based framework), as in PaC-trees.
// Leaf wrapping: φ = 40 by default; Node() keeps every subtree of size ≤ φ
// flattened into one leaf and sizes in (φ, 2φ] as an interior with two
// redistributed leaves (Alg 4 lines 38-48).
//
// Memory layout (relocatable shard arenas): every node lives in the tree's
// own arena::ChunkPool; in-tree links are self-relative offset_ptr's and
// the root is held as a base-relative offset, so the whole tree is ONE
// contiguous relocatable block. Leaves store their payload struct-of-
// arrays — a codes lane followed by one contiguous lane per coordinate
// dimension — so the range/ball/kNN hot loops test a whole leaf with
// batched per-lane passes instead of per-entry pointer chases, and
// serialize_arena()/adopt_arena() turn shard handoff and checkpoint
// restart into a CRC-checked memcpy (chunk_pool.h). Traversal code uses
// raw Node* only transiently, never across an allocation boundary that
// could outlive the pool. Discarded nodes are freed into the pool's
// exact-size freelists; build()/clear() reclaim everything wholesale.

#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/core/arena/chunk_pool.h"
#include "psi/core/arena/offset_ptr.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/sfc/codec.h"

namespace psi {

enum class LeafOrder {
  kRelaxed,  // SPaC-tree: leaves may be unsorted after updates
  kTotal,    // CPAM baseline: total order maintained everywhere
};

struct SpacParams {
  std::size_t leaf_wrap = 40;  // φ (paper Sec C)
  double alpha = 0.2;          // BB[α] balance parameter (paper Sec C)
  LeafOrder order = LeafOrder::kRelaxed;
  bool fused_build = true;     // HybridSort vs precompute-then-sort (ablation)
  // Leaf-overflow heuristic threshold (paper Sec C): rebuild locally when
  // |leaf| + |batch| <= rebuild_factor * φ, otherwise expose-and-recurse.
  std::size_t rebuild_factor = 4;
  // Virtual-memory cap of the node arena (chunk_pool.h). Untouched pages
  // cost nothing; exhausting the reservation throws std::bad_alloc.
  std::size_t arena_reserve = arena::ChunkPool::kDefaultReserve;
};

inline SpacParams cpam_params() {
  SpacParams p;
  p.order = LeafOrder::kTotal;
  p.fused_build = false;
  return p;
}

template <typename Coord, int D, typename Codec>
class SpacTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = Codec;

  struct Entry {
    std::uint64_t code;
    point_t pt;
  };

  explicit SpacTree(SpacParams params = {})
      : params_(params), pool_(params.arena_reserve) {}

  SpacTree(SpacTree&& o) noexcept
      : params_(o.params_), pool_(std::move(o.pool_)), root_off_(o.root_off_) {
    o.root_off_ = 0;
  }
  SpacTree& operator=(SpacTree&& o) noexcept {
    if (this != &o) {
      params_ = o.params_;
      pool_ = std::move(o.pool_);
      root_off_ = o.root_off_;
      o.root_off_ = 0;
    }
    return *this;
  }
  SpacTree(const SpacTree&) = delete;
  SpacTree& operator=(const SpacTree&) = delete;

  static const char* curve_name() { return Codec::name(); }

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  // Build from scratch (Alg 3). With fused_build the SFC codes are computed
  // inside the sort's first pass and only ⟨code,id⟩ pairs are sorted;
  // otherwise full ⟨code,point⟩ records are materialised first and sorted
  // (CPAM black-box behaviour). A build compacts: the arena restarts empty.
  void build(const std::vector<point_t>& pts) {
    pool_.reset();
    root_off_ = 0;
    set_root(build_tree(pts));
  }

  void batch_insert(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    set_root(insert_sorted(root(), batch.data(), batch.size()));
  }

  // Remove one stored instance per batch element; absent elements ignored.
  void batch_delete(const std::vector<point_t>& pts) {
    if (root() == nullptr || pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    set_root(delete_sorted(root(), batch.data(), batch.size()));
  }

  // Combined difference (artifact BatchDiff()): remove `deletes`, then add
  // `inserts` — one call for move-style updates.
  void batch_diff(const std::vector<point_t>& inserts,
                  const std::vector<point_t>& deletes) {
    batch_delete(deletes);
    batch_insert(inserts);
  }

  void clear() {
    pool_.reset();
    root_off_ = 0;
  }

  // -------------------------------------------------------------------
  // Relocation (psi::api RelocatableIndex capability)
  // -------------------------------------------------------------------

  // Bytes/chunks currently committed to the node arena (includes freelist
  // waste until the next build()).
  std::size_t arena_bytes() const { return pool_.used_bytes(); }
  std::size_t arena_chunks() const { return pool_.chunks(); }

  // One relocatable image: arena header + raw node bytes + CRC32. The
  // caller must quiesce mutators (concurrent readers are fine).
  std::vector<std::uint8_t> serialize_arena() const {
    pool_.set_user(0, root_off_);
    pool_.set_user(1, params_fingerprint());
    return pool_.serialize();
  }

  // Replace contents with a serialized image. Corrupt images (framing,
  // CRC, root out of range, parameter mismatch) throw std::runtime_error
  // BEFORE anything becomes visible; on the (post-CRC) metadata checks the
  // tree is left empty rather than half-adopted.
  void adopt_arena(const std::uint8_t* data, std::size_t n) {
    pool_.adopt(data, n);  // validates framing + CRC, throws untouched
    const std::uint64_t root = pool_.user(0);
    const std::uint64_t fp = pool_.user(1);
    if (fp != params_fingerprint() ||
        (root != 0 &&
         (root % arena::ChunkPool::kAlign != 0 ||
          root + sizeof(Node) > pool_.used_bytes()))) {
      pool_.reset();
      root_off_ = 0;
      throw std::runtime_error(
          fp != params_fingerprint()
              ? "arena: image built with different tree parameters"
              : "arena: root offset out of range");
    }
    root_off_ = root;
  }
  void adopt_arena(const std::vector<std::uint8_t>& image) {
    adopt_arena(image.data(), image.size());
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return count(root()); }
  bool empty() const { return size() == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const {
    const Node* t = root();
    return t != nullptr ? t->bbox : box_t::empty();
  }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root()) range_visit_rec(root(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root()) ball_visit_rec(root(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Fork at interior nodes above the fork grain, reuse the sequential
  // visit below it. The sink is fed from many workers at once, so it must
  // be a ConcurrentSink (or equivalent: thread-safe operator() plus a
  // stopped() flag polled at node granularity for early termination).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root()) range_visit_par_rec(root(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root()) ball_visit_par_rec(root(), q, radius * radius, sink);
  }

  // kNN fan-out: fork over both children when the subtree is above the
  // fork grain and each child's bbox can still beat the buffer's shared
  // pruning bound; below the grain the same recursion descends
  // sequentially in nearest-child-first order. The buffer must tolerate
  // concurrent offers (api::ConcurrentKnnBuffer); its capacity is k.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root()) knn_par_rec(root(), q, buf);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root()) knn_rec(root(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root() ? count_rec(root(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root() ? ball_count_rec(root(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root()) {
      collect_points(root(), out);
    }
    return out;
  }

  // -------------------------------------------------------------------
  // Introspection / invariants (test support)
  // -------------------------------------------------------------------

  std::size_t height() const { return height_rec(root()); }

  // Fraction of leaves currently marked unsorted (0 for kTotal).
  double unsorted_leaf_fraction() const {
    std::size_t leaves = 0, unsorted = 0;
    leaf_stats(root(), leaves, unsorted);
    return leaves == 0 ? 0.0
                       : static_cast<double>(unsorted) /
                             static_cast<double>(leaves);
  }

  void check_invariants() const {
    if (!root()) return;
    std::vector<Entry> inorder;
    inorder.reserve(size());
    check_rec(root(), inorder);
    for (std::size_t i = 1; i < inorder.size(); ++i) {
      if (entry_less(inorder[i], inorder[i - 1])) {
        throw std::logic_error("spac: global order violated");
      }
    }
  }

 private:
  // Arena node. Interior nodes are fixed-size; a leaf is one variable-size
  // allocation with the SoA payload trailing the header:
  //
  //   [Node][u64 codes[cap]][Coord lane0[cap]]...[Coord laneD-1[cap]]
  //
  // `cap` is the allocated lane capacity (count <= cap; deletes leave
  // headroom that later appends reuse). Links are self-relative, so the
  // node graph survives whole-arena relocation byte-for-byte.
  struct Node {
    box_t bbox = box_t::empty();
    std::uint64_t count = 0;
    std::uint32_t cap = 0;   // leaf lane capacity; 0 for interiors
    std::uint8_t leaf = 1;
    std::uint8_t sorted = 1;
    arena::offset_ptr<Node> l, r;
    Entry pivot{};

    std::uint64_t* codes() {
      return reinterpret_cast<std::uint64_t*>(this + 1);
    }
    const std::uint64_t* codes() const {
      return reinterpret_cast<const std::uint64_t*>(this + 1);
    }
    Coord* lane(int d) {
      return reinterpret_cast<Coord*>(codes() + cap) +
             static_cast<std::size_t>(d) * cap;
    }
    const Coord* lane(int d) const {
      return reinterpret_cast<const Coord*>(codes() + cap) +
             static_cast<std::size_t>(d) * cap;
    }
    point_t leaf_point(std::size_t i) const {
      point_t p;
      for (int d = 0; d < D; ++d) p[d] = lane(d)[i];
      return p;
    }
    Entry leaf_entry(std::size_t i) const {
      return Entry{codes()[i], leaf_point(i)};
    }
    void set_entry(std::size_t i, const Entry& e) {
      codes()[i] = e.code;
      for (int d = 0; d < D; ++d) lane(d)[i] = e.pt[d];
    }
  };
  static_assert(alignof(Coord) <= arena::ChunkPool::kAlign);

  SpacParams params_;
  // Mutable: the maintenance methods keep their historical const-correct
  // signatures (they take and return subtree pointers) while allocating
  // from the pool; queries never allocate.
  mutable arena::ChunkPool pool_;
  std::uint64_t root_off_ = 0;  // base-relative; 0 = empty tree

  Node* root() const { return pool_.template from_offset<Node>(root_off_); }
  void set_root(Node* t) { root_off_ = pool_.to_offset(t); }

  // Parameters that shape the stored structure; an adopted image must
  // match or invariants (leaf wrap, balance, order) would silently break.
  std::uint64_t params_fingerprint() const {
    return (static_cast<std::uint64_t>(params_.leaf_wrap) << 32) |
           (static_cast<std::uint64_t>(params_.order == LeafOrder::kRelaxed)
            << 24) |
           static_cast<std::uint64_t>(params_.alpha * 1e4);
  }

  // -------------------------------------------------------------------
  // Node allocation
  // -------------------------------------------------------------------

  static constexpr std::size_t entry_stride() {
    return sizeof(std::uint64_t) + D * sizeof(Coord);
  }
  static constexpr std::size_t leaf_bytes(std::size_t cap) {
    return sizeof(Node) + cap * entry_stride();
  }

  Node* new_interior() const {
    Node* t = pool_.template create<Node>(0);
    t->leaf = 0;
    return t;
  }

  Node* new_leaf(std::size_t cap) const {
    Node* t = pool_.template create<Node>(cap * entry_stride());
    t->cap = static_cast<std::uint32_t>(cap);
    return t;
  }

  void free_node(Node* t) const {
    pool_.free(t, t->leaf ? leaf_bytes(t->cap) : sizeof(Node));
  }

  void free_subtree(Node* t) const {
    if (t == nullptr) return;
    if (!t->leaf) {
      free_subtree(t->l.get());
      free_subtree(t->r.get());
    }
    free_node(t);
  }

  // -------------------------------------------------------------------
  // Entry order: by code, tie-broken lexicographically on coordinates so
  // the order is total even if a codec were non-injective.
  // -------------------------------------------------------------------

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.code != b.code) return a.code < b.code;
    return a.pt < b.pt;
  }
  static bool entry_equal(const Entry& a, const Entry& b) {
    return a.code == b.code && a.pt == b.pt;
  }

  static std::size_t count(const Node* t) { return t ? t->count : 0; }

  // Fork only when the subproblem is big enough to amortise task overhead.
  template <typename F, typename G>
  static void maybe_par_do(std::size_t n, F&& f, G&& g) {
    if (n >= fork_grain()) {
      par_do(f, g);
    } else {
      f();
      g();
    }
  }

  bool relaxed() const { return params_.order == LeafOrder::kRelaxed; }

  // -------------------------------------------------------------------
  // Weight balance (BB[α], weight = size + 1)
  // -------------------------------------------------------------------

  bool balanced_pair(std::size_t a, std::size_t b) const {
    const double wa = static_cast<double>(a) + 1;
    const double wb = static_cast<double>(b) + 1;
    const double total = wa + wb;
    return wa >= params_.alpha * total && wb >= params_.alpha * total;
  }

  bool left_heavy(std::size_t l, std::size_t r) const {
    const double wl = static_cast<double>(l) + 1;
    const double wr = static_cast<double>(r) + 1;
    return wr < params_.alpha * (wl + wr);
  }

  // -------------------------------------------------------------------
  // Leaf helpers
  // -------------------------------------------------------------------

  // Sort the leaf lanes by entry order (small n: materialise, sort,
  // scatter back).
  void sort_leaf(Node* t) const {
    const std::size_t n = t->count;
    std::vector<Entry> tmp(n);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = t->leaf_entry(i);
    std::sort(tmp.begin(), tmp.end(), entry_less);
    for (std::size_t i = 0; i < n; ++i) t->set_entry(i, tmp[i]);
    t->sorted = 1;
  }

  void refresh_leaf_bbox(Node* t) const {
    t->bbox = box_t::empty();
    for (std::size_t i = 0; i < t->count; ++i) {
      t->bbox.expand(t->leaf_point(i));
    }
  }

  Node* make_leaf(const Entry* a, std::size_t n, bool sorted) const {
    Node* t = new_leaf(n);
    t->count = n;
    for (std::size_t i = 0; i < n; ++i) t->set_entry(i, a[i]);
    refresh_leaf_bbox(t);
    t->sorted = (sorted || n <= 1) ? 1 : 0;
    if (!relaxed() && !t->sorted) sort_leaf(t);
    return t;
  }

  Node* make_leaf(const std::vector<Entry>& items, bool sorted) const {
    return make_leaf(items.data(), items.size(), sorted);
  }

  // New leaf holding entries [lo, hi) of `src`, lane-wise memcpy.
  Node* slice_leaf(const Node* src, std::size_t lo, std::size_t hi) const {
    const std::size_t n = hi - lo;
    Node* t = new_leaf(n);
    t->count = n;
    std::memcpy(t->codes(), src->codes() + lo, n * sizeof(std::uint64_t));
    for (int d = 0; d < D; ++d) {
      std::memcpy(t->lane(d), src->lane(d) + lo, n * sizeof(Coord));
    }
    refresh_leaf_bbox(t);
    t->sorted = 1;
    return t;
  }

  // In-order collection of entries; each unsorted leaf is sorted into the
  // output so the result is globally sorted (the BST invariant holds
  // set-wise between leaves even in relaxed mode).
  static void collect_sorted(const Node* t, std::vector<Entry>& out) {
    if (!t) return;
    if (t->leaf) {
      const std::size_t lo = out.size();
      for (std::size_t i = 0; i < t->count; ++i) {
        out.push_back(t->leaf_entry(i));
      }
      if (!t->sorted) {
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(lo), out.end(),
                  entry_less);
      }
      return;
    }
    collect_sorted(t->l.get(), out);
    out.push_back(t->pivot);
    collect_sorted(t->r.get(), out);
  }

  static void collect_points(const Node* t, std::vector<point_t>& out) {
    if (!t) return;
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) {
        out.push_back(t->leaf_point(i));
      }
      return;
    }
    collect_points(t->l.get(), out);
    out.push_back(t->pivot.pt);
    collect_points(t->r.get(), out);
  }

  static void collect_unordered(const Node* t, std::vector<Entry>& out) {
    if (!t) return;
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) {
        out.push_back(t->leaf_entry(i));
      }
      return;
    }
    collect_unordered(t->l.get(), out);
    out.push_back(t->pivot);
    collect_unordered(t->r.get(), out);
  }

  // -------------------------------------------------------------------
  // Node construction with leaf wrapping (Alg 4, Node())
  // -------------------------------------------------------------------

  Node* make_node(Node* l, Entry k, Node* r) const {
    const std::size_t n = count(l) + count(r) + 1;
    if (n <= params_.leaf_wrap) {
      // Flatten the whole (small) subtree into one leaf (line 47). In
      // relaxed mode no sort is needed; in total mode collect_sorted keeps
      // the order.
      std::vector<Entry> items;
      items.reserve(n);
      if (!relaxed()) {
        collect_sorted(l, items);
        items.push_back(k);
        collect_sorted(r, items);
      } else {
        collect_unordered(l, items);
        items.push_back(k);
        collect_unordered(r, items);
      }
      free_subtree(l);
      free_subtree(r);
      return make_leaf(items, /*sorted=*/!relaxed());
    }
    if (n <= 2 * params_.leaf_wrap) {
      // Redistribute into an interior with two half-size leaves when
      // necessary (lines 42-44): two leaf children whose sizes violate the
      // weight balance. Redistribution needs sorted order, so unsorted
      // leaves are sorted here (line 43). Balanced leaf pairs are kept
      // as-is, which is what lets relaxed (unsorted) leaves survive.
      const bool both_leaves = (!l || l->leaf) && (!r || r->leaf);
      if (both_leaves && !balanced_pair(count(l), count(r))) {
        std::vector<Entry> items;
        items.reserve(n);
        collect_sorted(l, items);
        const auto left_n = static_cast<std::ptrdiff_t>(items.size());
        items.push_back(k);
        collect_sorted(r, items);
        std::inplace_merge(items.begin(), items.begin() + left_n, items.end(),
                           entry_less);
        if (l) free_node(l);
        if (r) free_node(r);
        const std::size_t m = n / 2;
        Node* node = new_interior();
        node->pivot = items[m];
        node->l = make_leaf(items.data(), m, /*sorted=*/true);
        node->r = make_leaf(items.data() + m + 1, n - m - 1, /*sorted=*/true);
        finish_interior(node);
        return node;
      }
    }
    Node* node = new_interior();
    node->l = l;
    node->r = r;
    node->pivot = k;
    finish_interior(node);
    return node;
  }

  static void finish_interior(Node* t) {
    t->count = count(t->l.get()) + count(t->r.get()) + 1;
    t->bbox = box_t::empty();
    if (t->l) t->bbox.merge(t->l->bbox);
    if (t->r) t->bbox.merge(t->r->bbox);
    t->bbox.expand(t->pivot.pt);
  }

  // -------------------------------------------------------------------
  // Expose (Alg 4): open a subtree root; a leaf is first re-sorted (if
  // marked unsorted, line 34) and split one level into two half leaves.
  // The exposed node itself is returned to the pool.
  // -------------------------------------------------------------------

  struct Exposed {
    Node* l = nullptr;
    Entry k{};
    Node* r = nullptr;
  };

  Exposed expose(Node* t) const {
    assert(t && t->count >= 1);
    if (!t->leaf) {
      Exposed e{t->l.get(), t->pivot, t->r.get()};
      free_node(t);
      return e;
    }
    if (!t->sorted) sort_leaf(t);
    const std::size_t n = t->count;
    const std::size_t m = n / 2;
    Exposed e;
    e.k = t->leaf_entry(m);
    if (m > 0) e.l = slice_leaf(t, 0, m);
    if (m + 1 < n) e.r = slice_leaf(t, m + 1, n);
    free_node(t);
    return e;
  }

  // -------------------------------------------------------------------
  // Join (Alg 4 / Just-Join framework)
  // -------------------------------------------------------------------

  Node* join(Node* l, Entry k, Node* r) const {
    const std::size_t nl = count(l), nr = count(r);
    if (left_heavy(nl, nr)) return join_right(l, k, r);
    if (left_heavy(nr, nl)) return join_left(l, k, r);
    return make_node(l, k, r);
  }

  // L is heavier: descend L's right spine until it balances with R, then
  // attach and rebalance with (single/double) rotations on the way out.
  Node* join_right(Node* l, Entry k, Node* r) const {
    if (balanced_pair(count(l), count(r))) {
      return make_node(l, k, r);
    }
    Exposed e = expose(l);
    // Re-dispatch through join: exposing a (wrapped) leaf can shrink the
    // spine child past the balance point in one step, so the plain
    // joinRight recursion of the unwrapped algorithm is not safe here.
    Node* t = join(e.r, k, r);
    if (balanced_pair(count(e.l), count(t))) {
      return make_node(e.l, e.k, t);
    }
    // Rotations. t is heavier than e.l; open it up.
    Exposed et = expose(t);
    if (balanced_pair(count(e.l), count(et.l)) &&
        balanced_pair(count(e.l) + count(et.l) + 1, count(et.r))) {
      // Single left rotation.
      return make_node(make_node(e.l, e.k, et.l), et.k, et.r);
    }
    // Double rotation: rotate right at t, then left here.
    Exposed etl = expose(et.l);
    return make_node(make_node(e.l, e.k, etl.l), etl.k,
                     make_node(etl.r, et.k, et.r));
  }

  Node* join_left(Node* l, Entry k, Node* r) const {
    if (balanced_pair(count(l), count(r))) {
      return make_node(l, k, r);
    }
    Exposed e = expose(r);
    Node* t = join(l, k, e.l);
    if (balanced_pair(count(t), count(e.r))) {
      return make_node(t, e.k, e.r);
    }
    Exposed et = expose(t);
    if (balanced_pair(count(et.r), count(e.r)) &&
        balanced_pair(count(et.l), count(et.r) + count(e.r) + 1)) {
      // Single right rotation.
      return make_node(et.l, et.k, make_node(et.r, e.k, e.r));
    }
    Exposed etr = expose(et.r);
    return make_node(make_node(et.l, et.k, etr.l), etr.k,
                     make_node(etr.r, e.k, e.r));
  }

  // Join without a middle key: pull the last entry of L up as the pivot.
  Node* join2(Node* l, Node* r) const {
    if (!l) return r;
    if (!r) return l;
    auto [lp, k] = split_last(l);
    return join(lp, k, r);
  }

  // Remove and return the order-maximal entry of t.
  std::pair<Node*, Entry> split_last(Node* t) const {
    assert(t);
    if (t->leaf) {
      std::size_t mi = 0;
      for (std::size_t i = 1; i < t->count; ++i) {
        if (entry_less(t->leaf_entry(mi), t->leaf_entry(i))) mi = i;
      }
      const Entry e = t->leaf_entry(mi);
      if (t->count == 1) {
        free_node(t);
        return {nullptr, e};
      }
      // Swap-erase; order survives only when the erased entry was last.
      if (mi != t->count - 1) {
        t->set_entry(mi, t->leaf_entry(t->count - 1));
        if (t->sorted) t->sorted = t->count - 1 <= 1 ? 1 : 0;
      }
      --t->count;
      if (!relaxed() && !t->sorted) sort_leaf(t);
      refresh_leaf_bbox(t);
      return {t, e};
    }
    if (!t->r) {
      // The pivot itself is the maximum.
      Node* l = t->l.get();
      const Entry e = t->pivot;
      free_node(t);
      return {l, e};
    }
    Node* l = t->l.get();
    Node* r = t->r.get();
    const Entry pivot = t->pivot;
    free_node(t);
    auto [rp, e] = split_last(r);
    return {join(l, pivot, rp), e};
  }

  // -------------------------------------------------------------------
  // Construction (Alg 3)
  // -------------------------------------------------------------------

  struct CodeId {
    std::uint64_t code;
    std::uint32_t id;
  };

  Node* build_tree(const std::vector<point_t>& pts) const {
    const std::size_t n = pts.size();
    if (n == 0) return nullptr;
    if (params_.fused_build) {
      // HybridSort: codes computed on first touch; only ⟨code,id⟩ pairs are
      // moved by the sort (Alg 3 lines 5-19).
      auto less = [&](const CodeId& a, const CodeId& b) {
        if (a.code != b.code) return a.code < b.code;
        return pts[a.id] < pts[b.id];
      };
      std::vector<CodeId> sorted = sample_sort_transform<CodeId>(
          n,
          [&](std::size_t i) {
            return CodeId{Codec::encode(pts[i]), static_cast<std::uint32_t>(i)};
          },
          less);
      return build_sorted_ids(pts, sorted.data(), n);
    }
    // CPAM baseline: materialise full ⟨code, point⟩ records in a separate
    // pass (extra read/write round over all data), then sort them.
    std::vector<Entry> recs = tabulate<Entry>(n, [&](std::size_t i) {
      return Entry{Codec::encode(pts[i]), pts[i]};
    });
    sample_sort(recs, entry_less);
    return build_sorted_entries(recs.data(), n);
  }

  // BuildSorted (Alg 3 lines 20-31) from ⟨code,id⟩ pairs: points are fetched
  // by id only when a leaf (or pivot) is materialised. Subtrees build in
  // parallel; the arena's bump allocation is thread-safe.
  Node* build_sorted_ids(const std::vector<point_t>& pts, const CodeId* a,
                         std::size_t n) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap) {
      Node* t = new_leaf(n);
      t->count = n;
      for (std::size_t i = 0; i < n; ++i) {
        t->set_entry(i, Entry{a[i].code, pts[a[i].id]});
      }
      refresh_leaf_bbox(t);
      t->sorted = 1;
      return t;
    }
    const std::size_t m = n / 2;
    Node* node = new_interior();
    Node* l = nullptr;
    Node* r = nullptr;
    maybe_par_do(
        n, [&] { l = build_sorted_ids(pts, a, m); },
        [&] { r = build_sorted_ids(pts, a + m + 1, n - m - 1); });
    node->l = l;
    node->r = r;
    node->pivot = Entry{a[m].code, pts[a[m].id]};
    finish_interior(node);
    return node;
  }

  Node* build_sorted_entries(const Entry* a, std::size_t n) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap) {
      return make_leaf(a, n, /*sorted=*/true);
    }
    const std::size_t m = n / 2;
    Node* node = new_interior();
    Node* l = nullptr;
    Node* r = nullptr;
    maybe_par_do(n, [&] { l = build_sorted_entries(a, m); },
                 [&] { r = build_sorted_entries(a + m + 1, n - m - 1); });
    node->l = l;
    node->r = r;
    node->pivot = a[m];
    finish_interior(node);
    return node;
  }

  // Sorted entry batch for updates (uses the fused sort when enabled).
  std::vector<Entry> sorted_entries(const std::vector<point_t>& pts) const {
    const std::size_t n = pts.size();
    if (params_.fused_build) {
      auto less = [&](const CodeId& a, const CodeId& b) {
        if (a.code != b.code) return a.code < b.code;
        return pts[a.id] < pts[b.id];
      };
      std::vector<CodeId> sorted = sample_sort_transform<CodeId>(
          n,
          [&](std::size_t i) {
            return CodeId{Codec::encode(pts[i]), static_cast<std::uint32_t>(i)};
          },
          less);
      return tabulate<Entry>(n, [&](std::size_t i) {
        return Entry{sorted[i].code, pts[sorted[i].id]};
      });
    }
    std::vector<Entry> recs = tabulate<Entry>(n, [&](std::size_t i) {
      return Entry{Codec::encode(pts[i]), pts[i]};
    });
    sample_sort(recs, entry_less);
    return recs;
  }

  // -------------------------------------------------------------------
  // Batch insertion (Alg 4, InsertSorted)
  // -------------------------------------------------------------------

  // Append `n` batch entries to a leaf, growing its lanes when the
  // capacity (including any headroom left by deletes) runs out.
  Node* leaf_append(Node* t, const Entry* batch, std::size_t n) const {
    const std::size_t total = t->count + n;
    Node* dst = t;
    if (t->cap < total) {
      dst = new_leaf(total);
      dst->count = t->count;
      dst->bbox = t->bbox;
      dst->sorted = t->sorted;
      std::memcpy(dst->codes(), t->codes(),
                  t->count * sizeof(std::uint64_t));
      for (int d = 0; d < D; ++d) {
        std::memcpy(dst->lane(d), t->lane(d), t->count * sizeof(Coord));
      }
      free_node(t);
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst->set_entry(dst->count + i, batch[i]);
      dst->bbox.expand(batch[i].pt);
    }
    dst->count = total;
    if (relaxed()) {
      // Append and mark unsorted (lines 8-11).
      dst->sorted = total <= 1 ? 1 : 0;
    } else {
      // Total order: both halves are sorted; merge them.
      sort_leaf(dst);
    }
    return dst;
  }

  Node* insert_sorted(Node* t, Entry* batch, std::size_t n) const {
    if (n == 0) return t;
    if (!t) return build_sorted_entries(batch, n);
    if (t->leaf) {
      if (t->count + n <= params_.leaf_wrap) {
        return leaf_append(t, batch, n);
      }
      // Leaf overflow (line 12 + Sec C heuristic): small unions are rebuilt
      // locally; large ones expose the leaf and recurse as a batch insert.
      if (t->count + n <= params_.rebuild_factor * params_.leaf_wrap) {
        if (!t->sorted) sort_leaf(t);
        std::vector<Entry> all;
        all.reserve(t->count + n);
        for (std::size_t i = 0, j = 0; i < t->count || j < n;) {
          if (j == n ||
              (i < t->count && !entry_less(batch[j], t->leaf_entry(i)))) {
            all.push_back(t->leaf_entry(i++));
          } else {
            all.push_back(batch[j++]);
          }
        }
        free_node(t);
        return build_sorted_entries(all.data(), all.size());
      }
      Exposed e = expose(t);
      // Fall through to the interior path with the exposed pieces.
      const std::size_t cut = static_cast<std::size_t>(
          std::upper_bound(batch, batch + n, e.k, entry_less) - batch);
      Node* nl = nullptr;
      Node* nr = nullptr;
      maybe_par_do(
          n, [&] { nl = insert_sorted(e.l, batch, cut); },
          [&] { nr = insert_sorted(e.r, batch + cut, n - cut); });
      return join(nl, e.k, nr);
    }
    // Interior: split the batch at the pivot (entries equal to the pivot go
    // left, matching the BST invariant), recurse in parallel, re-join.
    const std::size_t cut = static_cast<std::size_t>(
        std::upper_bound(batch, batch + n, t->pivot, entry_less) - batch);
    Node* nl = nullptr;
    Node* nr = nullptr;
    {
      Node* cl = t->l.get();
      Node* cr = t->r.get();
      maybe_par_do(
          n, [&] { nl = insert_sorted(cl, batch, cut); },
          [&] { nr = insert_sorted(cr, batch + cut, n - cut); });
    }
    if (balanced_pair(count(nl), count(nr))) {
      // No rebalance needed: keep the node (and any unsorted leaves below)
      // and just refresh count/bbox — the Join of Alg 4 line 19 reduces to
      // an in-place update here.
      t->l = nl;
      t->r = nr;
      finish_interior(t);
      return t;
    }
    const Entry pivot = t->pivot;
    free_node(t);
    return join(nl, pivot, nr);
  }

  // -------------------------------------------------------------------
  // Batch deletion (Alg 4, symmetric; Sec 4.2 last paragraph)
  // -------------------------------------------------------------------

  // Swap-erase entry `i` of a leaf; returns leaving the sorted flag and
  // bbox for the caller to refresh.
  static void leaf_swap_erase(Node* t, std::size_t i) {
    if (i != t->count - 1) {
      t->set_entry(i, t->leaf_entry(t->count - 1));
      t->sorted = 0;  // swap-erase breaks order
    }
    --t->count;
    if (t->count <= 1) t->sorted = 1;
  }

  // Index of the first stored instance equal to `e`, or count when absent.
  static std::size_t leaf_find(const Node* t, const Entry& e) {
    const std::uint64_t* codes = t->codes();
    for (std::size_t i = 0; i < t->count; ++i) {
      if (codes[i] == e.code && t->leaf_point(i) == e.pt) return i;
    }
    return t->count;
  }

  Node* delete_sorted(Node* t, Entry* batch, std::size_t n) const {
    if (!t || n == 0) return t;
    if (t->leaf) {
      // Remove one stored instance per batch element.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = leaf_find(t, batch[i]);
        if (j < t->count) leaf_swap_erase(t, j);
      }
      if (t->count == 0) {
        free_node(t);
        return nullptr;
      }
      if (!relaxed() && !t->sorted) sort_leaf(t);
      refresh_leaf_bbox(t);
      return t;
    }
    // Partition the sorted batch around the pivot: strictly-below entries go
    // left, strictly-above go right. Entries *equal* to the pivot are a
    // special case: with duplicates, equal copies may be stored in both
    // subtrees and at the pivot itself, so the equal run is handled by a
    // dedicated pass afterwards (delete_equal).
    const Entry pivot = t->pivot;
    const auto lo = static_cast<std::size_t>(
        std::lower_bound(batch, batch + n, pivot, entry_less) - batch);
    const auto hi = static_cast<std::size_t>(
        std::upper_bound(batch, batch + n, pivot, entry_less) - batch);
    const std::size_t eq = hi - lo;
    Node* nl = nullptr;
    Node* nr = nullptr;
    {
      Node* cl = t->l.get();
      Node* cr = t->r.get();
      maybe_par_do(
          n, [&] { nl = delete_sorted(cl, batch, lo); },
          [&] { nr = delete_sorted(cr, batch + hi, n - hi); });
    }
    if (eq == 0 && balanced_pair(count(nl), count(nr)) &&
        count(nl) + count(nr) + 1 > params_.leaf_wrap) {
      // Pivot survives and no rebalance/flatten is needed: in-place update.
      t->l = nl;
      t->r = nr;
      finish_interior(t);
      return t;
    }
    free_node(t);
    Node* joined = join(nl, pivot, nr);
    if (eq == 0) return joined;
    return delete_equal(joined, pivot, eq).first;
  }

  // Remove up to `cnt` stored instances equal to `e` (code and point);
  // returns the new subtree and the number removed. Equal copies can live
  // in both subtrees of an equal pivot, hence the bidirectional descent.
  std::pair<Node*, std::size_t> delete_equal(Node* t, const Entry& e,
                                             std::size_t cnt) const {
    if (!t || cnt == 0) return {t, 0};
    if (t->leaf) {
      std::size_t removed = 0;
      for (std::size_t i = 0; i < t->count && removed < cnt;) {
        if (t->codes()[i] == e.code && t->leaf_point(i) == e.pt) {
          leaf_swap_erase(t, i);
          ++removed;
        } else {
          ++i;
        }
      }
      if (removed == 0) return {t, 0};
      if (t->count == 0) {
        free_node(t);
        return {nullptr, removed};
      }
      if (!relaxed() && !t->sorted) sort_leaf(t);
      refresh_leaf_bbox(t);
      return {t, removed};
    }
    if (entry_less(e, t->pivot)) {
      Node* cl = t->l.get();
      Node* cr = t->r.get();
      const Entry pivot = t->pivot;
      free_node(t);
      auto [nl, removed] = delete_equal(cl, e, cnt);
      return {join(nl, pivot, cr), removed};
    }
    if (entry_less(t->pivot, e)) {
      Node* cl = t->l.get();
      Node* cr = t->r.get();
      const Entry pivot = t->pivot;
      free_node(t);
      auto [nr, removed] = delete_equal(cr, e, cnt);
      return {join(cl, pivot, nr), removed};
    }
    // pivot == e: consume from the left subtree, then the pivot, then the
    // right subtree.
    Node* cl = t->l.get();
    Node* cr = t->r.get();
    const Entry pivot = t->pivot;
    free_node(t);
    std::size_t removed = 0;
    auto [nl, dl] = delete_equal(cl, e, cnt);
    removed += dl;
    const bool del_pivot = removed < cnt;
    if (del_pivot) ++removed;
    Node* nr = cr;
    if (removed < cnt) {
      auto [nr2, dr] = delete_equal(nr, e, cnt - removed);
      removed += dr;
      nr = nr2;
    }
    if (del_pivot) {
      return {join2(nl, nr), removed};
    }
    return {join(nl, pivot, nr), removed};
  }

  // -------------------------------------------------------------------
  // Leaf query kernels: batched passes over the contiguous SoA lanes.
  // Each pass touches one lane start-to-end (vectorisable, no pointer
  // chases); the per-dim accumulation order matches squared_distance /
  // Box::contains exactly, so results are bit-identical to the AoS code.
  // -------------------------------------------------------------------

  static constexpr std::size_t kBlock = 128;

  // m[i] = 1 iff leaf entry base+i lies inside `q` (lane-wise AND).
  static void leaf_box_mask(const Node* t, const box_t& q, std::size_t base,
                            std::size_t len, std::uint8_t* m) {
    for (std::size_t i = 0; i < len; ++i) m[i] = 1;
    for (int d = 0; d < D; ++d) {
      const Coord* lane = t->lane(d) + base;
      const Coord lo = q.lo[d];
      const Coord hi = q.hi[d];
      for (std::size_t i = 0; i < len; ++i) {
        m[i] &= static_cast<std::uint8_t>(lane[i] >= lo && lane[i] <= hi);
      }
    }
  }

  // d2[i] = squared Euclidean distance from leaf entry base+i to `q`,
  // accumulated dim-major like geometry's squared_distance.
  static void leaf_dist2(const Node* t, const point_t& q, std::size_t base,
                         std::size_t len, double* d2) {
    for (std::size_t i = 0; i < len; ++i) d2[i] = 0;
    for (int d = 0; d < D; ++d) {
      const Coord* lane = t->lane(d) + base;
      const double qd = static_cast<double>(q[d]);
      for (std::size_t i = 0; i < len; ++i) {
        const double diff = static_cast<double>(lane[i]) - qd;
        d2[i] += diff * diff;
      }
    }
  }

  static std::size_t leaf_range_count(const Node* t, const box_t& q) {
    std::size_t c = 0;
    std::uint8_t m[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_box_mask(t, q, base, len, m);
      for (std::size_t i = 0; i < len; ++i) c += m[i];
    }
    return c;
  }

  template <typename Sink>
  static bool leaf_range_visit(const Node* t, const box_t& q, Sink& sink) {
    std::uint8_t m[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_box_mask(t, q, base, len, m);
      for (std::size_t i = 0; i < len; ++i) {
        if (m[i] && !api::sink_accept(sink, t->leaf_point(base + i))) {
          return false;
        }
      }
    }
    return true;
  }

  static std::size_t leaf_ball_count(const Node* t, const point_t& q,
                                     double r2) {
    std::size_t c = 0;
    double d2[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_dist2(t, q, base, len, d2);
      for (std::size_t i = 0; i < len; ++i) c += d2[i] <= r2 ? 1 : 0;
    }
    return c;
  }

  template <typename Sink>
  static bool leaf_ball_visit(const Node* t, const point_t& q, double r2,
                              Sink& sink) {
    double d2[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_dist2(t, q, base, len, d2);
      for (std::size_t i = 0; i < len; ++i) {
        if (d2[i] <= r2 && !api::sink_accept(sink, t->leaf_point(base + i))) {
          return false;
        }
      }
    }
    return true;
  }

  // Works for both KnnBuffer and ConcurrentKnnBuffer: distances come from
  // one batched pass; points are gathered only for offered entries.
  template <typename Buf>
  static void leaf_knn_offer(const Node* t, const point_t& q, Buf& buf) {
    double d2[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_dist2(t, q, base, len, d2);
      for (std::size_t i = 0; i < len; ++i) {
        buf.offer(d2[i], t->leaf_point(base + i));
      }
    }
  }

  // -------------------------------------------------------------------
  // Queries (R-tree style: bounding-box pruning only)
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      leaf_knn_offer(t, q, buf);
      return;
    }
    buf.offer(squared_distance(t->pivot.pt, q), t->pivot.pt);
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (!c) continue;
      if (buf.full() && dist[i] >= buf.worst()) continue;
      knn_rec(c, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      return leaf_range_count(t, query);
    }
    std::size_t total = query.contains(t->pivot.pt) ? 1 : 0;
    if (t->l) total += count_rec(t->l.get(), query);
    if (t->r) total += count_rec(t->r.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) {
        if (!api::sink_accept(sink, t->leaf_point(i))) return false;
      }
      return true;
    }
    if (t->l && !visit_all_rec(t->l.get(), sink)) return false;
    if (!api::sink_accept(sink, t->pivot.pt)) return false;
    return !t->r || visit_all_rec(t->r.get(), sink);
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      return leaf_range_visit(t, query, sink);
    }
    if (query.contains(t->pivot.pt) && !api::sink_accept(sink, t->pivot.pt)) {
      return false;
    }
    if (t->l && !range_visit_rec(t->l.get(), query, sink)) return false;
    return !t->r || range_visit_rec(t->r.get(), query, sink);
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      return leaf_ball_count(t, q, r2);
    }
    std::size_t total = squared_distance(t->pivot.pt, q) <= r2 ? 1 : 0;
    if (t->l) total += ball_count_rec(t->l.get(), q, r2);
    if (t->r) total += ball_count_rec(t->r.get(), q, r2);
    return total;
  }

  // Parallel counterparts: binary fork over subtrees above the grain; the
  // sequential recursion (which re-applies the same pruning) handles the
  // rest. The sink's own false return covers mid-leaf stops.
  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    if (query.contains(t->pivot.pt)) sink(t->pivot.pt);
    par_do([&] { if (t->l) range_visit_par_rec(t->l.get(), query, sink); },
           [&] { if (t->r) range_visit_par_rec(t->r.get(), query, sink); });
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    if (squared_distance(t->pivot.pt, q) <= r2) sink(t->pivot.pt);
    par_do([&] { if (t->l) ball_visit_par_rec(t->l.get(), q, r2, sink); },
           [&] { if (t->r) ball_visit_par_rec(t->r.get(), q, r2, sink); });
  }

  // Parallel kNN: the bound is re-read at every node (it tightens while
  // tasks run, including a stolen task's delay), so forked subtrees keep
  // pruning against the best radius found anywhere. Forking both children
  // gives up the strict nearest-first visit order; the shared bound is
  // what keeps the extra exploration shallow.
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      leaf_knn_offer(t, q, buf);
      return;
    }
    buf.offer(squared_distance(t->pivot.pt, q), t->pivot.pt);
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    if (t->count >= fork_grain() && kids[0] && kids[1] &&
        dist[0] < buf.bound() && dist[1] < buf.bound()) {
      par_do([&] { knn_par_rec(kids[order[0]], q, buf); },
             [&] { knn_par_rec(kids[order[1]], q, buf); });
      return;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (c == nullptr || dist[i] >= buf.bound()) continue;
      knn_par_rec(c, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      return leaf_ball_visit(t, q, r2, sink);
    }
    if (squared_distance(t->pivot.pt, q) <= r2 &&
        !api::sink_accept(sink, t->pivot.pt)) {
      return false;
    }
    if (t->l && !ball_visit_rec(t->l.get(), q, r2, sink)) return false;
    return !t->r || ball_visit_rec(t->r.get(), q, r2, sink);
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    return 1 + std::max(height_rec(t->l.get()), height_rec(t->r.get()));
  }

  static void leaf_stats(const Node* t, std::size_t& leaves,
                         std::size_t& unsorted) {
    if (!t) return;
    if (t->leaf) {
      ++leaves;
      unsorted += t->sorted ? 0 : 1;
      return;
    }
    leaf_stats(t->l.get(), leaves, unsorted);
    leaf_stats(t->r.get(), leaves, unsorted);
  }

  // -------------------------------------------------------------------
  // Invariant checking
  // -------------------------------------------------------------------

  void check_rec(const Node* t, std::vector<Entry>& inorder) const {
    if (t->leaf) {
      if (t->count == 0) throw std::logic_error("spac: empty leaf node");
      if (t->count > t->cap) {
        throw std::logic_error("spac: leaf count exceeds capacity");
      }
      if (t->count > params_.leaf_wrap) {
        throw std::logic_error("spac: leaf exceeds wrap");
      }
      if (!relaxed() && !t->sorted) {
        throw std::logic_error("spac: unsorted leaf under total order");
      }
      std::vector<Entry> items(t->count);
      for (std::size_t i = 0; i < t->count; ++i) items[i] = t->leaf_entry(i);
      if (t->sorted &&
          !std::is_sorted(items.begin(), items.end(), entry_less)) {
        throw std::logic_error("spac: leaf marked sorted but is not");
      }
      box_t bb = box_t::empty();
      for (const auto& e : items) {
        bb.expand(e.pt);
        if (e.code != Codec::encode(e.pt)) {
          throw std::logic_error("spac: stale cached code");
        }
      }
      if (!(bb == t->bbox)) throw std::logic_error("spac: leaf bbox not tight");
      const std::size_t lo = inorder.size();
      inorder.insert(inorder.end(), items.begin(), items.end());
      std::sort(inorder.begin() + static_cast<std::ptrdiff_t>(lo),
                inorder.end(), entry_less);
      return;
    }
    if (t->count != count(t->l.get()) + count(t->r.get()) + 1) {
      throw std::logic_error("spac: interior count mismatch");
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("spac: interior at or below leaf wrap");
    }
    if (!balanced_pair(count(t->l.get()), count(t->r.get()))) {
      throw std::logic_error("spac: weight balance violated");
    }
    box_t bb = box_t::empty();
    if (t->l) bb.merge(t->l->bbox);
    if (t->r) bb.merge(t->r->bbox);
    bb.expand(t->pivot.pt);
    if (!(bb == t->bbox)) throw std::logic_error("spac: interior bbox mismatch");
    if (t->pivot.code != Codec::encode(t->pivot.pt)) {
      throw std::logic_error("spac: stale pivot code");
    }
    if (t->l) check_rec(t->l.get(), inorder);
    inorder.push_back(t->pivot);
    if (t->r) check_rec(t->r.get(), inorder);
  }
};

// Paper-named instantiations.
template <typename Coord, int D>
using SpacHTree = SpacTree<Coord, D, sfc::HilbertCodec<Coord, D>>;
template <typename Coord, int D>
using SpacZTree = SpacTree<Coord, D, sfc::MortonCodec<Coord, D>>;

using SpacHTree2 = SpacHTree<std::int64_t, 2>;
using SpacZTree2 = SpacZTree<std::int64_t, 2>;
using SpacHTree3 = SpacHTree<std::int64_t, 3>;
using SpacZTree3 = SpacZTree<std::int64_t, 3>;

}  // namespace psi
