// PSI-Lib: the SPaC-tree family (paper Sec 4) — a parallel R-tree built as a
// weight-balanced binary search tree over space-filling-curve codes, with
// join-based batch updates and leaf wrapping, plus the two ideas that give
// the SPaC-tree its update speed over the plain PaC-tree (the "CPAM"
// baseline):
//
//  1. HybridSort construction (Alg 3): the SFC code of each point is
//     computed on *first touch* inside the sample-sort's classification
//     pass, and only ⟨code, id⟩ pairs are moved during sorting; full points
//     are fetched once, into the leaves, at the end.
//  2. Relaxed leaf order (Alg 4): updates may leave leaf contents unsorted
//     (marked), because spatial queries scan whole leaves anyway; leaves are
//     re-sorted lazily, only when the join machinery must Expose them.
//
// The baseline behaviour is available through `LeafOrder::kTotal` +
// `fused_build = false`, which reproduces CPAM-H / CPAM-Z: codes are
// materialised into ⟨code, point⟩ records in a separate pass before sorting
// (the black-box PaC-tree usage the paper measures), and every leaf is kept
// sorted on every update. This makes the two columns of the paper's
// ablation share one code base, isolating exactly the claimed difference.
//
// Balancing: BB[α] weight-balance (α = 0.2, paper Sec C) maintained solely
// with Join (Blelloch–Ferizovic–Sun join-based framework), as in PaC-trees.
// Leaf wrapping: φ = 40 by default; Node() keeps every subtree of size ≤ φ
// flattened into one leaf and sizes in (φ, 2φ] as an interior with two
// redistributed leaves (Alg 4 lines 38-48).

#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/sfc/codec.h"

namespace psi {

enum class LeafOrder {
  kRelaxed,  // SPaC-tree: leaves may be unsorted after updates
  kTotal,    // CPAM baseline: total order maintained everywhere
};

struct SpacParams {
  std::size_t leaf_wrap = 40;  // φ (paper Sec C)
  double alpha = 0.2;          // BB[α] balance parameter (paper Sec C)
  LeafOrder order = LeafOrder::kRelaxed;
  bool fused_build = true;     // HybridSort vs precompute-then-sort (ablation)
  // Leaf-overflow heuristic threshold (paper Sec C): rebuild locally when
  // |leaf| + |batch| <= rebuild_factor * φ, otherwise expose-and-recurse.
  std::size_t rebuild_factor = 4;
};

inline SpacParams cpam_params() {
  SpacParams p;
  p.order = LeafOrder::kTotal;
  p.fused_build = false;
  return p;
}

template <typename Coord, int D, typename Codec>
class SpacTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = Codec;

  struct Entry {
    std::uint64_t code;
    point_t pt;
  };

  explicit SpacTree(SpacParams params = {}) : params_(params) {}

  static const char* curve_name() { return Codec::name(); }

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  // Build from scratch (Alg 3). With fused_build the SFC codes are computed
  // inside the sort's first pass and only ⟨code,id⟩ pairs are sorted;
  // otherwise full ⟨code,point⟩ records are materialised first and sorted
  // (CPAM black-box behaviour).
  void build(const std::vector<point_t>& pts) {
    root_ = build_tree(pts);
  }

  void batch_insert(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    root_ = insert_sorted(std::move(root_), batch.data(), batch.size());
  }

  // Remove one stored instance per batch element; absent elements ignored.
  void batch_delete(const std::vector<point_t>& pts) {
    if (!root_ || pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    root_ = delete_sorted(std::move(root_), batch.data(), batch.size());
  }

  // Combined difference (artifact BatchDiff()): remove `deletes`, then add
  // `inserts` — one call for move-style updates.
  void batch_diff(const std::vector<point_t>& inserts,
                  const std::vector<point_t>& deletes) {
    batch_delete(deletes);
    batch_insert(inserts);
  }

  void clear() { root_.reset(); }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return count(root_.get()); }
  bool empty() const { return size() == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root_ ? root_->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root_) range_visit_rec(root_.get(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root_) ball_visit_rec(root_.get(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Fork at interior nodes above the fork grain, reuse the sequential
  // visit below it. The sink is fed from many workers at once, so it must
  // be a ConcurrentSink (or equivalent: thread-safe operator() plus a
  // stopped() flag polled at node granularity for early termination).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root_) range_visit_par_rec(root_.get(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root_) ball_visit_par_rec(root_.get(), q, radius * radius, sink);
  }

  // kNN fan-out: fork over both children when the subtree is above the
  // fork grain and each child's bbox can still beat the buffer's shared
  // pruning bound; below the grain the same recursion descends
  // sequentially in nearest-child-first order. The buffer must tolerate
  // concurrent offers (api::ConcurrentKnnBuffer); its capacity is k.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root_) knn_par_rec(root_.get(), q, buf);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root_) knn_rec(root_.get(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root_ ? count_rec(root_.get(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root_ ? ball_count_rec(root_.get(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root_) {
      collect_points(root_.get(), out);
    }
    return out;
  }

  // -------------------------------------------------------------------
  // Introspection / invariants (test support)
  // -------------------------------------------------------------------

  std::size_t height() const { return height_rec(root_.get()); }

  // Fraction of leaves currently marked unsorted (0 for kTotal).
  double unsorted_leaf_fraction() const {
    std::size_t leaves = 0, unsorted = 0;
    leaf_stats(root_.get(), leaves, unsorted);
    return leaves == 0 ? 0.0
                       : static_cast<double>(unsorted) /
                             static_cast<double>(leaves);
  }

  void check_invariants() const {
    if (!root_) return;
    std::vector<Entry> inorder;
    inorder.reserve(size());
    check_rec(root_.get(), inorder);
    for (std::size_t i = 1; i < inorder.size(); ++i) {
      if (entry_less(inorder[i], inorder[i - 1])) {
        throw std::logic_error("spac: global order violated");
      }
    }
  }

 private:
  struct Node {
    box_t bbox = box_t::empty();
    std::size_t count = 0;
    bool leaf = true;
    // Interior payload.
    std::unique_ptr<Node> l, r;
    Entry pivot{};
    // Leaf payload.
    std::vector<Entry> items;
    bool sorted = true;
  };

  SpacParams params_;
  std::unique_ptr<Node> root_;

  // -------------------------------------------------------------------
  // Entry order: by code, tie-broken lexicographically on coordinates so
  // the order is total even if a codec were non-injective.
  // -------------------------------------------------------------------

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.code != b.code) return a.code < b.code;
    return a.pt < b.pt;
  }
  static bool entry_equal(const Entry& a, const Entry& b) {
    return a.code == b.code && a.pt == b.pt;
  }

  static std::size_t count(const Node* t) { return t ? t->count : 0; }

  // Fork only when the subproblem is big enough to amortise task overhead.
  template <typename F, typename G>
  static void maybe_par_do(std::size_t n, F&& f, G&& g) {
    if (n >= fork_grain()) {
      par_do(f, g);
    } else {
      f();
      g();
    }
  }

  bool relaxed() const { return params_.order == LeafOrder::kRelaxed; }

  // -------------------------------------------------------------------
  // Weight balance (BB[α], weight = size + 1)
  // -------------------------------------------------------------------

  bool balanced_pair(std::size_t a, std::size_t b) const {
    const double wa = static_cast<double>(a) + 1;
    const double wb = static_cast<double>(b) + 1;
    const double total = wa + wb;
    return wa >= params_.alpha * total && wb >= params_.alpha * total;
  }

  bool left_heavy(std::size_t l, std::size_t r) const {
    const double wl = static_cast<double>(l) + 1;
    const double wr = static_cast<double>(r) + 1;
    return wr < params_.alpha * (wl + wr);
  }

  // -------------------------------------------------------------------
  // Leaf helpers
  // -------------------------------------------------------------------

  void sort_items(std::vector<Entry>& items) const {
    std::sort(items.begin(), items.end(), entry_less);
  }

  std::unique_ptr<Node> make_leaf(std::vector<Entry> items, bool sorted) const {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->count = items.size();
    leaf->bbox = box_t::empty();
    for (const auto& e : items) leaf->bbox.expand(e.pt);
    leaf->items = std::move(items);
    leaf->sorted = sorted || leaf->items.size() <= 1;
    if (!relaxed() && !leaf->sorted) {
      sort_items(leaf->items);
      leaf->sorted = true;
    }
    return leaf;
  }

  // In-order collection of entries; each unsorted leaf is sorted into the
  // output so the result is globally sorted (the BST invariant holds
  // set-wise between leaves even in relaxed mode).
  static void collect_sorted(const Node* t, std::vector<Entry>& out) {
    if (!t) return;
    if (t->leaf) {
      const std::size_t lo = out.size();
      out.insert(out.end(), t->items.begin(), t->items.end());
      if (!t->sorted) {
        std::sort(out.begin() + static_cast<std::ptrdiff_t>(lo), out.end(),
                  entry_less);
      }
      return;
    }
    collect_sorted(t->l.get(), out);
    out.push_back(t->pivot);
    collect_sorted(t->r.get(), out);
  }

  static void collect_points(const Node* t, std::vector<point_t>& out) {
    if (!t) return;
    if (t->leaf) {
      for (const auto& e : t->items) out.push_back(e.pt);
      return;
    }
    collect_points(t->l.get(), out);
    out.push_back(t->pivot.pt);
    collect_points(t->r.get(), out);
  }

  // -------------------------------------------------------------------
  // Node construction with leaf wrapping (Alg 4, Node())
  // -------------------------------------------------------------------

  std::unique_ptr<Node> make_node(std::unique_ptr<Node> l, Entry k,
                                  std::unique_ptr<Node> r) const {
    const std::size_t n = count(l.get()) + count(r.get()) + 1;
    if (n <= params_.leaf_wrap) {
      // Flatten the whole (small) subtree into one leaf (line 47). In
      // relaxed mode no sort is needed; in total mode collect_sorted keeps
      // the order.
      std::vector<Entry> items;
      items.reserve(n);
      if (!relaxed()) {
        collect_sorted(l.get(), items);
        items.push_back(k);
        collect_sorted(r.get(), items);
        return make_leaf(std::move(items), /*sorted=*/true);
      }
      collect_unordered(l.get(), items);
      items.push_back(k);
      collect_unordered(r.get(), items);
      return make_leaf(std::move(items), /*sorted=*/false);
    }
    if (n <= 2 * params_.leaf_wrap) {
      // Redistribute into an interior with two half-size leaves when
      // necessary (lines 42-44): two leaf children whose sizes violate the
      // weight balance. Redistribution needs sorted order, so unsorted
      // leaves are sorted here (line 43). Balanced leaf pairs are kept
      // as-is, which is what lets relaxed (unsorted) leaves survive.
      const bool both_leaves =
          (!l || l->leaf) && (!r || r->leaf);
      if (both_leaves &&
          !balanced_pair(count(l.get()), count(r.get()))) {
        std::vector<Entry> items;
        items.reserve(n);
        collect_sorted(l.get(), items);
        const auto left_n = static_cast<std::ptrdiff_t>(items.size());
        items.push_back(k);
        collect_sorted(r.get(), items);
        std::inplace_merge(items.begin(), items.begin() + left_n, items.end(),
                           entry_less);
        const std::size_t m = n / 2;
        auto node = std::make_unique<Node>();
        node->leaf = false;
        node->pivot = items[m];
        node->l = make_leaf(
            {items.begin(), items.begin() + static_cast<std::ptrdiff_t>(m)},
            /*sorted=*/true);
        node->r = make_leaf({items.begin() + static_cast<std::ptrdiff_t>(m) + 1,
                             items.end()},
                            /*sorted=*/true);
        finish_interior(node.get());
        return node;
      }
    }
    auto node = std::make_unique<Node>();
    node->leaf = false;
    node->l = std::move(l);
    node->r = std::move(r);
    node->pivot = k;
    finish_interior(node.get());
    return node;
  }

  static void collect_unordered(const Node* t, std::vector<Entry>& out) {
    if (!t) return;
    if (t->leaf) {
      out.insert(out.end(), t->items.begin(), t->items.end());
      return;
    }
    collect_unordered(t->l.get(), out);
    out.push_back(t->pivot);
    collect_unordered(t->r.get(), out);
  }

  static void finish_interior(Node* t) {
    t->count = count(t->l.get()) + count(t->r.get()) + 1;
    t->bbox = box_t::empty();
    if (t->l) t->bbox.merge(t->l->bbox);
    if (t->r) t->bbox.merge(t->r->bbox);
    t->bbox.expand(t->pivot.pt);
  }

  // -------------------------------------------------------------------
  // Expose (Alg 4): open a subtree root; a leaf is first re-sorted (if
  // marked unsorted, line 34) and split one level into two half leaves.
  // -------------------------------------------------------------------

  struct Exposed {
    std::unique_ptr<Node> l;
    Entry k;
    std::unique_ptr<Node> r;
  };

  Exposed expose(std::unique_ptr<Node> t) const {
    assert(t && t->count >= 1);
    if (!t->leaf) {
      return Exposed{std::move(t->l), t->pivot, std::move(t->r)};
    }
    if (!t->sorted) sort_items(t->items);
    const std::size_t n = t->items.size();
    const std::size_t m = n / 2;
    Exposed e;
    e.k = t->items[m];
    if (m > 0) {
      e.l = make_leaf({t->items.begin(),
                       t->items.begin() + static_cast<std::ptrdiff_t>(m)},
                      true);
    }
    if (m + 1 < n) {
      e.r = make_leaf({t->items.begin() + static_cast<std::ptrdiff_t>(m) + 1,
                       t->items.end()},
                      true);
    }
    return e;
  }

  // -------------------------------------------------------------------
  // Join (Alg 4 / Just-Join framework)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> join(std::unique_ptr<Node> l, Entry k,
                             std::unique_ptr<Node> r) const {
    const std::size_t nl = count(l.get()), nr = count(r.get());
    if (left_heavy(nl, nr)) return join_right(std::move(l), k, std::move(r));
    if (left_heavy(nr, nl)) return join_left(std::move(l), k, std::move(r));
    return make_node(std::move(l), k, std::move(r));
  }

  // L is heavier: descend L's right spine until it balances with R, then
  // attach and rebalance with (single/double) rotations on the way out.
  std::unique_ptr<Node> join_right(std::unique_ptr<Node> l, Entry k,
                                   std::unique_ptr<Node> r) const {
    if (balanced_pair(count(l.get()), count(r.get()))) {
      return make_node(std::move(l), k, std::move(r));
    }
    Exposed e = expose(std::move(l));
    // Re-dispatch through join: exposing a (wrapped) leaf can shrink the
    // spine child past the balance point in one step, so the plain
    // joinRight recursion of the unwrapped algorithm is not safe here.
    auto t = join(std::move(e.r), k, std::move(r));
    if (balanced_pair(count(e.l.get()), count(t.get()))) {
      return make_node(std::move(e.l), e.k, std::move(t));
    }
    // Rotations. t is heavier than e.l; open it up.
    Exposed et = expose(std::move(t));
    if (balanced_pair(count(e.l.get()), count(et.l.get())) &&
        balanced_pair(count(e.l.get()) + count(et.l.get()) + 1,
                      count(et.r.get()))) {
      // Single left rotation.
      return make_node(make_node(std::move(e.l), e.k, std::move(et.l)), et.k,
                       std::move(et.r));
    }
    // Double rotation: rotate right at t, then left here.
    Exposed etl = expose(std::move(et.l));
    return make_node(make_node(std::move(e.l), e.k, std::move(etl.l)), etl.k,
                     make_node(std::move(etl.r), et.k, std::move(et.r)));
  }

  std::unique_ptr<Node> join_left(std::unique_ptr<Node> l, Entry k,
                                  std::unique_ptr<Node> r) const {
    if (balanced_pair(count(l.get()), count(r.get()))) {
      return make_node(std::move(l), k, std::move(r));
    }
    Exposed e = expose(std::move(r));
    auto t = join(std::move(l), k, std::move(e.l));
    if (balanced_pair(count(t.get()), count(e.r.get()))) {
      return make_node(std::move(t), e.k, std::move(e.r));
    }
    Exposed et = expose(std::move(t));
    if (balanced_pair(count(et.r.get()), count(e.r.get())) &&
        balanced_pair(count(et.l.get()),
                      count(et.r.get()) + count(e.r.get()) + 1)) {
      // Single right rotation.
      return make_node(std::move(et.l), et.k,
                       make_node(std::move(et.r), e.k, std::move(e.r)));
    }
    Exposed etr = expose(std::move(et.r));
    return make_node(make_node(std::move(et.l), et.k, std::move(etr.l)), etr.k,
                     make_node(std::move(etr.r), e.k, std::move(e.r)));
  }

  // Join without a middle key: pull the last entry of L up as the pivot.
  std::unique_ptr<Node> join2(std::unique_ptr<Node> l,
                              std::unique_ptr<Node> r) const {
    if (!l) return r;
    if (!r) return l;
    auto [lp, k] = split_last(std::move(l));
    return join(std::move(lp), k, std::move(r));
  }

  // Remove and return the order-maximal entry of t.
  std::pair<std::unique_ptr<Node>, Entry> split_last(
      std::unique_ptr<Node> t) const {
    assert(t);
    if (t->leaf) {
      auto it = std::max_element(t->items.begin(), t->items.end(), entry_less);
      Entry e = *it;
      t->items.erase(it);  // erase preserves relative order -> flag survives
      if (t->items.empty()) return {nullptr, e};
      return {make_leaf(std::move(t->items), t->sorted), e};
    }
    if (!t->r) {
      // The pivot itself is the maximum.
      return {std::move(t->l), t->pivot};
    }
    auto [rp, e] = split_last(std::move(t->r));
    return {join(std::move(t->l), t->pivot, std::move(rp)), e};
  }

  // -------------------------------------------------------------------
  // Construction (Alg 3)
  // -------------------------------------------------------------------

  struct CodeId {
    std::uint64_t code;
    std::uint32_t id;
  };

  std::unique_ptr<Node> build_tree(const std::vector<point_t>& pts) const {
    const std::size_t n = pts.size();
    if (n == 0) return nullptr;
    if (params_.fused_build) {
      // HybridSort: codes computed on first touch; only ⟨code,id⟩ pairs are
      // moved by the sort (Alg 3 lines 5-19).
      auto less = [&](const CodeId& a, const CodeId& b) {
        if (a.code != b.code) return a.code < b.code;
        return pts[a.id] < pts[b.id];
      };
      std::vector<CodeId> sorted = sample_sort_transform<CodeId>(
          n,
          [&](std::size_t i) {
            return CodeId{Codec::encode(pts[i]), static_cast<std::uint32_t>(i)};
          },
          less);
      return build_sorted_ids(pts, sorted.data(), n);
    }
    // CPAM baseline: materialise full ⟨code, point⟩ records in a separate
    // pass (extra read/write round over all data), then sort them.
    std::vector<Entry> recs = tabulate<Entry>(n, [&](std::size_t i) {
      return Entry{Codec::encode(pts[i]), pts[i]};
    });
    sample_sort(recs, entry_less);
    return build_sorted_entries(recs.data(), n);
  }

  // BuildSorted (Alg 3 lines 20-31) from ⟨code,id⟩ pairs: points are fetched
  // by id only when a leaf (or pivot) is materialised.
  std::unique_ptr<Node> build_sorted_ids(const std::vector<point_t>& pts,
                                         const CodeId* a, std::size_t n) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap) {
      std::vector<Entry> items(n);
      for (std::size_t i = 0; i < n; ++i) {
        items[i] = Entry{a[i].code, pts[a[i].id]};
      }
      return make_leaf(std::move(items), /*sorted=*/true);
    }
    const std::size_t m = n / 2;
    auto node = std::make_unique<Node>();
    node->leaf = false;
    maybe_par_do(
        n, [&] { node->l = build_sorted_ids(pts, a, m); },
        [&] { node->r = build_sorted_ids(pts, a + m + 1, n - m - 1); });
    node->pivot = Entry{a[m].code, pts[a[m].id]};
    finish_interior(node.get());
    return node;
  }

  std::unique_ptr<Node> build_sorted_entries(const Entry* a,
                                             std::size_t n) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap) {
      return make_leaf({a, a + n}, /*sorted=*/true);
    }
    const std::size_t m = n / 2;
    auto node = std::make_unique<Node>();
    node->leaf = false;
    maybe_par_do(n, [&] { node->l = build_sorted_entries(a, m); },
                 [&] { node->r = build_sorted_entries(a + m + 1, n - m - 1); });
    node->pivot = a[m];
    finish_interior(node.get());
    return node;
  }

  // Sorted entry batch for updates (uses the fused sort when enabled).
  std::vector<Entry> sorted_entries(const std::vector<point_t>& pts) const {
    const std::size_t n = pts.size();
    if (params_.fused_build) {
      auto less = [&](const CodeId& a, const CodeId& b) {
        if (a.code != b.code) return a.code < b.code;
        return pts[a.id] < pts[b.id];
      };
      std::vector<CodeId> sorted = sample_sort_transform<CodeId>(
          n,
          [&](std::size_t i) {
            return CodeId{Codec::encode(pts[i]), static_cast<std::uint32_t>(i)};
          },
          less);
      return tabulate<Entry>(n, [&](std::size_t i) {
        return Entry{sorted[i].code, pts[sorted[i].id]};
      });
    }
    std::vector<Entry> recs = tabulate<Entry>(n, [&](std::size_t i) {
      return Entry{Codec::encode(pts[i]), pts[i]};
    });
    sample_sort(recs, entry_less);
    return recs;
  }

  // -------------------------------------------------------------------
  // Batch insertion (Alg 4, InsertSorted)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> insert_sorted(std::unique_ptr<Node> t, Entry* batch,
                                      std::size_t n) const {
    if (n == 0) return t;
    if (!t) return build_from_sorted_batch(batch, n);
    if (t->leaf) {
      if (t->count + n <= params_.leaf_wrap) {
        // Append and mark unsorted (lines 8-11); total order instead merges.
        for (std::size_t i = 0; i < n; ++i) {
          t->bbox.expand(batch[i].pt);
        }
        if (relaxed()) {
          t->items.insert(t->items.end(), batch, batch + n);
          t->sorted = t->items.size() <= 1;
        } else {
          const auto mid = t->items.size();
          t->items.insert(t->items.end(), batch, batch + n);
          std::inplace_merge(t->items.begin(),
                             t->items.begin() + static_cast<std::ptrdiff_t>(mid),
                             t->items.end(), entry_less);
        }
        t->count = t->items.size();
        return t;
      }
      // Leaf overflow (line 12 + Sec C heuristic): small unions are rebuilt
      // locally; large ones expose the leaf and recurse as a batch insert.
      if (t->count + n <= params_.rebuild_factor * params_.leaf_wrap) {
        std::vector<Entry> all;
        all.reserve(t->count + n);
        if (!t->sorted) sort_items(t->items);
        std::merge(t->items.begin(), t->items.end(), batch, batch + n,
                   std::back_inserter(all), entry_less);
        return build_sorted_entries(all.data(), all.size());
      }
      Exposed e = expose(std::move(t));
      // Fall through to the interior path with the exposed pieces.
      const std::size_t cut = static_cast<std::size_t>(
          std::upper_bound(batch, batch + n, e.k, entry_less) - batch);
      std::unique_ptr<Node> nl, nr;
      maybe_par_do(
          n, [&] { nl = insert_sorted(std::move(e.l), batch, cut); },
          [&] { nr = insert_sorted(std::move(e.r), batch + cut, n - cut); });
      return join(std::move(nl), e.k, std::move(nr));
    }
    // Interior: split the batch at the pivot (entries equal to the pivot go
    // left, matching the BST invariant), recurse in parallel, re-join.
    const std::size_t cut = static_cast<std::size_t>(
        std::upper_bound(batch, batch + n, t->pivot, entry_less) - batch);
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    const Entry pivot = t->pivot;
    maybe_par_do(
        n, [&] { nl = insert_sorted(std::move(nl), batch, cut); },
        [&] { nr = insert_sorted(std::move(nr), batch + cut, n - cut); });
    if (balanced_pair(count(nl.get()), count(nr.get()))) {
      // No rebalance needed: keep the node (and any unsorted leaves below)
      // and just refresh count/bbox — the Join of Alg 4 line 19 reduces to
      // an in-place update here.
      t->l = std::move(nl);
      t->r = std::move(nr);
      finish_interior(t.get());
      return t;
    }
    return join(std::move(nl), pivot, std::move(nr));
  }

  std::unique_ptr<Node> build_from_sorted_batch(Entry* batch,
                                                std::size_t n) const {
    return build_sorted_entries(batch, n);
  }

  // -------------------------------------------------------------------
  // Batch deletion (Alg 4, symmetric; Sec 4.2 last paragraph)
  // -------------------------------------------------------------------

  std::unique_ptr<Node> delete_sorted(std::unique_ptr<Node> t, Entry* batch,
                                      std::size_t n) const {
    if (!t || n == 0) return t;
    if (t->leaf) {
      // Remove one stored instance per batch element.
      for (std::size_t i = 0; i < n; ++i) {
        auto it = std::find_if(
            t->items.begin(), t->items.end(),
            [&](const Entry& e) { return entry_equal(e, batch[i]); });
        if (it != t->items.end()) {
          *it = t->items.back();
          t->items.pop_back();
          t->sorted = t->items.size() <= 1;  // swap-erase breaks order
        }
      }
      if (t->items.empty()) return nullptr;
      if (!relaxed() && !t->sorted) {
        sort_items(t->items);
        t->sorted = true;
      }
      t->count = t->items.size();
      t->bbox = box_t::empty();
      for (const auto& e : t->items) t->bbox.expand(e.pt);
      return t;
    }
    // Partition the sorted batch around the pivot: strictly-below entries go
    // left, strictly-above go right. Entries *equal* to the pivot are a
    // special case: with duplicates, equal copies may be stored in both
    // subtrees and at the pivot itself, so the equal run is handled by a
    // dedicated pass afterwards (delete_equal).
    const Entry pivot = t->pivot;
    const auto lo = static_cast<std::size_t>(
        std::lower_bound(batch, batch + n, pivot, entry_less) - batch);
    const auto hi = static_cast<std::size_t>(
        std::upper_bound(batch, batch + n, pivot, entry_less) - batch);
    const std::size_t eq = hi - lo;
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    maybe_par_do(
        n, [&] { nl = delete_sorted(std::move(nl), batch, lo); },
        [&] { nr = delete_sorted(std::move(nr), batch + hi, n - hi); });
    if (eq == 0 && balanced_pair(count(nl.get()), count(nr.get())) &&
        count(nl.get()) + count(nr.get()) + 1 > params_.leaf_wrap) {
      // Pivot survives and no rebalance/flatten is needed: in-place update.
      t->l = std::move(nl);
      t->r = std::move(nr);
      finish_interior(t.get());
      return t;
    }
    auto joined = join(std::move(nl), pivot, std::move(nr));
    if (eq == 0) return joined;
    return delete_equal(std::move(joined), pivot, eq).first;
  }

  // Remove up to `cnt` stored instances equal to `e` (code and point);
  // returns the new subtree and the number removed. Equal copies can live
  // in both subtrees of an equal pivot, hence the bidirectional descent.
  std::pair<std::unique_ptr<Node>, std::size_t> delete_equal(
      std::unique_ptr<Node> t, const Entry& e, std::size_t cnt) const {
    if (!t || cnt == 0) return {std::move(t), 0};
    if (t->leaf) {
      std::size_t removed = 0;
      for (auto it = t->items.begin(); it != t->items.end() && removed < cnt;) {
        if (entry_equal(*it, e)) {
          *it = t->items.back();
          t->items.pop_back();
          ++removed;
        } else {
          ++it;
        }
      }
      if (removed == 0) return {std::move(t), 0};
      if (t->items.empty()) return {nullptr, removed};
      t->sorted = t->items.size() <= 1;
      if (!relaxed()) {
        sort_items(t->items);
        t->sorted = true;
      }
      t->count = t->items.size();
      t->bbox = box_t::empty();
      for (const auto& it2 : t->items) t->bbox.expand(it2.pt);
      return {std::move(t), removed};
    }
    if (entry_less(e, t->pivot)) {
      auto [nl, removed] = delete_equal(std::move(t->l), e, cnt);
      auto joined = join(std::move(nl), t->pivot, std::move(t->r));
      return {std::move(joined), removed};
    }
    if (entry_less(t->pivot, e)) {
      auto [nr, removed] = delete_equal(std::move(t->r), e, cnt);
      auto joined = join(std::move(t->l), t->pivot, std::move(nr));
      return {std::move(joined), removed};
    }
    // pivot == e: consume from the left subtree, then the pivot, then the
    // right subtree.
    std::size_t removed = 0;
    auto [nl, dl] = delete_equal(std::move(t->l), e, cnt);
    removed += dl;
    const bool del_pivot = removed < cnt;
    if (del_pivot) ++removed;
    std::unique_ptr<Node> nr = std::move(t->r);
    if (removed < cnt) {
      auto [nr2, dr] = delete_equal(std::move(nr), e, cnt - removed);
      removed += dr;
      nr = std::move(nr2);
    }
    if (del_pivot) {
      return {join2(std::move(nl), std::move(nr)), removed};
    }
    return {join(std::move(nl), t->pivot, std::move(nr)), removed};
  }

  // -------------------------------------------------------------------
  // Queries (R-tree style: bounding-box pruning only)
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      for (const auto& e : t->items) {
        buf.offer(squared_distance(e.pt, q), e.pt);
      }
      return;
    }
    buf.offer(squared_distance(t->pivot.pt, q), t->pivot.pt);
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (!c) continue;
      if (buf.full() && dist[i] >= buf.worst()) continue;
      knn_rec(c, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& e : t->items) c += query.contains(e.pt) ? 1 : 0;
      return c;
    }
    std::size_t total = query.contains(t->pivot.pt) ? 1 : 0;
    if (t->l) total += count_rec(t->l.get(), query);
    if (t->r) total += count_rec(t->r.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (!api::sink_accept(sink, e.pt)) return false;
      }
      return true;
    }
    if (t->l && !visit_all_rec(t->l.get(), sink)) return false;
    if (!api::sink_accept(sink, t->pivot.pt)) return false;
    return !t->r || visit_all_rec(t->r.get(), sink);
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (query.contains(e.pt) && !api::sink_accept(sink, e.pt)) {
          return false;
        }
      }
      return true;
    }
    if (query.contains(t->pivot.pt) && !api::sink_accept(sink, t->pivot.pt)) {
      return false;
    }
    if (t->l && !range_visit_rec(t->l.get(), query, sink)) return false;
    return !t->r || range_visit_rec(t->r.get(), query, sink);
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& e : t->items) {
        c += squared_distance(e.pt, q) <= r2 ? 1 : 0;
      }
      return c;
    }
    std::size_t total = squared_distance(t->pivot.pt, q) <= r2 ? 1 : 0;
    if (t->l) total += ball_count_rec(t->l.get(), q, r2);
    if (t->r) total += ball_count_rec(t->r.get(), q, r2);
    return total;
  }

  // Parallel counterparts: binary fork over subtrees above the grain; the
  // sequential recursion (which re-applies the same pruning) handles the
  // rest. The sink's own false return covers mid-leaf stops.
  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    if (query.contains(t->pivot.pt)) sink(t->pivot.pt);
    par_do([&] { if (t->l) range_visit_par_rec(t->l.get(), query, sink); },
           [&] { if (t->r) range_visit_par_rec(t->r.get(), query, sink); });
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    if (squared_distance(t->pivot.pt, q) <= r2) sink(t->pivot.pt);
    par_do([&] { if (t->l) ball_visit_par_rec(t->l.get(), q, r2, sink); },
           [&] { if (t->r) ball_visit_par_rec(t->r.get(), q, r2, sink); });
  }

  // Parallel kNN: the bound is re-read at every node (it tightens while
  // tasks run, including a stolen task's delay), so forked subtrees keep
  // pruning against the best radius found anywhere. Forking both children
  // gives up the strict nearest-first visit order; the shared bound is
  // what keeps the extra exploration shallow.
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      for (const auto& e : t->items) {
        buf.offer(squared_distance(e.pt, q), e.pt);
      }
      return;
    }
    buf.offer(squared_distance(t->pivot.pt, q), t->pivot.pt);
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    if (t->count >= fork_grain() && kids[0] && kids[1] &&
        dist[0] < buf.bound() && dist[1] < buf.bound()) {
      par_do([&] { knn_par_rec(kids[order[0]], q, buf); },
             [&] { knn_par_rec(kids[order[1]], q, buf); });
      return;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (c == nullptr || dist[i] >= buf.bound()) continue;
      knn_par_rec(c, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (squared_distance(e.pt, q) <= r2 &&
            !api::sink_accept(sink, e.pt)) {
          return false;
        }
      }
      return true;
    }
    if (squared_distance(t->pivot.pt, q) <= r2 &&
        !api::sink_accept(sink, t->pivot.pt)) {
      return false;
    }
    if (t->l && !ball_visit_rec(t->l.get(), q, r2, sink)) return false;
    return !t->r || ball_visit_rec(t->r.get(), q, r2, sink);
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    return 1 + std::max(height_rec(t->l.get()), height_rec(t->r.get()));
  }

  static void leaf_stats(const Node* t, std::size_t& leaves,
                         std::size_t& unsorted) {
    if (!t) return;
    if (t->leaf) {
      ++leaves;
      unsorted += t->sorted ? 0 : 1;
      return;
    }
    leaf_stats(t->l.get(), leaves, unsorted);
    leaf_stats(t->r.get(), leaves, unsorted);
  }

  // -------------------------------------------------------------------
  // Invariant checking
  // -------------------------------------------------------------------

  void check_rec(const Node* t, std::vector<Entry>& inorder) const {
    if (t->leaf) {
      if (t->count != t->items.size()) {
        throw std::logic_error("spac: leaf count mismatch");
      }
      if (t->count == 0) throw std::logic_error("spac: empty leaf node");
      if (t->count > params_.leaf_wrap) {
        throw std::logic_error("spac: leaf exceeds wrap");
      }
      if (!relaxed() && !t->sorted) {
        throw std::logic_error("spac: unsorted leaf under total order");
      }
      if (t->sorted &&
          !std::is_sorted(t->items.begin(), t->items.end(), entry_less)) {
        throw std::logic_error("spac: leaf marked sorted but is not");
      }
      box_t bb = box_t::empty();
      for (const auto& e : t->items) {
        bb.expand(e.pt);
        if (e.code != Codec::encode(e.pt)) {
          throw std::logic_error("spac: stale cached code");
        }
      }
      if (!(bb == t->bbox)) throw std::logic_error("spac: leaf bbox not tight");
      const std::size_t lo = inorder.size();
      inorder.insert(inorder.end(), t->items.begin(), t->items.end());
      std::sort(inorder.begin() + static_cast<std::ptrdiff_t>(lo),
                inorder.end(), entry_less);
      return;
    }
    if (t->count != count(t->l.get()) + count(t->r.get()) + 1) {
      throw std::logic_error("spac: interior count mismatch");
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("spac: interior at or below leaf wrap");
    }
    if (!balanced_pair(count(t->l.get()), count(t->r.get()))) {
      throw std::logic_error("spac: weight balance violated");
    }
    box_t bb = box_t::empty();
    if (t->l) bb.merge(t->l->bbox);
    if (t->r) bb.merge(t->r->bbox);
    bb.expand(t->pivot.pt);
    if (!(bb == t->bbox)) throw std::logic_error("spac: interior bbox mismatch");
    if (t->pivot.code != Codec::encode(t->pivot.pt)) {
      throw std::logic_error("spac: stale pivot code");
    }
    if (t->l) check_rec(t->l.get(), inorder);
    inorder.push_back(t->pivot);
    if (t->r) check_rec(t->r.get(), inorder);
  }
};

// Paper-named instantiations.
template <typename Coord, int D>
using SpacHTree = SpacTree<Coord, D, sfc::HilbertCodec<Coord, D>>;
template <typename Coord, int D>
using SpacZTree = SpacTree<Coord, D, sfc::MortonCodec<Coord, D>>;

using SpacHTree2 = SpacHTree<std::int64_t, 2>;
using SpacZTree2 = SpacZTree<std::int64_t, 2>;
using SpacHTree3 = SpacHTree<std::int64_t, 3>;
using SpacZTree3 = SpacZTree<std::int64_t, 3>;

}  // namespace psi
