// PSI-Lib arena layer: self-relative offset pointers.
//
// An offset_ptr<T> stores the signed byte distance from *its own address*
// to the pointee instead of an absolute address. Because the distance
// between two objects inside one contiguous arena is invariant under
// relocation of the whole arena, a block of nodes linked with offset_ptrs
// can be memcpy'd to any other base address (another mapping, another
// process, a checkpoint file read back at restart) and every link still
// resolves — no pointer swizzling pass, no fix-up table. This is the
// property the relocatable shard arenas (chunk_pool.h) are built on, and
// it follows the relative_ptr idiom of the parallel_octree exemplar.
//
// Semantics are boost::interprocess-like:
//   * copying an offset_ptr re-derives the offset from the *destination*
//     address, so a stack-local copy of an in-arena link still points at
//     the same object (copies are NOT bitwise — only whole-arena memcpy
//     relocation is, which never runs constructors);
//   * 0 encodes null. A link therefore cannot target its own storage
//     address; tree links never do (a child pointer never aims at itself).
//
// Validity contract: both the offset_ptr and its pointee must live inside
// the same relocatable block. Linking across arenas (or to stack/heap
// objects) compiles but breaks on relocation — the tree backends keep all
// in-arena links as offset_ptr and use raw T* only for transient
// traversal state that never outlives an operation.

#pragma once

#include <cstddef>
#include <cstdint>

namespace psi::arena {

template <typename T>
class offset_ptr {
 public:
  offset_ptr() = default;
  offset_ptr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  offset_ptr(const offset_ptr& o) { set(o.get()); }
  offset_ptr& operator=(const offset_ptr& o) {
    set(o.get());
    return *this;
  }
  offset_ptr& operator=(T* p) {
    set(p);
    return *this;
  }
  offset_ptr& operator=(std::nullptr_t) {
    off_ = 0;
    return *this;
  }

  T* get() const {
    return off_ == 0 ? nullptr
                     : reinterpret_cast<T*>(
                           const_cast<char*>(
                               reinterpret_cast<const char*>(this)) +
                           off_);
  }
  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }
  explicit operator bool() const { return off_ != 0; }
  bool operator==(std::nullptr_t) const { return off_ == 0; }

  void set(T* p) {
    off_ = p == nullptr ? 0
                        : reinterpret_cast<const char*>(p) -
                              reinterpret_cast<const char*>(this);
  }

 private:
  std::int64_t off_ = 0;  // 0 = null (a link never targets its own address)
};

}  // namespace psi::arena
