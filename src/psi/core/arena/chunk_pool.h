// PSI-Lib arena layer: the per-shard relocatable chunk pool.
//
// A ChunkPool is one contiguous anonymous mapping (reserved up-front with
// MAP_NORESERVE, so untouched pages cost nothing) that hands out 8-byte-
// aligned blocks by atomic bump allocation, with exact-size freelists for
// reuse. Because the region is contiguous and never moves while live, the
// tree backends can link blocks with self-relative offset_ptr's
// (offset_ptr.h) and the *whole* pool becomes trivially relocatable:
//
//   serialize() = small header + one memcpy of the used prefix + CRC32
//   adopt()     = validate, map a fresh region, one memcpy back
//
// which is what turns shard handoff (net/node.h) and checkpoint restart
// (durability/checkpoint.h) into O(bytes) instead of O(points x rebuild).
// The design follows the parallel_octree exemplar's chunk_pool +
// relative_ptr pair; the fixed reservation is the stepping stone to the
// ROADMAP's mmap-backed persistent shards (same image, file-backed).
//
// Allocation contract:
//   * alloc(bytes)/free(p, bytes) are thread-safe (parallel tree builds
//     allocate from many workers): bump is a relaxed fetch_add, freelists
//     are mutex-guarded and skipped entirely until the first free.
//   * free() requires the caller to pass the allocation size (the trees
//     know their node sizes); blocks larger than kMaxSmallBytes are
//     dropped on free — bounded waste, reclaimed wholesale by reset().
//   * serialize()/adopt()/reset() are NOT thread-safe: the caller must
//     quiesce mutators first (the service layer already serialises them
//     behind its commit/handoff locks).
//   * the reservation is fixed: exhausting it throws std::bad_alloc.
//     reserve_bytes is a virtual-memory cap, not a physical cost — size it
//     generously (SpacParams::arena_reserve / ZdParams::arena_reserve).
//
// Offset 0 is never handed out (the bump starts at kBumpBase), so 0 can
// encode null both in offset_ptr links and in the base-relative offsets
// stored in the image header (root slot, freelist heads).
//
// Image layout (little-endian, version 1):
//   [u32 magic "PSIA"][u32 version][u64 used][u64 user0][u64 user1]
//   [u64 freelist_heads[kNumClasses]]  base-relative, 0 = empty
//   [used bytes: raw copy of the pool prefix]
//   [u32 crc32 over everything above]
// Freelist next-links live in the first 8 bytes of each free block as
// base-relative offsets, so they ride along inside the raw copy.

#pragma once

#include <sys/mman.h>

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace psi::arena {

inline constexpr std::uint32_t kImageMagic = 0x50534941;  // "PSIA"
inline constexpr std::uint32_t kImageVersion = 1;

// IEEE CRC32 (zip/zlib polynomial), slice-by-8. Inline here so the core
// layer does not depend on the durability subsystem's copy (wal.cpp) —
// and unlike that copy (which frames small WAL records and manifests),
// this one checksums multi-megabyte arena images on every serialize and
// adopt, so it processes 8 bytes per step through 8 derived tables
// instead of byte-at-a-time (~4-5x on the image-sized inputs that
// dominate checkpoint and handoff cost).
namespace detail {
// tables[0] is the classic byte table; tables[k][b] advances byte b
// through k additional zero bytes, letting 8 input bytes fold into the
// running CRC with 8 independent lookups per iteration.
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[k][i] = c;
      }
    }
    return t;
  }();
  return tables;
}
}  // namespace detail

inline std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto& t = detail::crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  // Byte-composed little-endian loads keep the function well-defined on
  // any alignment and endianness; compilers fold them to plain loads.
  while (n >= 8) {
    const std::uint32_t a =
        (std::uint32_t{data[0]} | std::uint32_t{data[1]} << 8 |
         std::uint32_t{data[2]} << 16 | std::uint32_t{data[3]} << 24) ^
        c;
    const std::uint32_t b =
        std::uint32_t{data[4]} | std::uint32_t{data[5]} << 8 |
        std::uint32_t{data[6]} << 16 | std::uint32_t{data[7]} << 24;
    c = t[7][a & 0xFF] ^ t[6][(a >> 8) & 0xFF] ^ t[5][(a >> 16) & 0xFF] ^
        t[4][a >> 24] ^ t[3][b & 0xFF] ^ t[2][(b >> 8) & 0xFF] ^
        t[1][(b >> 16) & 0xFF] ^ t[0][b >> 24];
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *data++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

class ChunkPool {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;
  static constexpr std::size_t kAlign = 8;
  // First handed-out offset: keeps 0 free to mean null and the first
  // block cache-line aligned.
  static constexpr std::size_t kBumpBase = 64;
  // Blocks up to this size go through exact-size freelists; larger frees
  // are dropped (bounded waste until the next reset()/build()).
  static constexpr std::size_t kMaxSmallBytes = 4096;
  static constexpr std::size_t kNumClasses = kMaxSmallBytes / kAlign;
  static constexpr std::size_t kNumUserSlots = 2;
  static constexpr std::size_t kDefaultReserve = 256ull * 1024 * 1024;

  static constexpr std::size_t kHeaderBytes =
      4 + 4 + 8 + 8 * kNumUserSlots + 8 * kNumClasses;

  explicit ChunkPool(std::size_t reserve_bytes = kDefaultReserve) {
    map(reserve_bytes);
  }

  ~ChunkPool() { unmap(); }

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  ChunkPool(ChunkPool&& o) noexcept
      : base_(o.base_),
        reserve_(o.reserve_),
        bump_(o.bump_.load(std::memory_order_relaxed)),
        any_freed_(o.any_freed_.load(std::memory_order_relaxed)),
        heads_(o.heads_),
        users_(o.users_) {
    o.base_ = nullptr;
    o.reserve_ = 0;
  }

  ChunkPool& operator=(ChunkPool&& o) noexcept {
    if (this != &o) {
      unmap();
      base_ = o.base_;
      reserve_ = o.reserve_;
      bump_.store(o.bump_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      any_freed_.store(o.any_freed_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      heads_ = o.heads_;
      users_ = o.users_;
      o.base_ = nullptr;
      o.reserve_ = 0;
    }
    return *this;
  }

  // -------------------------------------------------------------------
  // Allocation (thread-safe)
  // -------------------------------------------------------------------

  void* alloc(std::size_t bytes) {
    const std::size_t sz = round_up(bytes);
    if (sz <= kMaxSmallBytes &&
        any_freed_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> g(free_mu_);
      std::uint64_t& head = heads_[sz / kAlign - 1];
      if (head != 0) {
        std::byte* p = base_ + head;
        std::memcpy(&head, p, sizeof(std::uint64_t));
        return p;
      }
    }
    const std::uint64_t off =
        bump_.fetch_add(sz, std::memory_order_relaxed);
    if (off + sz > reserve_) {
      throw std::bad_alloc();  // reservation exhausted; see header comment
    }
    return base_ + off;
  }

  void free(void* p, std::size_t bytes) {
    const std::size_t sz = round_up(bytes);
    if (sz > kMaxSmallBytes) return;  // dropped: reclaimed by reset()
    const std::uint64_t off =
        static_cast<std::uint64_t>(static_cast<std::byte*>(p) - base_);
    std::lock_guard<std::mutex> g(free_mu_);
    std::uint64_t& head = heads_[sz / kAlign - 1];
    std::memcpy(p, &head, sizeof(std::uint64_t));
    head = off;
    any_freed_.store(true, std::memory_order_release);
  }

  // Typed helpers. T must be trivially destructible: the pool reclaims
  // memory wholesale (reset()/adopt()/destruction) without running
  // destructors.
  template <typename T, typename... Args>
  T* create(std::size_t trailing_bytes, Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kAlign);
    void* p = alloc(sizeof(T) + trailing_bytes);
    return new (p) T(std::forward<Args>(args)...);
  }

  // -------------------------------------------------------------------
  // Addressing
  // -------------------------------------------------------------------

  std::byte* base() { return base_; }
  const std::byte* base() const { return base_; }

  std::uint64_t to_offset(const void* p) const {
    return p == nullptr
               ? 0
               : static_cast<std::uint64_t>(
                     static_cast<const std::byte*>(p) - base_);
  }

  template <typename T>
  T* from_offset(std::uint64_t off) const {
    return off == 0 ? nullptr
                    : reinterpret_cast<T*>(
                          const_cast<std::byte*>(base_) + off);
  }

  // -------------------------------------------------------------------
  // Accounting / user metadata
  // -------------------------------------------------------------------

  std::size_t used_bytes() const {
    return bump_.load(std::memory_order_relaxed);
  }
  std::size_t reserved_bytes() const { return reserve_; }
  std::size_t chunks() const {
    return (used_bytes() + kChunkBytes - 1) / kChunkBytes;
  }

  // Two u64 slots serialized with the image; the owning tree stores its
  // root offset and a parameter fingerprint here.
  std::uint64_t user(std::size_t i) const { return users_[i]; }
  void set_user(std::size_t i, std::uint64_t v) { users_[i] = v; }

  // Back to empty; keeps the mapping (and its MADV_DONTNEED-able pages).
  void reset() {
    bump_.store(kBumpBase, std::memory_order_relaxed);
    any_freed_.store(false, std::memory_order_relaxed);
    heads_.fill(0);
    users_.fill(0);
  }

  // -------------------------------------------------------------------
  // Relocation image
  // -------------------------------------------------------------------

  std::vector<std::uint8_t> serialize() const {
    const std::uint64_t used = used_bytes();
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + used + 4);
    put_u32(out, kImageMagic);
    put_u32(out, kImageVersion);
    put_u64(out, used);
    for (std::size_t i = 0; i < kNumUserSlots; ++i) put_u64(out, users_[i]);
    for (std::size_t i = 0; i < kNumClasses; ++i) put_u64(out, heads_[i]);
    const std::size_t payload_at = out.size();
    out.resize(payload_at + used);
    std::memcpy(out.data() + payload_at, base_, used);
    put_u32(out, crc32(out.data(), out.size()));
    return out;
  }

  // Structural check without allocating or mutating: magic, version,
  // framing lengths, CRC, and in-range freelist heads. Returns the
  // failure reason or nullptr when the image is sound.
  static const char* validate_image(const std::uint8_t* data,
                                    std::size_t n) {
    if (n < kHeaderBytes + 4) return "image shorter than header";
    if (get_u32(data) != kImageMagic) return "bad arena magic";
    if (get_u32(data + 4) != kImageVersion) return "bad arena version";
    const std::uint64_t used = get_u64(data + 8);
    if (used < kBumpBase || used % kAlign != 0) return "bad used length";
    if (n != kHeaderBytes + used + 4) {
      return "image length disagrees with header";
    }
    if (crc32(data, n - 4) != get_u32(data + n - 4)) {
      return "arena image CRC mismatch";
    }
    const std::uint8_t* heads = data + 4 + 4 + 8 + 8 * kNumUserSlots;
    for (std::size_t i = 0; i < kNumClasses; ++i) {
      const std::uint64_t h = get_u64(heads + 8 * i);
      if (h != 0 && (h % kAlign != 0 || h + kAlign > used)) {
        return "freelist head out of range";
      }
    }
    return nullptr;
  }

  // Replace the pool contents with a serialized image. Throws
  // std::runtime_error (with the validate_image reason) on a corrupt
  // image, leaving the pool untouched — corrupt bytes are rejected
  // *before* anything is installed.
  void adopt(const std::uint8_t* data, std::size_t n) {
    if (const char* err = validate_image(data, n)) {
      throw std::runtime_error(std::string("arena: ") + err);
    }
    const std::uint64_t used = get_u64(data + 8);
    if (used > reserve_) {
      // Re-reserve just enough: caller asked for a smaller pool than the
      // image needs.
      unmap();
      map(round_up_chunk(used));
    }
    const std::uint8_t* p = data + 4 + 4 + 8;
    for (std::size_t i = 0; i < kNumUserSlots; ++i, p += 8) {
      users_[i] = get_u64(p);
    }
    for (std::size_t i = 0; i < kNumClasses; ++i, p += 8) {
      heads_[i] = get_u64(p);
    }
    std::memcpy(base_, p, used);
    bump_.store(used, std::memory_order_relaxed);
    bool any = false;
    for (const std::uint64_t h : heads_) any = any || h != 0;
    any_freed_.store(any, std::memory_order_relaxed);
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return bytes < kAlign ? kAlign : (bytes + kAlign - 1) & ~(kAlign - 1);
  }
  static std::size_t round_up_chunk(std::size_t bytes) {
    return (bytes + kChunkBytes - 1) / kChunkBytes * kChunkBytes;
  }

  void map(std::size_t reserve_bytes) {
    reserve_ = round_up_chunk(
        reserve_bytes < kChunkBytes ? kChunkBytes : reserve_bytes);
    void* p = ::mmap(nullptr, reserve_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
      throw std::runtime_error("arena: mmap reservation failed");
    }
    base_ = static_cast<std::byte*>(p);
    bump_.store(kBumpBase, std::memory_order_relaxed);
    any_freed_.store(false, std::memory_order_relaxed);
    heads_.fill(0);
    users_.fill(0);
  }

  void unmap() {
    if (base_ != nullptr) {
      ::munmap(base_, reserve_);
      base_ = nullptr;
      reserve_ = 0;
    }
  }

  static void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  static void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  static std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    return v;
  }
  static std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  }

  std::byte* base_ = nullptr;
  std::size_t reserve_ = 0;
  std::atomic<std::uint64_t> bump_{kBumpBase};
  // False until the first free(): lets the (fully parallel) build phase
  // bump-allocate without ever touching the freelist mutex.
  std::atomic<bool> any_freed_{false};
  std::mutex free_mu_;
  std::array<std::uint64_t, kNumClasses> heads_{};
  std::array<std::uint64_t, kNumUserSlots> users_{};
};

}  // namespace psi::arena
