// PSI-Lib: index diagnostics.
//
// Summary statistics computed through the public interface (so they work
// for every index uniformly): size, height, and an estimate of structural
// quality — the average depth at which points are found, probed via kNN
// visit counts is index-internal, so instead we expose what the paper's
// discussion actually uses: size, height, and the height-to-optimal ratio
// (1.0 = perfectly balanced binary/2^D-ary tree of that size).

#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>
#include <string>

namespace psi {

struct IndexStats {
  std::size_t size = 0;
  std::size_t height = 0;
  // height / ceil(log_fanout(size / leaf_wrap)) — 1.0 is perfectly packed;
  // larger means deeper than a balanced tree of that arity would be.
  double height_ratio = 0.0;

  friend std::ostream& operator<<(std::ostream& os, const IndexStats& s) {
    return os << "{n=" << s.size << ", height=" << s.height
              << ", height/opt=" << s.height_ratio << '}';
  }
};

// Works for any index exposing size() and height(). `fanout` is the tree
// arity (2 for BSTs/kd-trees, 2^D for orth-trees); `leaf_wrap` the leaf
// capacity used to compute the optimal height.
template <typename Index>
IndexStats index_stats(const Index& index, double fanout,
                       double leaf_wrap) {
  IndexStats s;
  s.size = index.size();
  s.height = index.height();
  if (s.size > leaf_wrap && fanout > 1) {
    const double optimal =
        std::ceil(std::log(static_cast<double>(s.size) / leaf_wrap) /
                  std::log(fanout)) +
        1;
    s.height_ratio = static_cast<double>(s.height) / optimal;
  } else {
    s.height_ratio = s.height <= 1 ? 1.0 : static_cast<double>(s.height);
  }
  return s;
}

}  // namespace psi
