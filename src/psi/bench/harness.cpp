#include "psi/bench/harness.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace psi::bench {

double timed(const std::function<void()>& setup,
             const std::function<void()>& body, int repeats) {
  // Warm-up run.
  if (setup) setup();
  body();
  double total = 0;
  for (int r = 0; r < repeats; ++r) {
    if (setup) setup();
    Timer t;
    body();
    total += t.seconds();
  }
  return total / repeats;
}

double timed(const std::function<void()>& body, int repeats) {
  return timed(std::function<void()>{}, body, repeats);
}

namespace {
std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* s = std::getenv(name)) {
    const long long v = std::atoll(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}
}  // namespace

std::size_t bench_n(std::size_t fallback) { return env_size("PSI_BENCH_N", fallback); }
std::size_t bench_queries(std::size_t fallback) {
  return env_size("PSI_BENCH_Q", fallback);
}
int bench_repeats(int fallback) {
  return static_cast<int>(env_size("PSI_BENCH_REPEATS",
                                   static_cast<std::size_t>(fallback)));
}

Table::Table(std::vector<std::string> headers, int col_width)
    : width_(col_width), cols_(headers.size()) {
  std::ostringstream os;
  for (const auto& h : headers) {
    os << std::setw(width_) << h;
  }
  std::cout << os.str() << '\n';
  std::cout << std::string(cols_ * static_cast<std::size_t>(width_), '-') << '\n';
}

void Table::row(const std::vector<std::string>& cells) {
  std::ostringstream os;
  for (const auto& c : cells) {
    os << std::setw(width_) << c;
  }
  std::cout << os.str() << '\n';
}

std::string Table::fmt(double seconds) {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat << seconds;
  return os.str();
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double acc = 0;
  for (double x : xs) acc += std::log(std::max(x, 1e-12));
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace psi::bench
