// PSI-Lib: shared benchmark harness.
//
// Paper protocol (Sec 5): report the average of `repeats` runs after one
// warm-up run. Benches print fixed-width tables whose rows match the paper's
// tables/figures so EXPERIMENTS.md can record paper-vs-measured shape.

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace psi::bench {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Run `body` (after `setup` each time) `repeats` times plus one warm-up;
// returns mean seconds. `setup` may be empty.
double timed(const std::function<void()>& setup,
             const std::function<void()>& body, int repeats = 3);

// Convenience without per-run setup.
double timed(const std::function<void()>& body, int repeats = 3);

// Environment knobs shared by the bench binaries.
std::size_t bench_n(std::size_t fallback);        // PSI_BENCH_N
std::size_t bench_queries(std::size_t fallback);  // PSI_BENCH_Q
int bench_repeats(int fallback);                  // PSI_BENCH_REPEATS

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 11);
  void row(const std::vector<std::string>& cells);
  static std::string fmt(double seconds);  // 4 significant digits

 private:
  int width_;
  std::size_t cols_;
};

// Geometric mean helper for Fig 8.
double geomean(const std::vector<double>& xs);

}  // namespace psi::bench
