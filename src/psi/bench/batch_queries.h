// PSI-Lib: parallel bulk-query helpers.
//
// The paper runs query sets "in parallel" (Sec 5.1); these helpers wrap
// that pattern for any index with the standard query interface, so callers
// and benches don't hand-roll the parallel_for each time.

#pragma once

#include <cstddef>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/parallel/scheduler.h"

namespace psi {

// k-NN for every query point; results[i] corresponds to queries[i].
template <typename Index, typename PointT>
std::vector<std::vector<PointT>> batch_knn(const Index& index,
                                           const std::vector<PointT>& queries,
                                           std::size_t k) {
  std::vector<std::vector<PointT>> out(queries.size());
  parallel_for(
      0, queries.size(), [&](std::size_t i) { out[i] = index.knn(queries[i], k); },
      1);
  return out;
}

template <typename Index, typename BoxT>
std::vector<std::size_t> batch_range_count(const Index& index,
                                           const std::vector<BoxT>& queries) {
  std::vector<std::size_t> out(queries.size());
  parallel_for(
      0, queries.size(),
      [&](std::size_t i) { out[i] = index.range_count(queries[i]); }, 1);
  return out;
}

template <typename Index, typename BoxT>
auto batch_range_list(const Index& index, const std::vector<BoxT>& queries) {
  using PointT = typename Index::point_t;
  std::vector<std::vector<PointT>> out(queries.size());
  parallel_for(
      0, queries.size(),
      [&](std::size_t i) { out[i] = index.range_list(queries[i]); }, 1);
  return out;
}

}  // namespace psi
