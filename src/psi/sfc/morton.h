// PSI-Lib: Morton (Z-order) curve encoding.
//
// Bit-interleaving via parallel-prefix magic masks (no BMI2 dependency).
// 2D: 32 bits per dimension -> 64-bit code.
// 3D: 21 bits per dimension -> 63-bit code.
// These are the precision limits the paper discusses in Sec 3 ("64-bit words
// suffice for 2D, 3D support is constrained to 21 bits per dimension").

#pragma once

#include <cstdint>

namespace psi::sfc {

// Spread the low 32 bits of x so there is one zero bit between consecutive
// bits: ...b3 0 b2 0 b1 0 b0.
constexpr std::uint64_t spread_bits_2d(std::uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

constexpr std::uint64_t compact_bits_2d(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return x;
}

// Spread the low 21 bits of x with two zero bits between consecutive bits.
constexpr std::uint64_t spread_bits_3d(std::uint64_t x) {
  x &= 0x1fffffULL;
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

constexpr std::uint64_t compact_bits_3d(std::uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x | (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x | (x >> 16)) & 0x1f00000000ffffULL;
  x = (x | (x >> 32)) & 0x1fffffULL;
  return x;
}

// code = y1 x1 y0 x0 ... (x contributes the low interleaved bit).
constexpr std::uint64_t morton2d(std::uint64_t x, std::uint64_t y) {
  return spread_bits_2d(x) | (spread_bits_2d(y) << 1);
}

constexpr void morton2d_decode(std::uint64_t code, std::uint64_t& x,
                               std::uint64_t& y) {
  x = compact_bits_2d(code);
  y = compact_bits_2d(code >> 1);
}

constexpr std::uint64_t morton3d(std::uint64_t x, std::uint64_t y,
                                 std::uint64_t z) {
  return spread_bits_3d(x) | (spread_bits_3d(y) << 1) | (spread_bits_3d(z) << 2);
}

constexpr void morton3d_decode(std::uint64_t code, std::uint64_t& x,
                               std::uint64_t& y, std::uint64_t& z) {
  x = compact_bits_3d(code);
  y = compact_bits_3d(code >> 1);
  z = compact_bits_3d(code >> 2);
}

}  // namespace psi::sfc
