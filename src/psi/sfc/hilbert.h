// PSI-Lib: Hilbert curve encoding (Skilling's transform).
//
// John Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707 (2004).
// AxesToTranspose converts D coordinates of b bits each into the "transposed"
// Hilbert representation; interleaving the transposed bits (most significant
// first) yields the scalar Hilbert index. Works for any D and b with
// D * b <= 64, which covers the paper's settings (2D: b=32; 3D: b=21 — the
// same precision limits as the Morton curve, Sec 3).
//
// The inverse (TransposeToAxes) is provided for tests: encode must be a
// bijection on the grid, and consecutive indexes must be grid neighbours
// (the locality property that makes Hilbert better than Morton for queries,
// Sec 5.1.3).

#pragma once

#include <array>
#include <cstdint>

namespace psi::sfc {

// Coordinates -> transposed Hilbert representation (in place).
//
// The conditionals of Skilling's formulation are rewritten with arithmetic
// masks: on random coordinates the original branches are ~50% mispredicted
// and dominate the encode cost (hundreds of cycles per point). The
// branchless form is bit-identical and several times faster.
template <int D>
constexpr void axes_to_transpose(std::array<std::uint64_t, D>& x, int bits) {
  const std::uint64_t m = std::uint64_t{1} << (bits - 1);
  // Inverse undo.
  for (int b = bits - 1; b > 0; --b) {
    const std::uint64_t p = (std::uint64_t{1} << b) - 1;
    for (int i = 0; i < D; ++i) {
      const std::size_t ii = static_cast<std::size_t>(i);
      // set = all-ones when bit b of x[i] is set, else zero.
      const std::uint64_t set = std::uint64_t{0} - ((x[ii] >> b) & 1u);
      // If set: x[0] ^= p. Else: exchange the low bits of x[0] and x[i].
      const std::uint64_t t = ((x[0] ^ x[ii]) & p) & ~set;
      x[0] ^= (p & set) | t;
      x[ii] ^= t;
    }
  }
  // Gray encode.
  for (int i = 1; i < D; ++i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  std::uint64_t t = 0;
  for (int b = bits - 1; b > 0; --b) {
    const std::uint64_t set = std::uint64_t{0} - ((x[D - 1] >> b) & 1u);
    t ^= ((std::uint64_t{1} << b) - 1) & set;
  }
  (void)m;
  for (int i = 0; i < D; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

// Transposed Hilbert representation -> coordinates (in place). Inverse of
// axes_to_transpose.
template <int D>
constexpr void transpose_to_axes(std::array<std::uint64_t, D>& x, int bits) {
  const std::uint64_t n = std::uint64_t{1} << bits;
  // Gray decode by H ^ (H/2).
  std::uint64_t t = x[D - 1] >> 1;
  for (int i = D - 1; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint64_t q = 2; q != n; q <<= 1) {
    const std::uint64_t p = q - 1;
    for (int i = D - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint64_t tt = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= tt;
        x[static_cast<std::size_t>(i)] ^= tt;
      }
    }
  }
}

// Interleave the transposed representation into a scalar index: bit j of
// axis i lands at position j*D + (D-1-i); axis 0 carries the most
// significant bit of each group (Skilling's convention).
template <int D>
constexpr std::uint64_t transpose_to_index(const std::array<std::uint64_t, D>& x,
                                           int bits) {
  std::uint64_t code = 0;
  for (int j = bits - 1; j >= 0; --j) {
    for (int i = 0; i < D; ++i) {
      code = (code << 1) | ((x[static_cast<std::size_t>(i)] >> j) & 1u);
    }
  }
  return code;
}

template <int D>
constexpr std::array<std::uint64_t, D> index_to_transpose(std::uint64_t code,
                                                          int bits) {
  std::array<std::uint64_t, D> x{};
  for (int j = bits - 1; j >= 0; --j) {
    for (int i = 0; i < D; ++i) {
      const int shift = j * D + (D - 1 - i);
      x[static_cast<std::size_t>(i)] =
          (x[static_cast<std::size_t>(i)] << 1) | ((code >> shift) & 1u);
    }
  }
  return x;
}

// Scalar Hilbert index of a D-dimensional point with `bits` bits/dimension.
template <int D>
constexpr std::uint64_t hilbert_encode(std::array<std::uint64_t, D> coords,
                                       int bits) {
  axes_to_transpose<D>(coords, bits);
  return transpose_to_index<D>(coords, bits);
}

// Fast 2D Hilbert index (the classic rotate-and-accumulate formulation,
// one quadrant per iteration). This traces a valid Hilbert curve whose
// orientation differs from the Skilling-transform convention above; the
// two must not be mixed on the same dataset. The codecs use this one for
// 2D because it is several times cheaper per point — the paper observes
// Hilbert codes cost only slightly more than Morton codes (Sec 5.1.1).
constexpr std::uint64_t hilbert2d_fast(std::uint64_t x, std::uint64_t y,
                                       int bits) {
  std::uint64_t d = 0;
  for (std::uint64_t s = std::uint64_t{1} << (bits - 1); s > 0; s >>= 1) {
    const std::uint64_t rx = (x & s) ? 1 : 0;
    const std::uint64_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant so the sub-curve is oriented canonically.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const std::uint64_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

// Table-driven 2D Hilbert encoder: identical curve to hilbert2d_fast, but
// processes 4 bits per dimension per step through a precomputed state
// machine (4 reachable orientations of the square), so a 32-bit/dim encode
// is 8 table lookups instead of 32 data-dependent branches. This is what
// makes Hilbert codes only slightly costlier than Morton codes, as the
// paper requires (Sec 5.1.1).
//
// Derivation: hilbert2d_fast's mutations (conditional invert-both + swap)
// compose into transforms T = (swap, invx, invy) of the remaining low bits;
// starting from the identity only 4 transforms are reachable. The chunk
// tables are generated at first use by running the 2-bit step rules.
namespace detail {

struct Hilbert2DTables {
  static constexpr int kStates = 4;
  // Indexed by [state][ (x_nibble << 4) | y_nibble ].
  std::uint8_t code[kStates][256];
  std::uint8_t next[kStates][256];

  Hilbert2DTables() {
    // Transform representation: bit0 = swap, bit1 = invx, bit2 = invy.
    // Discover reachable transforms and assign dense ids.
    int id_of[8];
    for (int& v : id_of) v = -1;
    int transforms[kStates];
    int num_states = 0;
    id_of[0] = num_states;
    transforms[num_states++] = 0;
    // One 1-bit step of the curve under transform t with raw bits (bx, by):
    // returns the emitted 2-bit code and the successor transform.
    auto step = [&](int t, int bx, int by, int& out_code) {
      const int swap = t & 1, invx = (t >> 1) & 1, invy = (t >> 2) & 1;
      const int wx = invx ^ (swap ? by : bx);
      const int wy = invy ^ (swap ? bx : by);
      out_code = wx ? (wy ? 2 : 3) : (wy ? 1 : 0);  // (3*rx)^ry
      int nt = t;
      if (wy == 0) {
        if (wx == 1) nt ^= 0b110;  // invert both (in working space)
        // swap: (swap, invx, invy) -> (!swap, invy, invx)
        const int ns = (nt & 1) ^ 1;
        const int nix = (nt >> 2) & 1;
        const int niy = (nt >> 1) & 1;
        nt = ns | (nix << 1) | (niy << 2);
      }
      return nt;
    };
    // BFS over states while filling the 4-bit chunk tables.
    for (int s = 0; s < num_states; ++s) {
      const int t0 = transforms[s];
      for (int key = 0; key < 256; ++key) {
        const int xn = key >> 4, yn = key & 0xf;
        int t = t0, acc = 0;
        for (int b = 3; b >= 0; --b) {
          int c = 0;
          t = step(t, (xn >> b) & 1, (yn >> b) & 1, c);
          acc = (acc << 2) | c;
        }
        if (id_of[t] < 0) {
          id_of[t] = num_states;
          transforms[num_states++] = t;
          if (num_states > kStates) {
            // Unreachable by construction; guard against derivation bugs.
            num_states = kStates;
          }
        }
        code[s][key] = static_cast<std::uint8_t>(acc);
        next[s][key] = static_cast<std::uint8_t>(id_of[t]);
      }
    }
  }
};

inline const Hilbert2DTables& hilbert2d_tables() {
  static const Hilbert2DTables tables;
  return tables;
}

}  // namespace detail

// 8 chunked steps of 4 bits/dimension: equivalent to
// hilbert2d_fast(x, y, 32).
inline std::uint64_t hilbert2d_lut(std::uint64_t x, std::uint64_t y) {
  const detail::Hilbert2DTables& t = detail::hilbert2d_tables();
  std::uint64_t codeacc = 0;
  std::uint32_t state = 0;
  for (int chunk = 7; chunk >= 0; --chunk) {
    const std::uint32_t key =
        (((x >> (4 * chunk)) & 0xf) << 4) | ((y >> (4 * chunk)) & 0xf);
    codeacc = (codeacc << 8) | t.code[state][key];
    state = t.next[state][key];
  }
  return codeacc;
}

// Inverse of hilbert2d_fast (for tests).
constexpr void hilbert2d_fast_decode(std::uint64_t d, int bits,
                                     std::uint64_t& x, std::uint64_t& y) {
  x = 0;
  y = 0;
  std::uint64_t t = d;
  for (std::uint64_t s = 1; s < (std::uint64_t{1} << bits); s <<= 1) {
    const std::uint64_t rx = (t / 2) & 1;
    const std::uint64_t ry = (t ^ rx) & 1;
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const std::uint64_t tmp = x;
      x = y;
      y = tmp;
    }
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
}

// Inverse: Hilbert index -> coordinates. Used by tests.
template <int D>
constexpr std::array<std::uint64_t, D> hilbert_decode(std::uint64_t code,
                                                      int bits) {
  std::array<std::uint64_t, D> x = index_to_transpose<D>(code, bits);
  transpose_to_axes<D>(x, bits);
  return x;
}

}  // namespace psi::sfc
