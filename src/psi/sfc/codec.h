// PSI-Lib: point -> SFC code codecs.
//
// A Codec maps a point with non-negative integer coordinates to a 64-bit
// code whose order along the space-filling curve is the code's integer
// order. The SFC-based indexes (SPaC-tree, Zd-tree, CPAM baseline) are
// templated on a codec; the P-Orth tree uses none (its point of the paper).
//
// Precision: bits-per-dimension = 64 / D (2D: 32 bits, 3D: 21 bits), the
// limits discussed in paper Sec 3. Coordinates outside [0, 2^bits) are
// masked; callers (the data generators and loaders) are responsible for
// scaling into range, as the paper does for its 3D datasets.

#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "psi/geometry/point.h"
#include "psi/sfc/hilbert.h"
#include "psi/sfc/morton.h"

namespace psi::sfc {

template <int D>
constexpr int bits_per_dim() {
  return 64 / D;
}

template <typename Coord, int D>
constexpr std::array<std::uint64_t, D> to_unsigned(const Point<Coord, D>& p) {
  constexpr std::uint64_t mask =
      (bits_per_dim<D>() == 64) ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << bits_per_dim<D>()) - 1);
  std::array<std::uint64_t, D> u{};
  for (int d = 0; d < D; ++d) {
    assert(p[d] >= 0 && "SFC codecs require non-negative coordinates");
    u[static_cast<std::size_t>(d)] = static_cast<std::uint64_t>(p[d]) & mask;
  }
  return u;
}

template <typename Coord, int D>
struct MortonCodec {
  using point_t = Point<Coord, D>;
  static constexpr const char* name() { return "Z"; }

  static constexpr std::uint64_t encode(const point_t& p) {
    const auto u = to_unsigned(p);
    if constexpr (D == 2) {
      return morton2d(u[0], u[1]);
    } else if constexpr (D == 3) {
      return morton3d(u[0], u[1], u[2]);
    } else {
      // Generic bit-interleave for other dimensions.
      constexpr int bits = bits_per_dim<D>();
      std::uint64_t code = 0;
      for (int j = bits - 1; j >= 0; --j) {
        for (int i = 0; i < D; ++i) {
          code = (code << 1) |
                 ((u[static_cast<std::size_t>(i)] >> j) & std::uint64_t{1});
        }
      }
      return code;
    }
  }
};

template <typename Coord, int D>
struct HilbertCodec {
  using point_t = Point<Coord, D>;
  static constexpr const char* name() { return "H"; }

  static std::uint64_t encode(const point_t& p) {
    const auto u = to_unsigned(p);
    if constexpr (D == 2) {
      return hilbert2d_lut(u[0], u[1]);
    } else {
      return hilbert_encode<D>(u, bits_per_dim<D>());
    }
  }
};

}  // namespace psi::sfc
