// PSI-Lib: Log-tree and BHL-tree baselines (Yesantharao, Wang, Dhulipala,
// Shun — "Parallel Batch-Dynamic kd-Trees", 2021), the two remaining data
// points of the paper's Fig 8 (the paper estimates them from the Pkd-tree
// paper; we implement them so the tradeoff chart is fully measured).
//
//  * BhlTree — a static parallel kd-tree that handles a batch update by
//    rebuilding from scratch over the union/difference:
//    O((n+m) log (n+m)) work per batch, but the best possible tree quality
//    (always freshly balanced).
//  * LogTree — the logarithmic method: a collection of O(log n) static
//    kd-trees with geometrically increasing sizes. A batch insertion
//    builds a tree over the batch and then merges (rebuilds) equal-level
//    trees like binary-counter carries, giving O(m log² n) amortised work
//    without touching the large trees most of the time. Deletions erase
//    points in place inside the component trees; a component whose live
//    size falls below half its built size is rebuilt at its proper level.
//    Queries must consult every component, which is exactly the query
//    overhead the paper holds against the logarithmic method (Sec 2.3).
//
// Both reuse the Pkd-tree as the static kd-tree component.

#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "psi/api/query.h"
#include "psi/baselines/brute_force.h"
#include "psi/baselines/pkd_tree.h"
#include "psi/geometry/knn_buffer.h"

namespace psi {

// ---------------------------------------------------------------------------
// BHL-tree: rebuild-on-update static kd-tree
// ---------------------------------------------------------------------------

template <typename Coord, int D>
class BhlTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  explicit BhlTree(PkdParams params = {}) : params_(params), tree_(params) {}

  void build(std::vector<point_t> pts) { tree_.build(std::move(pts)); }

  void batch_insert(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    std::vector<point_t> all = tree_.flatten();
    all.insert(all.end(), pts.begin(), pts.end());
    tree_.build(std::move(all));
  }

  void batch_delete(const std::vector<point_t>& pts) {
    if (pts.empty() || tree_.empty()) return;
    // Remove one instance per batch element, then rebuild from scratch
    // (the BHL-tree's defining O((n+m) log(n+m)) behaviour).
    tree_.batch_delete(pts);
    tree_.build(tree_.flatten());
  }

  void clear() { tree_.clear(); }

  std::size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }
  box_t bounds() const { return tree_.bounds(); }
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    return tree_.knn(q, k);
  }
  std::size_t range_count(const box_t& b) const { return tree_.range_count(b); }
  std::vector<point_t> range_list(const box_t& b) const {
    return tree_.range_list(b);
  }
  std::size_t ball_count(const point_t& q, double radius) const {
    return tree_.ball_count(q, radius);
  }
  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    return tree_.ball_list(q, radius);
  }
  template <typename Sink>
  void range_visit(const box_t& b, Sink&& sink) const {
    tree_.range_visit(b, sink);
  }
  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    tree_.ball_visit(q, radius, sink);
  }
  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    tree_.knn_visit(q, k, sink);
  }
  std::vector<point_t> flatten() const { return tree_.flatten(); }
  void check_invariants() const { tree_.check_invariants(); }

 private:
  PkdParams params_;
  PkdTree<Coord, D> tree_;
};

// ---------------------------------------------------------------------------
// Log-tree: the logarithmic method over static kd-trees
// ---------------------------------------------------------------------------

template <typename Coord, int D>
class LogTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  explicit LogTree(PkdParams params = {}) : params_(params) {}

  void build(const std::vector<point_t>& pts) {
    components_.clear();
    if (!pts.empty()) insert_component(pts);
  }

  void batch_insert(const std::vector<point_t>& pts) {
    if (!pts.empty()) insert_component(pts);
  }

  // NOTE: Log-tree treats the index as a *set* of distinct points (the
  // paper's datasets are deduplicated). Each distinct point lives in
  // exactly one component, so deleting the batch from every component
  // removes at most one instance per element.
  void batch_delete(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    for (auto& c : components_) {
      c.tree.batch_delete(pts);
    }
    compact();
  }

  void clear() { components_.clear(); }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& c : components_) total += c.tree.size();
    return total;
  }
  bool empty() const { return size() == 0; }

  box_t bounds() const {
    box_t b = box_t::empty();
    for (const auto& c : components_) b.merge(c.tree.bounds());
    return b;
  }

  // ---- streaming queries: every component is consulted (the logarithmic
  // method's query overhead, Sec 2.3); a sink stop aborts the whole scan.

  template <typename Sink>
  void range_visit(const box_t& b, Sink&& sink) const {
    api::StopGuard<Sink> guard{sink};
    for (const auto& c : components_) {
      if (!guard.alive) return;
      c.tree.range_visit(b, guard);
    }
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    api::StopGuard<Sink> guard{sink};
    for (const auto& c : components_) {
      if (!guard.alive) return;
      c.tree.ball_visit(q, radius, guard);
    }
  }

  // Merge the per-component k-NN candidate sets: the true k nearest are
  // among the k nearest of each component.
  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    for (const auto& c : components_) {
      c.tree.knn_visit(q, k, [&](const point_t& p) {
        buf.offer(squared_distance(p, q), p);
      });
    }
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& b) const {
    std::size_t total = 0;
    for (const auto& c : components_) total += c.tree.range_count(b);
    return total;
  }

  std::vector<point_t> range_list(const box_t& b) const {
    std::vector<point_t> out;
    range_visit(b, api::collect_into(out));
    return out;
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    std::size_t total = 0;
    for (const auto& c : components_) total += c.tree.ball_count(q, radius);
    return total;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    for (const auto& c : components_) {
      auto part = c.tree.flatten();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  std::size_t num_components() const { return components_.size(); }

  void check_invariants() const {
    for (const auto& c : components_) {
      c.tree.check_invariants();
      if (c.tree.size() > capacity_of(c.level)) {
        throw std::logic_error("logtree: component exceeds level capacity");
      }
    }
    // At most one component per level (binary-counter invariant).
    std::vector<int> levels;
    for (const auto& c : components_) levels.push_back(c.level);
    std::sort(levels.begin(), levels.end());
    if (std::adjacent_find(levels.begin(), levels.end()) != levels.end()) {
      throw std::logic_error("logtree: duplicate component level");
    }
  }

 private:
  struct Component {
    int level;
    std::size_t built_size;
    PkdTree<Coord, D> tree;
  };

  PkdParams params_;
  std::vector<Component> components_;

  static constexpr std::size_t kBase = 64;

  static std::size_t capacity_of(int level) {
    return kBase << static_cast<std::size_t>(level);
  }

  static int level_for(std::size_t n) {
    int level = 0;
    while (capacity_of(level) < n) ++level;
    return level;
  }

  // Add `pts` as a fresh component and perform binary-counter carries:
  // while another component of the same level exists, merge and rebuild.
  void insert_component(const std::vector<point_t>& pts) {
    std::vector<point_t> payload = pts;
    int level = level_for(payload.size());
    for (;;) {
      auto same = std::find_if(
          components_.begin(), components_.end(),
          [&](const Component& c) { return c.level == level; });
      if (same == components_.end()) break;
      auto merged_pts = same->tree.flatten();
      merged_pts.insert(merged_pts.end(), payload.begin(), payload.end());
      components_.erase(same);
      payload = std::move(merged_pts);
      level = std::max(level + 1, level_for(payload.size()));
    }
    Component c;
    c.level = level;
    c.built_size = payload.size();
    c.tree = PkdTree<Coord, D>(params_);
    c.tree.build(std::move(payload));
    components_.push_back(std::move(c));
  }

  // Rebuild components whose live size dropped below half their built
  // size, and re-carry them (keeps O(log n) components and query quality).
  void compact() {
    std::vector<point_t> to_reinsert;
    for (auto it = components_.begin(); it != components_.end();) {
      if (it->tree.empty()) {
        it = components_.erase(it);
        continue;
      }
      if (it->tree.size() * 2 < it->built_size) {
        auto pts = it->tree.flatten();
        to_reinsert.insert(to_reinsert.end(), pts.begin(), pts.end());
        it = components_.erase(it);
        continue;
      }
      ++it;
    }
    if (!to_reinsert.empty()) insert_component(to_reinsert);
  }
};

using LogTree2 = LogTree<std::int64_t, 2>;
using BhlTree2 = BhlTree<std::int64_t, 2>;

}  // namespace psi
