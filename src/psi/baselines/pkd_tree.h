// PSI-Lib: the Pkd-tree baseline (Men, Shen, Gu, Sun — SIGMOD 2025), as
// described in the target paper (Sec 2.3, Sec 5):
//
//  * Construction: λ levels of the kd-tree are built at a time. The
//    splitters are *approximate object medians* obtained from a sample
//    (split dimension = widest dimension of the sample's bounding box);
//    the Sieve (parallel counting sort by bucket) then gathers each
//    bucket's points contiguously and buckets recurse in parallel. This is
//    the I/O-efficient scheme the P-Orth tree borrows.
//  * Batch updates: points are sieved to the leaves through the existing
//    splitters (kd-trees cannot re-derive splitters without rebuilding),
//    then *partial reconstruction* restores balance: the highest subtree
//    whose weight imbalance exceeds the threshold is rebuilt from scratch
//    (the paper's "reconstruction-based balancing scheme", imbalance
//    parameter α = 0.3, Sec C). This yields the O(m log² n) amortised
//    update work that the paper contrasts with P-Orth/SPaC.
//
// Coordinates are assumed integral (splitter clamping relies on +1 steps);
// this matches every dataset in the paper.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/counting_sort.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"
#include "psi/parallel/scheduler.h"

namespace psi {

struct PkdParams {
  std::size_t leaf_wrap = 32;   // φ (paper Sec C)
  int skeleton_levels = 6;      // binary levels built per sieve round
  double imbalance = 0.3;       // α: rebuild when max child > (0.5+α/2)·n
  std::size_t sample_factor = 32;  // sample size per skeleton bucket
};

template <typename Coord, int D>
class PkdTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  explicit PkdTree(PkdParams params = {}) : params_(params) {}

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  void build(std::vector<point_t> pts) {
    root_ = build_rec(pts.data(), pts.size());
  }

  void batch_insert(std::vector<point_t> pts) {
    if (pts.empty()) return;
    root_ = insert_rec(std::move(root_), pts.data(), pts.size());
  }

  void batch_delete(std::vector<point_t> pts) {
    if (!root_ || pts.empty()) return;
    root_ = delete_rec(std::move(root_), pts.data(), pts.size());
  }

  // Combined difference (artifact BatchDiff()).
  void batch_diff(std::vector<point_t> inserts, std::vector<point_t> deletes) {
    batch_delete(std::move(deletes));
    batch_insert(std::move(inserts));
  }

  void clear() { root_.reset(); }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return size() == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root_ ? root_->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  // Stream every point inside `query`; a sink returning false stops early.
  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root_) range_visit_rec(root_.get(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root_) ball_visit_rec(root_.get(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Binary fork over subtrees above the fork grain; sequential visit below
  // it. The sink must tolerate concurrent emission (api::ConcurrentSink).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root_) range_visit_par_rec(root_.get(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root_) ball_visit_par_rec(root_.get(), q, radius * radius, sink);
  }

  // kNN fan-out: fork over both children above the fork grain when each
  // child's bbox can still beat the buffer's shared pruning bound
  // (api::ConcurrentKnnBuffer); sequential nearest-first descent below.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root_) knn_par_rec(root_.get(), q, buf);
  }

  // k nearest in increasing distance order; the bounded buffer is the
  // algorithm's working state, not a materialised result.
  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root_) knn_rec(root_.get(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root_ ? count_rec(root_.get(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root_ ? ball_count_rec(root_.get(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root_) collect(root_.get(), out);
    return out;
  }

  std::size_t height() const { return height_rec(root_.get()); }

  void check_invariants() const {
    if (root_) check_rec(root_.get());
  }

 private:
  struct Node {
    box_t bbox = box_t::empty();
    std::size_t count = 0;
    bool leaf = true;
    // Interior: axis-aligned splitter. Left: p[dim] < value; right: rest.
    int dim = 0;
    Coord value{};
    std::unique_ptr<Node> l, r;
    // Leaf payload.
    std::vector<point_t> points;
  };

  PkdParams params_;
  std::unique_ptr<Node> root_;

  // -------------------------------------------------------------------
  // Helpers
  // -------------------------------------------------------------------

  static box_t compute_bbox(const point_t* pts, std::size_t n) {
    return reduce_map(
        0, n, [&](std::size_t i) { return box_t::of_point(pts[i]); },
        box_t::empty(), [](box_t a, const box_t& b) {
          a.merge(b);
          return a;
        });
  }

  std::unique_ptr<Node> make_leaf(const point_t* pts, std::size_t n) const {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->points.assign(pts, pts + n);
    leaf->count = n;
    leaf->bbox = compute_bbox(pts, n);
    return leaf;
  }

  static void collect(const Node* t, std::vector<point_t>& out) {
    if (t->leaf) {
      out.insert(out.end(), t->points.begin(), t->points.end());
      return;
    }
    collect(t->l.get(), out);
    collect(t->r.get(), out);
  }

  std::unique_ptr<Node> rebuild_subtree(std::unique_ptr<Node> t) const {
    std::vector<point_t> pts;
    pts.reserve(t->count);
    collect(t.get(), pts);
    return build_rec(pts.data(), pts.size());
  }

  bool unbalanced(const Node* t) const {
    if (t->leaf) return false;
    const double n = static_cast<double>(t->count);
    const double mx = static_cast<double>(
        std::max(t->l ? t->l->count : 0, t->r ? t->r->count : 0));
    return mx > (0.5 + params_.imbalance / 2) * n + 1;
  }

  // -------------------------------------------------------------------
  // Skeleton: λ binary levels of sampled-median splitters
  // -------------------------------------------------------------------

  // Implicit full binary skeleton of `levels` levels as a flat heap array:
  // skel[1] is the root; node i has children 2i, 2i+1. Only splitters are
  // stored (the skeleton is built on a sample, then all points are sieved).
  struct SampledSkeleton {
    std::vector<int> dim;
    std::vector<Coord> value;
    int levels;

    std::size_t classify(const point_t& p) const {
      std::size_t i = 1;
      for (int l = 0; l < levels; ++l) {
        i = 2 * i + (p[dim[i]] < value[i] ? 0 : 1);
      }
      return i - (std::size_t{1} << levels);
    }
  };

  // Build splitters for the skeleton from a sample of the input.
  SampledSkeleton sample_skeleton(const point_t* pts, std::size_t n,
                                  int levels) const {
    const std::size_t buckets = std::size_t{1} << levels;
    const std::size_t want = std::min(n, buckets * params_.sample_factor);
    Rng rng(hash64(n, 0x5eed));
    std::vector<point_t> sample(want);
    parallel_for(0, want,
                 [&](std::size_t i) { sample[i] = pts[rng.ith_bounded(i, n)]; });
    SampledSkeleton sk;
    sk.levels = levels;
    sk.dim.assign(2 * buckets, 0);
    sk.value.assign(2 * buckets, Coord{});
    fill_skeleton(sk, sample.data(), sample.size(), 1, levels);
    return sk;
  }

  void fill_skeleton(SampledSkeleton& sk, point_t* sample, std::size_t n,
                     std::size_t node, int levels_left) const {
    // An empty sample slice keeps the pre-assigned default splitters for
    // its whole subtree (dim 0, value 0 — everything routes one way);
    // computing a width on the empty bbox would overflow.
    if (levels_left == 0 || n == 0) return;
    // Widest dimension of the sample bounding box.
    const box_t bb = compute_bbox(sample, n);
    int dim = 0;
    Coord width{};
    for (int d = 0; d < D; ++d) {
      const Coord w = bb.hi[d] - bb.lo[d];
      if (d == 0 || w > width) {
        width = w;
        dim = d;
      }
    }
    std::size_t m = n / 2;
    std::nth_element(sample, sample + m, sample + n,
                     [dim](const point_t& a, const point_t& b) {
                       return a[dim] < b[dim];
                     });
    Coord value = sample[m][dim];
    // Clamp so neither side is empty when the sample median coincides
    // with the minimum (duplicate-heavy dimension).
    if (value <= bb.lo[dim]) value = bb.lo[dim] + 1;
    sk.dim[node] = dim;
    sk.value[node] = value;
    // Partition the sample and recurse (sequential: samples are small).
    auto* mid = std::partition(sample, sample + n, [dim, value](const point_t& p) {
      return p[dim] < value;
    });
    const auto left_n = static_cast<std::size_t>(mid - sample);
    fill_skeleton(sk, sample, left_n, 2 * node, levels_left - 1);
    fill_skeleton(sk, mid, n - left_n, 2 * node + 1, levels_left - 1);
  }

  // -------------------------------------------------------------------
  // Construction
  // -------------------------------------------------------------------

  std::unique_ptr<Node> build_rec(point_t* pts, std::size_t n) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap) return make_leaf(pts, n);
    const box_t bb = compute_bbox(pts, n);
    bool degenerate = true;
    for (int d = 0; d < D; ++d) degenerate &= bb.lo[d] == bb.hi[d];
    if (degenerate) return make_leaf(pts, n);  // all points identical

    const int levels = params_.skeleton_levels;
    SampledSkeleton sk = sample_skeleton(pts, n, levels);
    std::vector<std::uint32_t> ids(n);
    parallel_for(0, n, [&](std::size_t i) {
      ids[i] = static_cast<std::uint32_t>(sk.classify(pts[i]));
    });
    BucketOffsets offsets = sieve(pts, n, std::size_t{1} << levels,
                                  [&](std::size_t i) { return ids[i]; });
    return assemble(pts, offsets, sk, 1, 0);
  }

  std::unique_ptr<Node> assemble(point_t* base, const BucketOffsets& offsets,
                                 const SampledSkeleton& sk, std::size_t node,
                                 int level) const {
    const int levels = sk.levels;
    if (level == levels) {
      const std::size_t b = node - (std::size_t{1} << levels);
      return build_rec(base + offsets[b], offsets[b + 1] - offsets[b]);
    }
    const std::size_t width = std::size_t{1} << (levels - level);
    const std::size_t bucket_lo = node * width - (std::size_t{1} << levels);
    const std::size_t span_n =
        offsets[bucket_lo + width] - offsets[bucket_lo];
    if (span_n == 0) return nullptr;
    std::unique_ptr<Node> l, r;
    if (span_n >= update_fork_cutoff()) {
      par_do([&] { l = assemble(base, offsets, sk, 2 * node, level + 1); },
             [&] { r = assemble(base, offsets, sk, 2 * node + 1, level + 1); });
    } else {
      l = assemble(base, offsets, sk, 2 * node, level + 1);
      r = assemble(base, offsets, sk, 2 * node + 1, level + 1);
    }
    if (!l) return r;
    if (!r) return l;
    if (l->count + r->count <= params_.leaf_wrap) {
      std::vector<point_t> pts;
      pts.reserve(l->count + r->count);
      collect(l.get(), pts);
      collect(r.get(), pts);
      return make_leaf(pts.data(), pts.size());
    }
    auto t = std::make_unique<Node>();
    t->leaf = false;
    t->dim = sk.dim[node];
    t->value = sk.value[node];
    t->l = std::move(l);
    t->r = std::move(r);
    refresh(t.get());
    return t;
  }

  static void refresh(Node* t) {
    t->count = (t->l ? t->l->count : 0) + (t->r ? t->r->count : 0);
    t->bbox = box_t::empty();
    if (t->l) t->bbox.merge(t->l->bbox);
    if (t->r) t->bbox.merge(t->r->bbox);
  }

  // -------------------------------------------------------------------
  // Batch updates with partial reconstruction
  // -------------------------------------------------------------------

  std::unique_ptr<Node> insert_rec(std::unique_ptr<Node> t, point_t* pts,
                                   std::size_t n) {
    if (n == 0) return t;
    if (!t) return build_rec(pts, n);
    if (t->leaf) {
      if (t->count + n <= params_.leaf_wrap) {
        t->points.insert(t->points.end(), pts, pts + n);
        t->count = t->points.size();
        t->bbox.merge(compute_bbox(pts, n));
        return t;
      }
      std::vector<point_t> all;
      all.reserve(t->count + n);
      all.insert(all.end(), t->points.begin(), t->points.end());
      all.insert(all.end(), pts, pts + n);
      return build_rec(all.data(), all.size());
    }
    // Route the batch through the existing splitter, recurse in parallel.
    auto* mid = partition_batch(t.get(), pts, n);
    const auto left_n = static_cast<std::size_t>(mid - pts);
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    if (n >= update_fork_cutoff()) {
      par_do([&] { nl = insert_rec(std::move(nl), pts, left_n); },
             [&] { nr = insert_rec(std::move(nr), mid, n - left_n); });
    } else {
      nl = insert_rec(std::move(nl), pts, left_n);
      nr = insert_rec(std::move(nr), mid, n - left_n);
    }
    t->l = std::move(nl);
    t->r = std::move(nr);
    refresh(t.get());
    // Partial reconstruction: rebuild this subtree if the weight imbalance
    // exceeds the threshold (the children were checked deeper already, so
    // this rebuilds the *highest* violated node reached on unwind).
    if (unbalanced(t.get())) return rebuild_subtree(std::move(t));
    return t;
  }

  std::unique_ptr<Node> delete_rec(std::unique_ptr<Node> t, point_t* pts,
                                   std::size_t n) {
    if (!t || n == 0) return t;
    if (t->leaf) {
      for (std::size_t i = 0; i < n; ++i) {
        auto it = std::find(t->points.begin(), t->points.end(), pts[i]);
        if (it != t->points.end()) {
          *it = t->points.back();
          t->points.pop_back();
        }
      }
      if (t->points.empty()) return nullptr;
      t->count = t->points.size();
      t->bbox = compute_bbox(t->points.data(), t->points.size());
      return t;
    }
    auto* mid = partition_batch(t.get(), pts, n);
    const auto left_n = static_cast<std::size_t>(mid - pts);
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    if (n >= update_fork_cutoff()) {
      par_do([&] { nl = delete_rec(std::move(nl), pts, left_n); },
             [&] { nr = delete_rec(std::move(nr), mid, n - left_n); });
    } else {
      nl = delete_rec(std::move(nl), pts, left_n);
      nr = delete_rec(std::move(nr), mid, n - left_n);
    }
    if (!nl && !nr) return nullptr;
    if (!nl) return nr;
    if (!nr) return nl;
    t->l = std::move(nl);
    t->r = std::move(nr);
    refresh(t.get());
    if (t->count <= params_.leaf_wrap) {
      std::vector<point_t> rest;
      rest.reserve(t->count);
      collect(t.get(), rest);
      return make_leaf(rest.data(), rest.size());
    }
    if (unbalanced(t.get())) return rebuild_subtree(std::move(t));
    return t;
  }

  // Stable partition of the batch around the node's splitter.
  point_t* partition_batch(const Node* t, point_t* pts, std::size_t n) const {
    return std::partition(pts, pts + n, [t](const point_t& p) {
      return p[t->dim] < t->value;
    });
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      for (const auto& p : t->points) buf.offer(squared_distance(p, q), p);
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (!c) continue;
      if (buf.full() && dist[i] >= buf.worst()) continue;
      knn_rec(c, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& p : t->points) c += query.contains(p) ? 1 : 0;
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += count_rec(t->l.get(), query);
    if (t->r) total += count_rec(t->r.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (!api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    if (t->l && !visit_all_rec(t->l.get(), sink)) return false;
    return !t->r || visit_all_rec(t->r.get(), sink);
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (query.contains(p) && !api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    if (t->l && !range_visit_rec(t->l.get(), query, sink)) return false;
    return !t->r || range_visit_rec(t->r.get(), query, sink);
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& p : t->points) c += squared_distance(p, q) <= r2 ? 1 : 0;
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += ball_count_rec(t->l.get(), q, r2);
    if (t->r) total += ball_count_rec(t->r.get(), q, r2);
    return total;
  }

  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    par_do([&] { if (t->l) range_visit_par_rec(t->l.get(), query, sink); },
           [&] { if (t->r) range_visit_par_rec(t->r.get(), query, sink); });
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    par_do([&] { if (t->l) ball_visit_par_rec(t->l.get(), q, r2, sink); },
           [&] { if (t->r) ball_visit_par_rec(t->r.get(), q, r2, sink); });
  }

  // Parallel kNN: bound re-read at every node so forked subtrees keep
  // pruning against the best radius found anywhere (see spac_tree.h).
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      for (const auto& p : t->points) buf.offer(squared_distance(p, q), p);
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    if (t->count >= fork_grain() && kids[0] && kids[1] &&
        dist[0] < buf.bound() && dist[1] < buf.bound()) {
      par_do([&] { knn_par_rec(kids[order[0]], q, buf); },
             [&] { knn_par_rec(kids[order[1]], q, buf); });
      return;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (c == nullptr || dist[i] >= buf.bound()) continue;
      knn_par_rec(c, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (squared_distance(p, q) <= r2 && !api::sink_accept(sink, p)) {
          return false;
        }
      }
      return true;
    }
    if (t->l && !ball_visit_rec(t->l.get(), q, r2, sink)) return false;
    return !t->r || ball_visit_rec(t->r.get(), q, r2, sink);
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    return 1 + std::max(height_rec(t->l.get()), height_rec(t->r.get()));
  }

  void check_rec(const Node* t) const {
    if (t->leaf) {
      if (t->count != t->points.size()) {
        throw std::logic_error("pkd: leaf count mismatch");
      }
      box_t bb = compute_bbox(t->points.data(), t->points.size());
      if (!(bb == t->bbox)) throw std::logic_error("pkd: leaf bbox not tight");
      return;
    }
    if (!t->l || !t->r) throw std::logic_error("pkd: interior missing child");
    if (t->count != t->l->count + t->r->count) {
      throw std::logic_error("pkd: interior count mismatch");
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("pkd: interior at or below leaf wrap");
    }
    // Splitter semantics: left strictly below, right at-or-above.
    check_side(t->l.get(), t->dim, t->value, true);
    check_side(t->r.get(), t->dim, t->value, false);
    box_t bb = t->l->bbox;
    bb.merge(t->r->bbox);
    if (!(bb == t->bbox)) throw std::logic_error("pkd: interior bbox mismatch");
    check_rec(t->l.get());
    check_rec(t->r.get());
  }

  void check_side(const Node* t, int dim, Coord value, bool below) const {
    if (below) {
      if (t->bbox.hi[dim] >= value) {
        throw std::logic_error("pkd: left subtree crosses splitter");
      }
    } else {
      if (t->bbox.lo[dim] < value) {
        throw std::logic_error("pkd: right subtree crosses splitter");
      }
    }
  }
};

using PkdTree2 = PkdTree<std::int64_t, 2>;
using PkdTree3 = PkdTree<std::int64_t, 3>;

}  // namespace psi
