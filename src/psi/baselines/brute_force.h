// PSI-Lib: brute-force oracle index.
//
// A flat multiset of points with O(n) queries. Used as the ground truth the
// real indexes are checked against in unit/integration tests. Conforms to
// psi::api::BatchDynamicIndex like every real backend, so it also serves as
// the null/default backend behind api::AnyIndex.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"

namespace psi {

template <typename Coord, int D>
class BruteForceIndex {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  void build(std::vector<point_t> pts) { pts_ = std::move(pts); }

  void batch_insert(std::vector<point_t> pts) {
    pts_.insert(pts_.end(), pts.begin(), pts.end());
  }

  // Remove one instance per batch element, matching the indexes' semantics.
  void batch_delete(const std::vector<point_t>& pts) {
    for (const auto& p : pts) {
      auto it = std::find(pts_.begin(), pts_.end(), p);
      if (it != pts_.end()) {
        *it = pts_.back();
        pts_.pop_back();
      }
    }
  }

  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }

  // Tight bounding box of all stored points (empty box when empty).
  box_t bounds() const {
    box_t b = box_t::empty();
    for (const auto& p : pts_) b.expand(p);
    return b;
  }

  // ---- streaming queries (the native implementations) -----------------

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    for (const auto& p : pts_) {
      if (query.contains(p) && !api::sink_accept(sink, p)) return;
    }
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    const double r2 = radius * radius;
    for (const auto& p : pts_) {
      if (squared_distance(p, q) <= r2 && !api::sink_accept(sink, p)) return;
    }
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    for (const auto& p : pts_) buf.offer(squared_distance(p, q), p);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  // ---- materialising adapters -----------------------------------------

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  // Distances of the k nearest (for tie-insensitive comparisons).
  std::vector<double> knn_distances(const point_t& q, std::size_t k) const {
    KnnBuffer<point_t> buf(k);
    for (const auto& p : pts_) buf.offer(squared_distance(p, q), p);
    std::vector<double> out;
    for (const auto& e : buf.sorted()) out.push_back(e.dist2);
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    std::size_t c = 0;
    for (const auto& p : pts_) c += query.contains(p) ? 1 : 0;
    return c;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    const double r2 = radius * radius;
    std::size_t c = 0;
    for (const auto& p : pts_) c += squared_distance(p, q) <= r2 ? 1 : 0;
    return c;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const { return pts_; }

  const std::vector<point_t>& points() const { return pts_; }

 private:
  std::vector<point_t> pts_;
};

}  // namespace psi
