// PSI-Lib: brute-force oracle index.
//
// A flat multiset of points with O(n) queries. Used as the ground truth the
// real indexes are checked against in unit/integration tests.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"

namespace psi {

template <typename Coord, int D>
class BruteForceIndex {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  void build(std::vector<point_t> pts) { pts_ = std::move(pts); }

  void batch_insert(std::vector<point_t> pts) {
    pts_.insert(pts_.end(), pts.begin(), pts.end());
  }

  // Remove one instance per batch element, matching the indexes' semantics.
  void batch_delete(const std::vector<point_t>& pts) {
    for (const auto& p : pts) {
      auto it = std::find(pts_.begin(), pts_.end(), p);
      if (it != pts_.end()) {
        *it = pts_.back();
        pts_.pop_back();
      }
    }
  }

  std::size_t size() const { return pts_.size(); }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    KnnBuffer<point_t> buf(k);
    for (const auto& p : pts_) buf.offer(squared_distance(p, q), p);
    auto entries = buf.sorted();
    std::vector<point_t> out;
    out.reserve(entries.size());
    for (const auto& e : entries) out.push_back(e.point);
    return out;
  }

  // Distances of the k nearest (for tie-insensitive comparisons).
  std::vector<double> knn_distances(const point_t& q, std::size_t k) const {
    KnnBuffer<point_t> buf(k);
    for (const auto& p : pts_) buf.offer(squared_distance(p, q), p);
    std::vector<double> out;
    for (const auto& e : buf.sorted()) out.push_back(e.dist2);
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    std::size_t c = 0;
    for (const auto& p : pts_) c += query.contains(p) ? 1 : 0;
    return c;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    for (const auto& p : pts_) {
      if (query.contains(p)) out.push_back(p);
    }
    return out;
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    const double r2 = radius * radius;
    std::size_t c = 0;
    for (const auto& p : pts_) c += squared_distance(p, q) <= r2 ? 1 : 0;
    return c;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    const double r2 = radius * radius;
    std::vector<point_t> out;
    for (const auto& p : pts_) {
      if (squared_distance(p, q) <= r2) out.push_back(p);
    }
    return out;
  }

  const std::vector<point_t>& points() const { return pts_; }

 private:
  std::vector<point_t> pts_;
};

}  // namespace psi
