// PSI-Lib: sequential R-tree with quadratic split (Guttman, SIGMOD 1984).
//
// Stands in for the Boost.Geometry `bgi::quadratic` R-tree the paper uses
// as its sequential query-quality baseline (Sec 5, "Boost-R"): point-at-a-
// time insert/delete (no batch updates, no parallelism), choose-leaf by
// least enlargement, quadratic pick-seeds/pick-next node splitting, and
// condense-tree with reinsertion on deletion. Queries are the standard
// best-first kNN and bounding-box range traversals.

#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"

namespace psi {

struct RTreeParams {
  std::size_t max_entries = 8;  // M
  std::size_t min_entries = 3;  // m (Guttman recommends m <= M/2)
};

template <typename Coord, int D>
class RTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;

  explicit RTree(RTreeParams params = {}) : params_(params) {
    if (params_.min_entries * 2 > params_.max_entries) {
      params_.min_entries = params_.max_entries / 2;
    }
  }

  // -------------------------------------------------------------------
  // Maintenance (sequential, single-point — as in the paper's baseline)
  // -------------------------------------------------------------------

  void insert(const point_t& p) {
    if (!root_) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
      root_->bbox = box_t::of_point(p);
    }
    Node* split = insert_rec(root_.get(), p, root_height());
    if (split != nullptr) grow_root(split);
    ++size_;
  }

  // Removes one stored instance of p; returns whether anything was removed.
  bool erase(const point_t& p) {
    if (!root_) return false;
    std::vector<point_t> orphans;
    const bool removed = erase_rec(root_.get(), p, orphans);
    if (!removed) return false;
    --size_;
    // Shrink the root: an interior root with one child is replaced by it;
    // an empty root is dropped.
    while (root_ && !root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children.front());
    }
    if (root_ && ((root_->leaf && root_->points.empty()) ||
                  (!root_->leaf && root_->children.empty()))) {
      root_.reset();
    }
    // Reinsert points orphaned by condensed nodes.
    for (const auto& q : orphans) {
      --size_;  // insert() will count them again
      insert(q);
    }
    return true;
  }

  // Convenience wrappers so the bench harness can treat the R-tree like the
  // batch indexes (the paper reports Boost-R by looping point-at-a-time).
  void build(const std::vector<point_t>& pts) {
    clear();
    for (const auto& p : pts) insert(p);
  }
  void batch_insert(const std::vector<point_t>& pts) {
    for (const auto& p : pts) insert(p);
  }
  void batch_delete(const std::vector<point_t>& pts) {
    for (const auto& p : pts) erase(p);
  }

  void clear() {
    root_.reset();
    size_ = 0;
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root_ ? root_->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root_) range_visit_rec(root_.get(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root_) ball_visit_rec(root_.get(), q, radius * radius, sink);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    // Best-first search over a priority queue of (mindist, node).
    KnnBuffer<point_t> buf(k);
    if (!root_) return;
    using Item = std::pair<double, const Node*>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({min_squared_distance(root_->bbox, q), root_.get()});
    while (!pq.empty()) {
      const auto [dist, node] = pq.top();
      pq.pop();
      if (buf.full() && dist >= buf.worst()) break;
      if (node->leaf) {
        for (const auto& p : node->points) {
          buf.offer(squared_distance(p, q), p);
        }
      } else {
        for (const auto& c : node->children) {
          const double d = min_squared_distance(c->bbox, q);
          if (!buf.full() || d < buf.worst()) pq.push({d, c.get()});
        }
      }
    }
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root_ ? count_rec(root_.get(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    api::CountSink<point_t> counter;
    ball_visit(q, radius, counter);
    return counter.count;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size_);
    if (root_) collect_points(root_.get(), out);
    return out;
  }

  std::size_t height() const { return root_ ? root_height() : 0; }

  void check_invariants() const {
    if (!root_) return;
    std::size_t total = check_rec(root_.get(), /*is_root=*/true);
    if (total != size_) throw std::logic_error("rtree: size mismatch");
    // All leaves at the same depth.
    std::size_t depth = 0;
    const Node* t = root_.get();
    while (!t->leaf) {
      ++depth;
      t = t->children.front().get();
    }
    check_depth(root_.get(), 0, depth);
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    box_t bbox = box_t::empty();
    bool leaf;
    std::vector<std::unique_ptr<Node>> children;  // interior
    std::vector<point_t> points;                  // leaf
    std::size_t entry_count() const {
      return leaf ? points.size() : children.size();
    }
  };

  RTreeParams params_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;

  std::size_t root_height() const {
    std::size_t h = 1;
    const Node* t = root_.get();
    while (!t->leaf) {
      ++h;
      t = t->children.front().get();
    }
    return h;
  }

  void grow_root(Node* split) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children.push_back(std::move(root_));
    new_root->children.emplace_back(split);
    new_root->bbox = merged(new_root->children[0]->bbox,
                            new_root->children[1]->bbox);
    root_ = std::move(new_root);
  }

  // Insert p at the given level; returns a new sibling if the node split
  // (ownership passed to the caller), else nullptr.
  Node* insert_rec(Node* t, const point_t& p, std::size_t level) {
    t->bbox.expand(p);
    if (t->leaf) {
      t->points.push_back(p);
      if (t->points.size() > params_.max_entries) return split_leaf(t);
      return nullptr;
    }
    Node* best = choose_subtree(t, p);
    Node* split = insert_rec(best, p, level - 1);
    if (split != nullptr) {
      t->children.emplace_back(split);
      if (t->children.size() > params_.max_entries) return split_interior(t);
    }
    return nullptr;
  }

  // Least-enlargement child (ties by smaller area), Guttman's ChooseLeaf.
  Node* choose_subtree(Node* t, const point_t& p) const {
    Node* best = nullptr;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& c : t->children) {
      const double enl = enlargement(c->bbox, p);
      const double area = box_area(c->bbox);
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = c.get();
        best_enl = enl;
        best_area = area;
      }
    }
    return best;
  }

  // Quadratic split: pick the pair of entries wasting the most area as
  // seeds, then assign the rest by least enlargement (with the min-entries
  // feasibility rule).
  template <typename EntryT, typename BoxOf>
  void quadratic_split(std::vector<EntryT>& entries, BoxOf&& box_of,
                       std::vector<EntryT>& group_a,
                       std::vector<EntryT>& group_b) const {
    const std::size_t n = entries.size();
    // PickSeeds.
    std::size_t seed_a = 0, seed_b = 1;
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const box_t combined = merged(box_of(entries[i]), box_of(entries[j]));
        const double waste = box_area(combined) - box_area(box_of(entries[i])) -
                             box_area(box_of(entries[j]));
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    box_t bb_a = box_of(entries[seed_a]);
    box_t bb_b = box_of(entries[seed_b]);
    group_a.push_back(std::move(entries[seed_a]));
    group_b.push_back(std::move(entries[seed_b]));
    std::vector<bool> used(n, false);
    used[seed_a] = used[seed_b] = true;
    std::size_t remaining = n - 2;
    while (remaining > 0) {
      // Feasibility: if one group must take everything left to reach m.
      if (group_a.size() + remaining == params_.min_entries) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!used[i]) {
            bb_a.merge(box_of(entries[i]));
            group_a.push_back(std::move(entries[i]));
            used[i] = true;
          }
        }
        break;
      }
      if (group_b.size() + remaining == params_.min_entries) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!used[i]) {
            bb_b.merge(box_of(entries[i]));
            group_b.push_back(std::move(entries[i]));
            used[i] = true;
          }
        }
        break;
      }
      // PickNext: entry with the greatest preference difference.
      std::size_t pick = n;
      double best_diff = -1;
      double enl_a_pick = 0, enl_b_pick = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        const double ea = enlargement(bb_a, box_of(entries[i]));
        const double eb = enlargement(bb_b, box_of(entries[i]));
        const double diff = std::abs(ea - eb);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          enl_a_pick = ea;
          enl_b_pick = eb;
        }
      }
      bool to_a = enl_a_pick < enl_b_pick;
      if (enl_a_pick == enl_b_pick) {
        to_a = box_area(bb_a) < box_area(bb_b) ||
               (box_area(bb_a) == box_area(bb_b) &&
                group_a.size() <= group_b.size());
      }
      if (to_a) {
        bb_a.merge(box_of(entries[pick]));
        group_a.push_back(std::move(entries[pick]));
      } else {
        bb_b.merge(box_of(entries[pick]));
        group_b.push_back(std::move(entries[pick]));
      }
      used[pick] = true;
      --remaining;
    }
  }

  Node* split_leaf(Node* t) {
    std::vector<point_t> entries = std::move(t->points);
    std::vector<point_t> a, b;
    quadratic_split(entries, [](const point_t& p) { return box_t::of_point(p); },
                    a, b);
    t->points = std::move(a);
    recompute_bbox(t);
    auto* sibling = new Node(/*leaf=*/true);
    sibling->points = std::move(b);
    recompute_bbox(sibling);
    return sibling;
  }

  Node* split_interior(Node* t) {
    std::vector<std::unique_ptr<Node>> entries = std::move(t->children);
    std::vector<std::unique_ptr<Node>> a, b;
    quadratic_split(entries,
                    [](const std::unique_ptr<Node>& c) { return c->bbox; }, a,
                    b);
    t->children = std::move(a);
    recompute_bbox(t);
    auto* sibling = new Node(/*leaf=*/false);
    sibling->children = std::move(b);
    recompute_bbox(sibling);
    return sibling;
  }

  static void recompute_bbox(Node* t) {
    t->bbox = box_t::empty();
    if (t->leaf) {
      for (const auto& p : t->points) t->bbox.expand(p);
    } else {
      for (const auto& c : t->children) t->bbox.merge(c->bbox);
    }
  }

  // Returns true if p was removed under t. Underfull nodes are dissolved
  // into `orphans` for reinsertion (CondenseTree).
  bool erase_rec(Node* t, const point_t& p, std::vector<point_t>& orphans) {
    if (t->leaf) {
      auto it = std::find(t->points.begin(), t->points.end(), p);
      if (it == t->points.end()) return false;
      t->points.erase(it);
      recompute_bbox(t);
      return true;
    }
    for (auto it = t->children.begin(); it != t->children.end(); ++it) {
      if (!(*it)->bbox.contains(p)) continue;
      if (!erase_rec(it->get(), p, orphans)) continue;
      if ((*it)->entry_count() < params_.min_entries) {
        collect_points(it->get(), orphans);
        t->children.erase(it);
      }
      recompute_bbox(t);
      return true;
    }
    return false;
  }

  static void collect_points(const Node* t, std::vector<point_t>& out) {
    if (t->leaf) {
      out.insert(out.end(), t->points.begin(), t->points.end());
      return;
    }
    for (const auto& c : t->children) collect_points(c.get(), out);
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& p : t->points) c += query.contains(p) ? 1 : 0;
      return c;
    }
    if (query.contains(t->bbox)) {
      std::vector<point_t> all;
      collect_points(t, all);
      return all.size();
    }
    std::size_t total = 0;
    for (const auto& c : t->children) total += count_rec(c.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (!api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    for (const auto& c : t->children) {
      if (!visit_all_rec(c.get(), sink)) return false;
    }
    return true;
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (query.contains(p) && !api::sink_accept(sink, p)) return false;
      }
      return true;
    }
    for (const auto& c : t->children) {
      if (!range_visit_rec(c.get(), query, sink)) return false;
    }
    return true;
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& p : t->points) {
        if (squared_distance(p, q) <= r2 && !api::sink_accept(sink, p)) {
          return false;
        }
      }
      return true;
    }
    for (const auto& c : t->children) {
      if (!ball_visit_rec(c.get(), q, r2, sink)) return false;
    }
    return true;
  }

  std::size_t check_rec(const Node* t, bool is_root) const {
    if (!is_root) {
      if (t->entry_count() < params_.min_entries) {
        throw std::logic_error("rtree: underfull node");
      }
    }
    if (t->entry_count() > params_.max_entries) {
      throw std::logic_error("rtree: overfull node");
    }
    if (t->leaf) {
      box_t bb = box_t::empty();
      for (const auto& p : t->points) bb.expand(p);
      if (!(bb == t->bbox)) throw std::logic_error("rtree: leaf bbox not tight");
      return t->points.size();
    }
    box_t bb = box_t::empty();
    std::size_t total = 0;
    for (const auto& c : t->children) {
      bb.merge(c->bbox);
      total += check_rec(c.get(), false);
    }
    if (!(bb == t->bbox)) {
      throw std::logic_error("rtree: interior bbox not tight");
    }
    return total;
  }

  void check_depth(const Node* t, std::size_t depth,
                   std::size_t leaf_depth) const {
    if (t->leaf) {
      if (depth != leaf_depth) {
        throw std::logic_error("rtree: leaves at different depths");
      }
      return;
    }
    for (const auto& c : t->children) {
      check_depth(c.get(), depth + 1, leaf_depth);
    }
  }
};

using RTree2 = RTree<std::int64_t, 2>;
using RTree3 = RTree<std::int64_t, 3>;

}  // namespace psi
