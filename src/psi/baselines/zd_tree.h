// PSI-Lib: the Zd-tree baseline (Blelloch & Dobson, ALENEX 2022), as
// described in the target paper (Sec 2.3 / Sec 3): an orth-tree driven by
// the Morton curve. Construction *pre-computes* the Morton code of every
// point, comparison-sorts the ⟨code, point⟩ pairs (the extra pass/footprint
// the P-Orth tree eliminates), and then builds the tree by splitting the
// sorted range one code bit per level (a binary orth-tree: D consecutive
// levels form one quad/oct subdivision). Updates sort the batch by code and
// merge it into the tree recursively by code ranges; like all orth-trees
// there is no rebalancing, and the structure is history-independent given
// the code universe.
//
// The paper notes the original Zd-tree code has buggy updates and that its
// authors re-implemented it from the paper; we do the same from the
// description here.
//
// Memory layout: like the SPaC-tree, all nodes live in the tree's own
// arena::ChunkPool with offset_ptr links and struct-of-arrays leaf lanes
// (see spac_tree.h for the layout rationale), so the Zd-tree is also
// relocatable — serialize_arena()/adopt_arena() give it the same O(bytes)
// handoff and checkpoint fast path, and leaf scans run as batched
// per-lane passes. Leaves here are always kept code-sorted (the Zd-tree
// has no relaxed-order mode), so deletes shift lanes instead of
// swap-erasing.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "psi/api/query.h"
#include "psi/core/arena/chunk_pool.h"
#include "psi/core/arena/offset_ptr.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/sfc/codec.h"

namespace psi {

struct ZdParams {
  std::size_t leaf_wrap = 32;  // φ (paper Sec C)
  // Virtual-memory cap of the node arena (chunk_pool.h).
  std::size_t arena_reserve = arena::ChunkPool::kDefaultReserve;
};

template <typename Coord, int D>
class ZdTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = sfc::MortonCodec<Coord, D>;

  explicit ZdTree(ZdParams params = {})
      : params_(params), pool_(params.arena_reserve) {}

  ZdTree(ZdTree&& o) noexcept
      : params_(o.params_), pool_(std::move(o.pool_)), root_off_(o.root_off_) {
    o.root_off_ = 0;
  }
  ZdTree& operator=(ZdTree&& o) noexcept {
    if (this != &o) {
      params_ = o.params_;
      pool_ = std::move(o.pool_);
      root_off_ = o.root_off_;
      o.root_off_ = 0;
    }
    return *this;
  }
  ZdTree(const ZdTree&) = delete;
  ZdTree& operator=(const ZdTree&) = delete;

  static constexpr int kTopBit = D * sfc::bits_per_dim<D>() - 1;

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  void build(const std::vector<point_t>& pts) {
    pool_.reset();
    root_off_ = 0;
    std::vector<Entry> entries = sorted_entries(pts);
    set_root(build_rec(entries.data(), entries.size(), kTopBit));
  }

  void batch_insert(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    set_root(insert_rec(root(), batch.data(), batch.size(), kTopBit));
  }

  void batch_delete(const std::vector<point_t>& pts) {
    if (!root() || pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    set_root(delete_rec(root(), batch.data(), batch.size()));
  }

  // Combined difference (artifact BatchDiff()).
  void batch_diff(const std::vector<point_t>& inserts,
                  const std::vector<point_t>& deletes) {
    batch_delete(deletes);
    batch_insert(inserts);
  }

  void clear() {
    pool_.reset();
    root_off_ = 0;
  }

  // -------------------------------------------------------------------
  // Relocation (psi::api RelocatableIndex capability; see spac_tree.h)
  // -------------------------------------------------------------------

  std::size_t arena_bytes() const { return pool_.used_bytes(); }
  std::size_t arena_chunks() const { return pool_.chunks(); }

  std::vector<std::uint8_t> serialize_arena() const {
    pool_.set_user(0, root_off_);
    pool_.set_user(1, params_fingerprint());
    return pool_.serialize();
  }

  void adopt_arena(const std::uint8_t* data, std::size_t n) {
    pool_.adopt(data, n);  // validates framing + CRC, throws untouched
    const std::uint64_t root = pool_.user(0);
    const std::uint64_t fp = pool_.user(1);
    if (fp != params_fingerprint() ||
        (root != 0 &&
         (root % arena::ChunkPool::kAlign != 0 ||
          root + sizeof(Node) > pool_.used_bytes()))) {
      pool_.reset();
      root_off_ = 0;
      throw std::runtime_error(
          fp != params_fingerprint()
              ? "arena: image built with different tree parameters"
              : "arena: root offset out of range");
    }
    root_off_ = root;
  }
  void adopt_arena(const std::vector<std::uint8_t>& image) {
    adopt_arena(image.data(), image.size());
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return root() ? root()->count : 0; }
  bool empty() const { return size() == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root() ? root()->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root()) range_visit_rec(root(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root()) ball_visit_rec(root(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Binary fork over subtrees above the fork grain; sequential visit below
  // it. The sink must tolerate concurrent emission (api::ConcurrentSink).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root()) range_visit_par_rec(root(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root()) ball_visit_par_rec(root(), q, radius * radius, sink);
  }

  // kNN fan-out: fork over both children above the fork grain when each
  // child's bbox can still beat the buffer's shared pruning bound
  // (api::ConcurrentKnnBuffer); sequential nearest-first descent below.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root()) knn_par_rec(root(), q, buf);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root()) knn_rec(root(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root() ? count_rec(root(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root() ? ball_count_rec(root(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root()) collect_points(root(), out);
    return out;
  }

  std::size_t height() const { return height_rec(root()); }

  void check_invariants() const {
    if (root()) check_rec(root());
  }

 private:
  struct Entry {
    std::uint64_t code;
    point_t pt;
  };

  // Arena node; leaves trail SoA lanes [u64 codes[cap]][Coord lane(d)[cap]]
  // kept code-sorted (see spac_tree.h for the layout discussion).
  struct Node {
    box_t bbox = box_t::empty();
    std::uint64_t count = 0;
    std::uint32_t cap = 0;  // leaf lane capacity; 0 for interiors
    std::int16_t bit = -1;  // interior: children split on this code bit
    std::uint8_t leaf = 1;
    arena::offset_ptr<Node> l, r;

    std::uint64_t* codes() {
      return reinterpret_cast<std::uint64_t*>(this + 1);
    }
    const std::uint64_t* codes() const {
      return reinterpret_cast<const std::uint64_t*>(this + 1);
    }
    Coord* lane(int d) {
      return reinterpret_cast<Coord*>(codes() + cap) +
             static_cast<std::size_t>(d) * cap;
    }
    const Coord* lane(int d) const {
      return reinterpret_cast<const Coord*>(codes() + cap) +
             static_cast<std::size_t>(d) * cap;
    }
    point_t leaf_point(std::size_t i) const {
      point_t p;
      for (int d = 0; d < D; ++d) p[d] = lane(d)[i];
      return p;
    }
    Entry leaf_entry(std::size_t i) const {
      return Entry{codes()[i], leaf_point(i)};
    }
    void set_entry(std::size_t i, const Entry& e) {
      codes()[i] = e.code;
      for (int d = 0; d < D; ++d) lane(d)[i] = e.pt[d];
    }
  };
  static_assert(alignof(Coord) <= arena::ChunkPool::kAlign);

  ZdParams params_;
  mutable arena::ChunkPool pool_;
  std::uint64_t root_off_ = 0;  // base-relative; 0 = empty tree

  Node* root() const { return pool_.template from_offset<Node>(root_off_); }
  void set_root(Node* t) { root_off_ = pool_.to_offset(t); }

  std::uint64_t params_fingerprint() const {
    // Distinct tag in bits 16-23 keeps Zd images from being adopted by a
    // SpacTree with coincidentally matching leaf_wrap (and vice versa).
    return (static_cast<std::uint64_t>(params_.leaf_wrap) << 32) |
           (std::uint64_t{0x5A} << 16);
  }

  static constexpr std::size_t entry_stride() {
    return sizeof(std::uint64_t) + D * sizeof(Coord);
  }
  static constexpr std::size_t leaf_bytes(std::size_t cap) {
    return sizeof(Node) + cap * entry_stride();
  }

  Node* new_interior(int bit) const {
    Node* t = pool_.template create<Node>(0);
    t->leaf = 0;
    t->bit = static_cast<std::int16_t>(bit);
    return t;
  }

  Node* new_leaf(std::size_t cap) const {
    Node* t = pool_.template create<Node>(cap * entry_stride());
    t->cap = static_cast<std::uint32_t>(cap);
    return t;
  }

  void free_node(Node* t) const {
    pool_.free(t, t->leaf ? leaf_bytes(t->cap) : sizeof(Node));
  }

  void free_subtree(Node* t) const {
    if (t == nullptr) return;
    if (!t->leaf) {
      free_subtree(t->l.get());
      free_subtree(t->r.get());
    }
    free_node(t);
  }

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.code != b.code) return a.code < b.code;
    return a.pt < b.pt;
  }

  std::vector<Entry> sorted_entries(const std::vector<point_t>& pts) const {
    // Pre-compute all codes (a full pass over the data), then sort the full
    // ⟨code, point⟩ records — the Zd-tree scheme the paper measures against.
    std::vector<Entry> entries = tabulate<Entry>(pts.size(), [&](std::size_t i) {
      return Entry{codec_t::encode(pts[i]), pts[i]};
    });
    sample_sort(entries, entry_less);
    return entries;
  }

  void refresh_leaf_bbox(Node* t) const {
    t->bbox = box_t::empty();
    for (std::size_t i = 0; i < t->count; ++i) t->bbox.expand(t->leaf_point(i));
  }

  // `e` must already be entry-sorted (every caller passes a sorted range).
  Node* make_leaf(const Entry* e, std::size_t n) const {
    Node* t = new_leaf(n);
    t->count = n;
    for (std::size_t i = 0; i < n; ++i) t->set_entry(i, e[i]);
    refresh_leaf_bbox(t);
    return t;
  }

  // Index of the first entry with `bit` set (entries sorted by code).
  static std::size_t split_at_bit(const Entry* e, std::size_t n, int bit) {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (e[mid].code & mask) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // -------------------------------------------------------------------
  // Construction from a code-sorted range
  // -------------------------------------------------------------------

  Node* build_rec(const Entry* e, std::size_t n, int bit) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap || bit < 0) return make_leaf(e, n);
    const std::size_t m = split_at_bit(e, n, bit);
    if (m == 0 || m == n) {
      // All points on one side of this bit: skip the level without
      // allocating a chain node (path compression).
      return build_rec(e, n, bit - 1);
    }
    Node* t = new_interior(bit);
    Node* l = nullptr;
    Node* r = nullptr;
    if (n >= update_fork_cutoff()) {
      par_do([&] { l = build_rec(e, m, bit - 1); },
             [&] { r = build_rec(e + m, n - m, bit - 1); });
    } else {
      l = build_rec(e, m, bit - 1);
      r = build_rec(e + m, n - m, bit - 1);
    }
    t->l = l;
    t->r = r;
    refresh(t);
    return t;
  }

  static void refresh(Node* t) {
    t->count = (t->l ? t->l->count : 0) + (t->r ? t->r->count : 0);
    t->bbox = box_t::empty();
    if (t->l) t->bbox.merge(t->l->bbox);
    if (t->r) t->bbox.merge(t->r->bbox);
  }

  // -------------------------------------------------------------------
  // Batch updates (merge by code ranges; no rebalancing)
  // -------------------------------------------------------------------

  // `bit` is the highest code bit not yet consumed on this path; with path
  // compression an interior node may sit at a lower bit than that — the
  // batch is then split at the node's own bit.
  Node* insert_rec(Node* t, Entry* batch, std::size_t n, int bit) const {
    if (n == 0) return t;
    if (!t) return build_rec(batch, n, bit);
    if (t->leaf) {
      // Merge into the leaf; rebuild the subtree if it overflows.
      std::vector<Entry> all;
      all.reserve(t->count + n);
      for (std::size_t i = 0, j = 0; i < t->count || j < n;) {
        if (j == n ||
            (i < t->count && !entry_less(batch[j], t->leaf_entry(i)))) {
          all.push_back(t->leaf_entry(i++));
        } else {
          all.push_back(batch[j++]);
        }
      }
      free_node(t);
      if (all.size() <= params_.leaf_wrap) {
        return make_leaf(all.data(), all.size());
      }
      return build_rec(all.data(), all.size(), bit);
    }
    // Interior. With path compression, batch points may diverge from the
    // subtree's code prefix above t->bit; rebuilding the (prefix) structure
    // is done by re-splitting at every bit from `bit` down to t->bit.
    if (bit > t->bit) {
      const std::size_t m = split_at_bit(batch, n, bit);
      // Does the subtree lie on the 0-side or the 1-side of `bit`? Compare
      // against any code in the subtree.
      const bool subtree_high = (leftmost_code(t) >> bit) & 1;
      if (!subtree_high) {
        if (m == n) return insert_rec(t, batch, n, bit - 1);
        Node* r = build_rec(batch + m, n - m, bit - 1);
        Node* l = insert_rec(t, batch, m, bit - 1);
        return make_interior(bit, l, r);
      }
      if (m == 0) return insert_rec(t, batch, n, bit - 1);
      Node* l = build_rec(batch, m, bit - 1);
      Node* r = insert_rec(t, batch + m, n - m, bit - 1);
      return make_interior(bit, l, r);
    }
    const std::size_t m = split_at_bit(batch, n, t->bit);
    Node* nl = t->l.get();
    Node* nr = t->r.get();
    const int child_bit = t->bit - 1;
    if (n >= update_fork_cutoff()) {
      Node* cl = nl;
      Node* cr = nr;
      par_do([&] { nl = insert_rec(cl, batch, m, child_bit); },
             [&] { nr = insert_rec(cr, batch + m, n - m, child_bit); });
    } else {
      nl = insert_rec(nl, batch, m, child_bit);
      nr = insert_rec(nr, batch + m, n - m, child_bit);
    }
    t->l = nl;
    t->r = nr;
    refresh(t);
    return t;
  }

  Node* make_interior(int bit, Node* l, Node* r) const {
    if (!l) return r;
    if (!r) return l;
    Node* t = new_interior(bit);
    t->l = l;
    t->r = r;
    refresh(t);
    return t;
  }

  static std::uint64_t leftmost_code(const Node* t) {
    while (!t->leaf) t = t->l ? t->l.get() : t->r.get();
    return t->codes()[0];
  }

  // Erase leaf entry `i` preserving code order (lane-wise shift down).
  static void leaf_erase(Node* t, std::size_t i) {
    const std::size_t tail = t->count - i - 1;
    std::memmove(t->codes() + i, t->codes() + i + 1,
                 tail * sizeof(std::uint64_t));
    for (int d = 0; d < D; ++d) {
      std::memmove(t->lane(d) + i, t->lane(d) + i + 1, tail * sizeof(Coord));
    }
    --t->count;
  }

  Node* delete_rec(Node* t, Entry* batch, std::size_t n) const {
    if (!t || n == 0) return t;
    if (t->leaf) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < t->count; ++j) {
          if (t->codes()[j] == batch[i].code &&
              t->leaf_point(j) == batch[i].pt) {
            leaf_erase(t, j);
            break;
          }
        }
      }
      if (t->count == 0) {
        free_node(t);
        return nullptr;
      }
      refresh_leaf_bbox(t);
      return t;
    }
    const std::size_t m = split_at_bit(batch, n, t->bit);
    Node* nl = t->l.get();
    Node* nr = t->r.get();
    if (n >= update_fork_cutoff()) {
      Node* cl = nl;
      Node* cr = nr;
      par_do([&] { nl = delete_rec(cl, batch, m); },
             [&] { nr = delete_rec(cr, batch + m, n - m); });
    } else {
      nl = delete_rec(nl, batch, m);
      nr = delete_rec(nr, batch + m, n - m);
    }
    if (!nl || !nr) {
      free_node(t);
      return nl ? nl : nr;
    }
    t->l = nl;
    t->r = nr;
    refresh(t);
    if (t->count <= params_.leaf_wrap) {
      std::vector<Entry> rest;
      rest.reserve(t->count);
      collect_entries(t, rest);
      free_subtree(t);
      return make_leaf(rest.data(), rest.size());
    }
    return t;
  }

  static void collect_entries(const Node* t, std::vector<Entry>& out) {
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) out.push_back(t->leaf_entry(i));
      return;
    }
    if (t->l) collect_entries(t->l.get(), out);
    if (t->r) collect_entries(t->r.get(), out);
  }

  static void collect_points(const Node* t, std::vector<point_t>& out) {
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) out.push_back(t->leaf_point(i));
      return;
    }
    if (t->l) collect_points(t->l.get(), out);
    if (t->r) collect_points(t->r.get(), out);
  }

  // -------------------------------------------------------------------
  // Leaf query kernels (batched SoA lane passes; see spac_tree.h — the
  // per-dim accumulation order matches squared_distance exactly).
  // -------------------------------------------------------------------

  static constexpr std::size_t kBlock = 128;

  static void leaf_box_mask(const Node* t, const box_t& q, std::size_t base,
                            std::size_t len, std::uint8_t* m) {
    for (std::size_t i = 0; i < len; ++i) m[i] = 1;
    for (int d = 0; d < D; ++d) {
      const Coord* lane = t->lane(d) + base;
      const Coord lo = q.lo[d];
      const Coord hi = q.hi[d];
      for (std::size_t i = 0; i < len; ++i) {
        m[i] &= static_cast<std::uint8_t>(lane[i] >= lo && lane[i] <= hi);
      }
    }
  }

  static void leaf_dist2(const Node* t, const point_t& q, std::size_t base,
                         std::size_t len, double* d2) {
    for (std::size_t i = 0; i < len; ++i) d2[i] = 0;
    for (int d = 0; d < D; ++d) {
      const Coord* lane = t->lane(d) + base;
      const double qd = static_cast<double>(q[d]);
      for (std::size_t i = 0; i < len; ++i) {
        const double diff = static_cast<double>(lane[i]) - qd;
        d2[i] += diff * diff;
      }
    }
  }

  template <typename Buf>
  static void leaf_knn_offer(const Node* t, const point_t& q, Buf& buf) {
    double d2[kBlock];
    for (std::size_t base = 0; base < t->count; base += kBlock) {
      const std::size_t len = std::min(kBlock, t->count - base);
      leaf_dist2(t, q, base, len, d2);
      for (std::size_t i = 0; i < len; ++i) {
        buf.offer(d2[i], t->leaf_point(base + i));
      }
    }
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      leaf_knn_offer(t, q, buf);
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (!c) continue;
      if (buf.full() && dist[i] >= buf.worst()) continue;
      knn_rec(c, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      std::uint8_t m[kBlock];
      for (std::size_t base = 0; base < t->count; base += kBlock) {
        const std::size_t len = std::min(kBlock, t->count - base);
        leaf_box_mask(t, query, base, len, m);
        for (std::size_t i = 0; i < len; ++i) c += m[i];
      }
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += count_rec(t->l.get(), query);
    if (t->r) total += count_rec(t->r.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (std::size_t i = 0; i < t->count; ++i) {
        if (!api::sink_accept(sink, t->leaf_point(i))) return false;
      }
      return true;
    }
    if (t->l && !visit_all_rec(t->l.get(), sink)) return false;
    return !t->r || visit_all_rec(t->r.get(), sink);
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      std::uint8_t m[kBlock];
      for (std::size_t base = 0; base < t->count; base += kBlock) {
        const std::size_t len = std::min(kBlock, t->count - base);
        leaf_box_mask(t, query, base, len, m);
        for (std::size_t i = 0; i < len; ++i) {
          if (m[i] && !api::sink_accept(sink, t->leaf_point(base + i))) {
            return false;
          }
        }
      }
      return true;
    }
    if (t->l && !range_visit_rec(t->l.get(), query, sink)) return false;
    return !t->r || range_visit_rec(t->r.get(), query, sink);
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      double d2[kBlock];
      for (std::size_t base = 0; base < t->count; base += kBlock) {
        const std::size_t len = std::min(kBlock, t->count - base);
        leaf_dist2(t, q, base, len, d2);
        for (std::size_t i = 0; i < len; ++i) c += d2[i] <= r2 ? 1 : 0;
      }
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += ball_count_rec(t->l.get(), q, r2);
    if (t->r) total += ball_count_rec(t->r.get(), q, r2);
    return total;
  }

  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    par_do([&] { if (t->l) range_visit_par_rec(t->l.get(), query, sink); },
           [&] { if (t->r) range_visit_par_rec(t->r.get(), query, sink); });
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    par_do([&] { if (t->l) ball_visit_par_rec(t->l.get(), q, r2, sink); },
           [&] { if (t->r) ball_visit_par_rec(t->r.get(), q, r2, sink); });
  }

  // Parallel kNN: bound re-read at every node so forked subtrees keep
  // pruning against the best radius found anywhere (see spac_tree.h).
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      leaf_knn_offer(t, q, buf);
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    if (t->count >= fork_grain() && kids[0] && kids[1] &&
        dist[0] < buf.bound() && dist[1] < buf.bound()) {
      par_do([&] { knn_par_rec(kids[order[0]], q, buf); },
             [&] { knn_par_rec(kids[order[1]], q, buf); });
      return;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (c == nullptr || dist[i] >= buf.bound()) continue;
      knn_par_rec(c, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      double d2[kBlock];
      for (std::size_t base = 0; base < t->count; base += kBlock) {
        const std::size_t len = std::min(kBlock, t->count - base);
        leaf_dist2(t, q, base, len, d2);
        for (std::size_t i = 0; i < len; ++i) {
          if (d2[i] <= r2 &&
              !api::sink_accept(sink, t->leaf_point(base + i))) {
            return false;
          }
        }
      }
      return true;
    }
    if (t->l && !ball_visit_rec(t->l.get(), q, r2, sink)) return false;
    return !t->r || ball_visit_rec(t->r.get(), q, r2, sink);
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    return 1 + std::max(height_rec(t->l.get()), height_rec(t->r.get()));
  }

  // Structural invariants with path compression: at an interior splitting
  // on bit b, all codes in the subtree share the bits above b, the left
  // child's codes have bit b clear, and the right child's have it set.
  // Returns (min code, max code) of the subtree.
  std::pair<std::uint64_t, std::uint64_t> check_rec(const Node* t) const {
    if (t->leaf) {
      if (t->count == 0) throw std::logic_error("zd: empty leaf");
      if (t->count > t->cap) {
        throw std::logic_error("zd: leaf count exceeds capacity");
      }
      std::vector<Entry> items(t->count);
      for (std::size_t i = 0; i < t->count; ++i) items[i] = t->leaf_entry(i);
      if (!std::is_sorted(items.begin(), items.end(), entry_less)) {
        throw std::logic_error("zd: leaf not code-sorted");
      }
      box_t bb = box_t::empty();
      for (const auto& e : items) {
        if (e.code != codec_t::encode(e.pt)) {
          throw std::logic_error("zd: stale code");
        }
        bb.expand(e.pt);
      }
      if (!(bb == t->bbox)) throw std::logic_error("zd: leaf bbox not tight");
      return {items.front().code, items.back().code};
    }
    if (!t->l || !t->r) throw std::logic_error("zd: interior missing child");
    if (t->count != t->l->count + t->r->count) {
      throw std::logic_error("zd: interior count mismatch");
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("zd: interior at or below leaf wrap");
    }
    box_t bb = t->l->bbox;
    bb.merge(t->r->bbox);
    if (!(bb == t->bbox)) throw std::logic_error("zd: interior bbox mismatch");
    const auto [lmin, lmax] = check_rec(t->l.get());
    const auto [rmin, rmax] = check_rec(t->r.get());
    const std::uint64_t mask = std::uint64_t{1} << t->bit;
    if ((lmax & mask) != 0 || (rmin & mask) == 0) {
      throw std::logic_error("zd: children on wrong side of split bit");
    }
    if (t->bit < 63 && ((lmin ^ rmax) >> (t->bit + 1)) != 0) {
      throw std::logic_error("zd: subtree does not share prefix above bit");
    }
    return {lmin, rmax};
  }
};

using ZdTree2 = ZdTree<std::int64_t, 2>;
using ZdTree3 = ZdTree<std::int64_t, 3>;

}  // namespace psi
