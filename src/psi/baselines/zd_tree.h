// PSI-Lib: the Zd-tree baseline (Blelloch & Dobson, ALENEX 2022), as
// described in the target paper (Sec 2.3 / Sec 3): an orth-tree driven by
// the Morton curve. Construction *pre-computes* the Morton code of every
// point, comparison-sorts the ⟨code, point⟩ pairs (the extra pass/footprint
// the P-Orth tree eliminates), and then builds the tree by splitting the
// sorted range one code bit per level (a binary orth-tree: D consecutive
// levels form one quad/oct subdivision). Updates sort the batch by code and
// merge it into the tree recursively by code ranges; like all orth-trees
// there is no rebalancing, and the structure is history-independent given
// the code universe.
//
// The paper notes the original Zd-tree code has buggy updates and that its
// authors re-implemented it from the paper; we do the same from the
// description here.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "psi/api/query.h"
#include "psi/geometry/box.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/sfc/codec.h"

namespace psi {

struct ZdParams {
  std::size_t leaf_wrap = 32;  // φ (paper Sec C)
};

template <typename Coord, int D>
class ZdTree {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = sfc::MortonCodec<Coord, D>;

  explicit ZdTree(ZdParams params = {}) : params_(params) {}

  static constexpr int kTopBit = D * sfc::bits_per_dim<D>() - 1;

  // -------------------------------------------------------------------
  // Maintenance
  // -------------------------------------------------------------------

  void build(const std::vector<point_t>& pts) {
    std::vector<Entry> entries = sorted_entries(pts);
    root_ = build_rec(entries.data(), entries.size(), kTopBit);
  }

  void batch_insert(const std::vector<point_t>& pts) {
    if (pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    root_ = insert_rec(std::move(root_), batch.data(), batch.size(), kTopBit);
  }

  void batch_delete(const std::vector<point_t>& pts) {
    if (!root_ || pts.empty()) return;
    std::vector<Entry> batch = sorted_entries(pts);
    root_ = delete_rec(std::move(root_), batch.data(), batch.size());
  }

  // Combined difference (artifact BatchDiff()).
  void batch_diff(const std::vector<point_t>& inserts,
                  const std::vector<point_t>& deletes) {
    batch_delete(deletes);
    batch_insert(inserts);
  }

  void clear() { root_.reset(); }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  std::size_t size() const { return root_ ? root_->count : 0; }
  bool empty() const { return size() == 0; }

  // Tight bounding box of all stored points (empty box when empty). The
  // service layer prunes cross-shard fan-out with it.
  box_t bounds() const { return root_ ? root_->bbox : box_t::empty(); }

  // ---- streaming queries (psi::api sink model; native traversals) -----

  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    if (root_) range_visit_rec(root_.get(), query, sink);
  }

  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    if (root_) ball_visit_rec(root_.get(), q, radius * radius, sink);
  }

  // ---- parallel traversals (psi::api ParallelQueryIndex capability) ---
  // Binary fork over subtrees above the fork grain; sequential visit below
  // it. The sink must tolerate concurrent emission (api::ConcurrentSink).

  template <typename ParSink>
  void range_visit_par(const box_t& query, ParSink& sink) const {
    if (root_) range_visit_par_rec(root_.get(), query, sink);
  }

  template <typename ParSink>
  void ball_visit_par(const point_t& q, double radius, ParSink& sink) const {
    if (root_) ball_visit_par_rec(root_.get(), q, radius * radius, sink);
  }

  // kNN fan-out: fork over both children above the fork grain when each
  // child's bbox can still beat the buffer's shared pruning bound
  // (api::ConcurrentKnnBuffer); sequential nearest-first descent below.
  template <typename ParKnn>
  void knn_visit_par(const point_t& q, std::size_t /*k*/, ParKnn& buf) const {
    if (root_) knn_par_rec(root_.get(), q, buf);
  }

  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    KnnBuffer<point_t> buf(k);
    if (root_) knn_rec(root_.get(), q, buf);
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    return root_ ? count_rec(root_.get(), query) : 0;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    std::vector<point_t> out;
    range_visit(query, api::collect_into(out));
    return out;
  }

  // Ball (radius) queries: points within Euclidean distance `radius` of q.
  std::size_t ball_count(const point_t& q, double radius) const {
    return root_ ? ball_count_rec(root_.get(), q, radius * radius) : 0;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    ball_visit(q, radius, api::collect_into(out));
    return out;
  }

  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    if (root_) collect_points(root_.get(), out);
    return out;
  }

  std::size_t height() const { return height_rec(root_.get()); }

  void check_invariants() const {
    if (root_) check_rec(root_.get());
  }

 private:
  struct Entry {
    std::uint64_t code;
    point_t pt;
  };

  struct Node {
    box_t bbox = box_t::empty();
    std::size_t count = 0;
    bool leaf = true;
    int bit = -1;  // interior: children split on this code bit
    std::unique_ptr<Node> l, r;
    std::vector<Entry> items;  // leaf payload, sorted by code
  };

  ZdParams params_;
  std::unique_ptr<Node> root_;

  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.code != b.code) return a.code < b.code;
    return a.pt < b.pt;
  }

  std::vector<Entry> sorted_entries(const std::vector<point_t>& pts) const {
    // Pre-compute all codes (a full pass over the data), then sort the full
    // ⟨code, point⟩ records — the Zd-tree scheme the paper measures against.
    std::vector<Entry> entries = tabulate<Entry>(pts.size(), [&](std::size_t i) {
      return Entry{codec_t::encode(pts[i]), pts[i]};
    });
    sample_sort(entries, entry_less);
    return entries;
  }

  std::unique_ptr<Node> make_leaf(const Entry* e, std::size_t n) const {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->items.assign(e, e + n);
    std::sort(leaf->items.begin(), leaf->items.end(), entry_less);
    leaf->count = n;
    for (const auto& it : leaf->items) leaf->bbox.expand(it.pt);
    return leaf;
  }

  // Index of the first entry with `bit` set (entries sorted by code).
  static std::size_t split_at_bit(const Entry* e, std::size_t n, int bit) {
    const std::uint64_t mask = std::uint64_t{1} << bit;
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (e[mid].code & mask) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // -------------------------------------------------------------------
  // Construction from a code-sorted range
  // -------------------------------------------------------------------

  std::unique_ptr<Node> build_rec(const Entry* e, std::size_t n,
                                  int bit) const {
    if (n == 0) return nullptr;
    if (n <= params_.leaf_wrap || bit < 0) return make_leaf(e, n);
    const std::size_t m = split_at_bit(e, n, bit);
    if (m == 0 || m == n) {
      // All points on one side of this bit: skip the level without
      // allocating a chain node (path compression).
      return build_rec(e, n, bit - 1);
    }
    auto t = std::make_unique<Node>();
    t->leaf = false;
    t->bit = bit;
    if (n >= update_fork_cutoff()) {
      par_do([&] { t->l = build_rec(e, m, bit - 1); },
             [&] { t->r = build_rec(e + m, n - m, bit - 1); });
    } else {
      t->l = build_rec(e, m, bit - 1);
      t->r = build_rec(e + m, n - m, bit - 1);
    }
    refresh(t.get());
    return t;
  }

  static void refresh(Node* t) {
    t->count = (t->l ? t->l->count : 0) + (t->r ? t->r->count : 0);
    t->bbox = box_t::empty();
    if (t->l) t->bbox.merge(t->l->bbox);
    if (t->r) t->bbox.merge(t->r->bbox);
  }

  // -------------------------------------------------------------------
  // Batch updates (merge by code ranges; no rebalancing)
  // -------------------------------------------------------------------

  // `bit` is the highest code bit not yet consumed on this path; with path
  // compression an interior node may sit at a lower bit than that — the
  // batch is then split at the node's own bit.
  std::unique_ptr<Node> insert_rec(std::unique_ptr<Node> t, Entry* batch,
                                   std::size_t n, int bit) {
    if (n == 0) return t;
    if (!t) return build_rec(batch, n, bit);
    if (t->leaf) {
      // Merge into the leaf; rebuild the subtree if it overflows.
      std::vector<Entry> all;
      all.reserve(t->count + n);
      std::merge(t->items.begin(), t->items.end(), batch, batch + n,
                 std::back_inserter(all), entry_less);
      if (all.size() <= params_.leaf_wrap) {
        t->items = std::move(all);
        t->count = t->items.size();
        t->bbox = box_t::empty();
        for (const auto& it : t->items) t->bbox.expand(it.pt);
        return t;
      }
      return build_rec(all.data(), all.size(), bit);
    }
    // Interior. With path compression, batch points may diverge from the
    // subtree's code prefix above t->bit; rebuilding the (prefix) structure
    // is done by re-splitting at every bit from `bit` down to t->bit.
    if (bit > t->bit) {
      const std::size_t m = split_at_bit(batch, n, bit);
      // Does the subtree lie on the 0-side or the 1-side of `bit`? Compare
      // against any code in the subtree.
      const bool subtree_high = (leftmost_code(t.get()) >> bit) & 1;
      if (!subtree_high) {
        if (m == n) return insert_rec(std::move(t), batch, n, bit - 1);
        auto r = build_rec(batch + m, n - m, bit - 1);
        auto l = insert_rec(std::move(t), batch, m, bit - 1);
        return make_interior(bit, std::move(l), std::move(r));
      }
      if (m == 0) return insert_rec(std::move(t), batch, n, bit - 1);
      auto l = build_rec(batch, m, bit - 1);
      auto r = insert_rec(std::move(t), batch + m, n - m, bit - 1);
      return make_interior(bit, std::move(l), std::move(r));
    }
    const std::size_t m = split_at_bit(batch, n, t->bit);
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    if (n >= update_fork_cutoff()) {
      par_do([&] { nl = insert_rec(std::move(nl), batch, m, t->bit - 1); },
             [&] {
               nr = insert_rec(std::move(nr), batch + m, n - m, t->bit - 1);
             });
    } else {
      nl = insert_rec(std::move(nl), batch, m, t->bit - 1);
      nr = insert_rec(std::move(nr), batch + m, n - m, t->bit - 1);
    }
    t->l = std::move(nl);
    t->r = std::move(nr);
    refresh(t.get());
    return t;
  }

  std::unique_ptr<Node> make_interior(int bit, std::unique_ptr<Node> l,
                                      std::unique_ptr<Node> r) const {
    if (!l) return r;
    if (!r) return l;
    auto t = std::make_unique<Node>();
    t->leaf = false;
    t->bit = bit;
    t->l = std::move(l);
    t->r = std::move(r);
    refresh(t.get());
    return t;
  }

  static std::uint64_t leftmost_code(const Node* t) {
    while (!t->leaf) t = t->l ? t->l.get() : t->r.get();
    return t->items.front().code;
  }

  std::unique_ptr<Node> delete_rec(std::unique_ptr<Node> t, Entry* batch,
                                   std::size_t n) {
    if (!t || n == 0) return t;
    if (t->leaf) {
      for (std::size_t i = 0; i < n; ++i) {
        auto it = std::find_if(t->items.begin(), t->items.end(),
                               [&](const Entry& e) {
                                 return e.code == batch[i].code &&
                                        e.pt == batch[i].pt;
                               });
        if (it != t->items.end()) t->items.erase(it);
      }
      if (t->items.empty()) return nullptr;
      t->count = t->items.size();
      t->bbox = box_t::empty();
      for (const auto& it : t->items) t->bbox.expand(it.pt);
      return t;
    }
    const std::size_t m = split_at_bit(batch, n, t->bit);
    std::unique_ptr<Node> nl = std::move(t->l), nr = std::move(t->r);
    if (n >= update_fork_cutoff()) {
      par_do([&] { nl = delete_rec(std::move(nl), batch, m); },
             [&] { nr = delete_rec(std::move(nr), batch + m, n - m); });
    } else {
      nl = delete_rec(std::move(nl), batch, m);
      nr = delete_rec(std::move(nr), batch + m, n - m);
    }
    if (!nl) return nr;
    if (!nr) return nl;
    t->l = std::move(nl);
    t->r = std::move(nr);
    refresh(t.get());
    if (t->count <= params_.leaf_wrap) {
      std::vector<Entry> rest;
      rest.reserve(t->count);
      collect_entries(t.get(), rest);
      return make_leaf(rest.data(), rest.size());
    }
    return t;
  }

  static void collect_entries(const Node* t, std::vector<Entry>& out) {
    if (t->leaf) {
      out.insert(out.end(), t->items.begin(), t->items.end());
      return;
    }
    if (t->l) collect_entries(t->l.get(), out);
    if (t->r) collect_entries(t->r.get(), out);
  }

  static void collect_points(const Node* t, std::vector<point_t>& out) {
    if (t->leaf) {
      for (const auto& e : t->items) out.push_back(e.pt);
      return;
    }
    if (t->l) collect_points(t->l.get(), out);
    if (t->r) collect_points(t->r.get(), out);
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  void knn_rec(const Node* t, const point_t& q, KnnBuffer<point_t>& buf) const {
    if (t->leaf) {
      for (const auto& e : t->items) buf.offer(squared_distance(e.pt, q), e.pt);
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (!c) continue;
      if (buf.full() && dist[i] >= buf.worst()) continue;
      knn_rec(c, q, buf);
    }
  }

  std::size_t count_rec(const Node* t, const box_t& query) const {
    if (!query.intersects(t->bbox)) return 0;
    if (query.contains(t->bbox)) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& e : t->items) c += query.contains(e.pt) ? 1 : 0;
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += count_rec(t->l.get(), query);
    if (t->r) total += count_rec(t->r.get(), query);
    return total;
  }

  // Stream every point of the subtree; false = sink stopped the walk.
  template <typename Sink>
  static bool visit_all_rec(const Node* t, Sink& sink) {
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (!api::sink_accept(sink, e.pt)) return false;
      }
      return true;
    }
    if (t->l && !visit_all_rec(t->l.get(), sink)) return false;
    return !t->r || visit_all_rec(t->r.get(), sink);
  }

  template <typename Sink>
  bool range_visit_rec(const Node* t, const box_t& query, Sink& sink) const {
    if (!query.intersects(t->bbox)) return true;
    if (query.contains(t->bbox)) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (query.contains(e.pt) && !api::sink_accept(sink, e.pt)) {
          return false;
        }
      }
      return true;
    }
    if (t->l && !range_visit_rec(t->l.get(), query, sink)) return false;
    return !t->r || range_visit_rec(t->r.get(), query, sink);
  }

  std::size_t ball_count_rec(const Node* t, const point_t& q,
                             double r2) const {
    if (min_squared_distance(t->bbox, q) > r2) return 0;
    if (max_squared_distance(t->bbox, q) <= r2) return t->count;
    if (t->leaf) {
      std::size_t c = 0;
      for (const auto& e : t->items) {
        c += squared_distance(e.pt, q) <= r2 ? 1 : 0;
      }
      return c;
    }
    std::size_t total = 0;
    if (t->l) total += ball_count_rec(t->l.get(), q, r2);
    if (t->r) total += ball_count_rec(t->r.get(), q, r2);
    return total;
  }

  template <typename ParSink>
  void range_visit_par_rec(const Node* t, const box_t& query,
                           ParSink& sink) const {
    if (sink.stopped() || !query.intersects(t->bbox)) return;
    if (t->leaf || t->count < fork_grain()) {
      range_visit_rec(t, query, sink);
      return;
    }
    par_do([&] { if (t->l) range_visit_par_rec(t->l.get(), query, sink); },
           [&] { if (t->r) range_visit_par_rec(t->r.get(), query, sink); });
  }

  template <typename ParSink>
  void ball_visit_par_rec(const Node* t, const point_t& q, double r2,
                          ParSink& sink) const {
    if (sink.stopped() || min_squared_distance(t->bbox, q) > r2) return;
    if (t->leaf || t->count < fork_grain()) {
      ball_visit_rec(t, q, r2, sink);
      return;
    }
    par_do([&] { if (t->l) ball_visit_par_rec(t->l.get(), q, r2, sink); },
           [&] { if (t->r) ball_visit_par_rec(t->r.get(), q, r2, sink); });
  }

  // Parallel kNN: bound re-read at every node so forked subtrees keep
  // pruning against the best radius found anywhere (see spac_tree.h).
  template <typename ParKnn>
  void knn_par_rec(const Node* t, const point_t& q, ParKnn& buf) const {
    if (min_squared_distance(t->bbox, q) >= buf.bound()) return;
    if (t->leaf) {
      for (const auto& e : t->items) {
        buf.offer(squared_distance(e.pt, q), e.pt);
      }
      return;
    }
    const Node* kids[2] = {t->l.get(), t->r.get()};
    double dist[2] = {kids[0] ? min_squared_distance(kids[0]->bbox, q) : 0,
                      kids[1] ? min_squared_distance(kids[1]->bbox, q) : 0};
    int order[2] = {0, 1};
    if (kids[0] && kids[1] && dist[1] < dist[0]) {
      order[0] = 1;
      order[1] = 0;
    }
    if (t->count >= fork_grain() && kids[0] && kids[1] &&
        dist[0] < buf.bound() && dist[1] < buf.bound()) {
      par_do([&] { knn_par_rec(kids[order[0]], q, buf); },
             [&] { knn_par_rec(kids[order[1]], q, buf); });
      return;
    }
    for (int i : order) {
      const Node* c = kids[i];
      if (c == nullptr || dist[i] >= buf.bound()) continue;
      knn_par_rec(c, q, buf);
    }
  }

  template <typename Sink>
  bool ball_visit_rec(const Node* t, const point_t& q, double r2,
                      Sink& sink) const {
    if (min_squared_distance(t->bbox, q) > r2) return true;
    if (max_squared_distance(t->bbox, q) <= r2) return visit_all_rec(t, sink);
    if (t->leaf) {
      for (const auto& e : t->items) {
        if (squared_distance(e.pt, q) <= r2 &&
            !api::sink_accept(sink, e.pt)) {
          return false;
        }
      }
      return true;
    }
    if (t->l && !ball_visit_rec(t->l.get(), q, r2, sink)) return false;
    return !t->r || ball_visit_rec(t->r.get(), q, r2, sink);
  }

  static std::size_t height_rec(const Node* t) {
    if (!t) return 0;
    if (t->leaf) return 1;
    return 1 + std::max(height_rec(t->l.get()), height_rec(t->r.get()));
  }

  // Structural invariants with path compression: at an interior splitting
  // on bit b, all codes in the subtree share the bits above b, the left
  // child's codes have bit b clear, and the right child's have it set.
  // Returns (min code, max code) of the subtree.
  std::pair<std::uint64_t, std::uint64_t> check_rec(const Node* t) const {
    if (t->leaf) {
      if (t->count != t->items.size()) {
        throw std::logic_error("zd: leaf count mismatch");
      }
      if (t->count == 0) throw std::logic_error("zd: empty leaf");
      if (!std::is_sorted(t->items.begin(), t->items.end(), entry_less)) {
        throw std::logic_error("zd: leaf not code-sorted");
      }
      box_t bb = box_t::empty();
      for (const auto& e : t->items) {
        if (e.code != codec_t::encode(e.pt)) {
          throw std::logic_error("zd: stale code");
        }
        bb.expand(e.pt);
      }
      if (!(bb == t->bbox)) throw std::logic_error("zd: leaf bbox not tight");
      return {t->items.front().code, t->items.back().code};
    }
    if (!t->l || !t->r) throw std::logic_error("zd: interior missing child");
    if (t->count != t->l->count + t->r->count) {
      throw std::logic_error("zd: interior count mismatch");
    }
    if (t->count <= params_.leaf_wrap) {
      throw std::logic_error("zd: interior at or below leaf wrap");
    }
    box_t bb = t->l->bbox;
    bb.merge(t->r->bbox);
    if (!(bb == t->bbox)) throw std::logic_error("zd: interior bbox mismatch");
    const auto [lmin, lmax] = check_rec(t->l.get());
    const auto [rmin, rmax] = check_rec(t->r.get());
    const std::uint64_t mask = std::uint64_t{1} << t->bit;
    if ((lmax & mask) != 0 || (rmin & mask) == 0) {
      throw std::logic_error("zd: children on wrong side of split bit");
    }
    if (t->bit < 63 && ((lmin ^ rmax) >> (t->bit + 1)) != 0) {
      throw std::logic_error("zd: subtree does not share prefix above bit");
    }
    return {lmin, rmax};
  }
};

using ZdTree2 = ZdTree<std::int64_t, 2>;
using ZdTree3 = ZdTree<std::int64_t, 3>;

}  // namespace psi
