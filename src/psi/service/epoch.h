// PSI-Lib service layer: epoch-based snapshot versioning.
//
// The service publishes an immutable *view* (shard map + per-shard index
// snapshots) per commit epoch. Readers acquire the current view with one
// atomic shared_ptr load and run an entire query against it; the writer
// publishes the next epoch with one atomic store. Readers therefore never
// block the writer and the writer never blocks readers — the only
// synchronisation point is reclamation: before the writer may *mutate* a
// retired instance (the ping-pong standby, see group_commit.h) it must wait
// for the instance to become quiescent, i.e. for every reader that acquired
// an older epoch to drop its reference. This is the classical grace period
// of epoch-based reclamation (RCU): in steady state a query finishes well
// within one commit interval, so the wait is almost always zero.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace psi::service {

// Monotone epoch counter. One increment per published commit group.
class EpochCounter {
 public:
  std::uint64_t current() const { return epoch_.load(std::memory_order_acquire); }
  std::uint64_t advance() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
};

// Atomically published snapshot slot. `T` is an immutable view object; the
// slot owns the current version and hands out shared references to readers.
//
// std::atomic<std::shared_ptr> would do, but a spinlocked slot keeps us
// independent of libstdc++'s free-function availability and the hot path is
// two refcount operations either way.
template <typename T>
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  explicit SnapshotSlot(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {}

  // Reader side: grab a reference to the current version.
  std::shared_ptr<const T> acquire() const {
    std::lock_guard<SpinLock> g(lock_);
    return current_;
  }

  // Writer side: publish a new version; the previous version stays alive
  // until the last reader drops it.
  void publish(std::shared_ptr<const T> next) {
    std::shared_ptr<const T> old;  // destroyed outside the lock
    {
      std::lock_guard<SpinLock> g(lock_);
      old = std::move(current_);
      current_ = std::move(next);
    }
  }

 private:
  struct SpinLock {
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
        while (flag.test(std::memory_order_relaxed)) {
        }
#endif
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
  };

  mutable SpinLock lock_;
  std::shared_ptr<const T> current_;
};

// Bounded ring of recently published views, keyed by epoch: the retention
// half of pinned-epoch reads (api::ReadOptions). The writer retains every
// published view; once the ring exceeds its depth the *oldest entry is
// dropped* — retention never blocks the committer. Dropping an entry only
// releases a reference: a pinned reader that acquired the view earlier
// keeps it alive through its own shared_ptr (the usual RCU discipline);
// what a dropped epoch loses is *discoverability* — at() returns nullptr
// and the service surfaces EpochRetired.
//
// Note the write-path cost of depth > 1: a retained view pins the replica
// that the ping-pong writer would otherwise recycle as its standby, so
// every commit to a recently-touched shard rebuilds the standby instead of
// replaying onto it (`replica_rebuilds` in stats). That is the honest price
// of multi-version reads on a two-replica store; depth 1 (the default)
// retains only the live view and leaves the write path untouched.
template <typename T>
class RetainedViews {
 public:
  explicit RetainedViews(std::size_t depth = 1) : depth_(depth ? depth : 1) {}

  std::size_t depth() const { return depth_; }

  // Writer side: remember `view` as the publication of `epoch`, evicting
  // the oldest entry beyond the depth. Epochs must be retained in
  // increasing order (they are: publication is serialised).
  void retain(std::uint64_t epoch, std::shared_ptr<const T> view) {
    std::lock_guard<std::mutex> g(mu_);
    ring_.push_back(Slot{epoch, std::move(view)});
    while (ring_.size() > depth_) ring_.pop_front();
  }

  // Reader side: the retained view of exactly `epoch`, or nullptr if it
  // was never retained / already evicted.
  std::shared_ptr<const T> at(std::uint64_t epoch) const {
    std::lock_guard<std::mutex> g(mu_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      if (it->epoch == epoch) return it->view;
      if (it->epoch < epoch) break;  // ring is sorted by epoch
    }
    return nullptr;
  }

  // Reader side: every retained view, newest first (the distributed host
  // searches these for an exact shard-version match, see node.h).
  std::vector<std::shared_ptr<const T>> all() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::shared_ptr<const T>> out;
    out.reserve(ring_.size());
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      out.push_back(it->view);
    }
    return out;
  }

 private:
  struct Slot {
    std::uint64_t epoch;
    std::shared_ptr<const T> view;
  };

  mutable std::mutex mu_;
  std::deque<Slot> ring_;
  std::size_t depth_;
};

// Reclamation guard: wait until `handle` is the only remaining reference
// to its object, i.e. all readers of older epochs have finished. Returns
// {quiesced, iterations spent waiting} — 0 iterations in the uncontended
// steady state; the service surfaces the total in stats as `grace_yields`.
//
// The wait is *bounded* (`max_iters`): a reader that pins an old snapshot
// indefinitely — including the degenerate case of the committing thread
// itself holding one — must not wedge the writer, so on timeout the caller
// abandons the pinned replica and clones a fresh one instead (see
// group_commit.h, `replica_rebuilds` in stats).
struct GraceResult {
  bool quiesced = true;
  std::uint64_t iters = 0;
};

// `allowed_refs` is the number of references that legitimately remain when
// the object is quiescent: 1 for a caller holding the only handle, 2 when a
// detached task holds its own copy alongside the owning slot (the pipelined
// replay of group_commit.h).
template <typename T>
GraceResult await_quiescent(const std::shared_ptr<T>& handle,
                            std::uint64_t max_iters = 4096,
                            long allowed_refs = 1) {
  GraceResult r;
  // use_count is approximate under concurrency in general, but here it can
  // only *decrease* once the slot no longer hands the pointer out (the
  // writer re-published a newer version first), so ==allowed_refs is a
  // stable state.
  while (handle.use_count() > allowed_refs) {
    if (r.iters >= max_iters) {
      r.quiesced = false;
      return r;
    }
    ++r.iters;
    if (r.iters < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // The poll above observes the departed readers' release-decrements with
  // a plain load, which does NOT synchronize — without an acquire edge the
  // caller's subsequent mutation of *handle formally races with the
  // readers' final accesses (ThreadSanitizer flags exactly this). A
  // copy+drop of the handle is an acq-rel RMW pair on the same refcount,
  // so it reads the tail of the readers' release sequence and acquires it:
  // everything a departed reader did before releasing now happens-before
  // the mutation. (An atomic_thread_fence(acquire) would also be correct,
  // but TSan does not reliably model bare fences.)
  std::shared_ptr<T> acquire_edge = handle;
  acquire_edge.reset();
  return r;
}

}  // namespace psi::service
