// PSI-Lib service layer: the replica slot store.
//
// A ShardStore owns the *physical* side of a set of shards: for each slot a
// ping-pong replica pair (live + standby), the pending log between them,
// and the in-flight asynchronous standby replay. It is the piece of the
// group-commit writer that is purely about replica mechanics — grace
// periods, replica rebuilds when a pinned reader wedges the standby, the
// pipelined replay — with no knowledge of shard *identity*: which code
// range, key, owner node, or version a slot corresponds to is its caller's
// business (GroupCommitter keeps slots positionally aligned with its
// ShardDirectory; a net::ShardHost keys them by global shard key).
//
// Extracted from GroupCommitter so the same replica discipline runs both
// in the single-process service and on every node of the distributed
// service: a remote commit batch shipped to a ShardHost lands in exactly
// this apply() — settle the replay, wait the grace period, replay the
// pending log, apply the new runs, swap live — that the in-process writer
// uses.
//
// Thread contract: all mutating calls (apply, insert/erase/replace,
// spawn_replays, settle_all, clear) must be externally serialised per
// store, except that apply() on *distinct* slots may run concurrently
// (the parallel per-shard commit). Readers never touch the store; they
// hold shared_ptrs to live replicas published elsewhere (snapshot.h /
// node.h), which is what the grace periods wait out.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "psi/parallel/task_group.h"
#include "psi/service/epoch.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/trace.h"

namespace psi::service {

// A maximal run of same-kind update ops, in FIFO order. The unit of both
// the pending log and the wire format for remote commit batches (wire.h).
template <typename PointT>
struct OpRun {
  bool is_delete = false;
  std::vector<PointT> pts;
};

template <typename Index>
class ShardStore {
 public:
  using point_t = typename Index::point_t;
  using run_t = OpRun<point_t>;
  // Per-shard factory: Index(factory_id). With Index = api::AnyIndex the
  // id selects the backend type; a slot's replicas always come from the
  // same id so live and standby stay the same backend.
  using factory_t = std::function<Index(std::size_t)>;

  explicit ShardStore(factory_t factory, bool pipelined = true)
      : factory_(std::move(factory)), pipelined_(pipelined) {}

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  ~ShardStore() {
    // Outstanding replay tasks reference replica handles; join them before
    // the slots go away. Task exceptions die with the store.
    for (auto& s : slots_) {
      try {
        s.replay.join();
      } catch (...) {
      }
    }
  }

  std::size_t num_slots() const { return slots_.size(); }

  // -------------------------------------------------------------------
  // Slot lifecycle
  // -------------------------------------------------------------------

  // K fresh empty slots with factory ids 0..k-1 (service construction).
  void init_empty(std::size_t k) {
    clear();
    slots_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      slots_[i].origin = i;
      slots_[i].live = make_index(i);
      slots_[i].standby = make_index(i);
    }
  }

  // Settle every replay and drop all slots (bulk load is about to replace
  // them wholesale). Returns the settled replays' grace yields.
  std::uint64_t clear() {
    const std::uint64_t yields = settle_all();
    slots_.clear();
    return yields;
  }

  // Resize to k default (empty, replica-less) slots; pair with
  // build_slot_at from a parallel loop. Settles any in-flight replays
  // first and returns their grace yields.
  std::uint64_t resize_slots(std::size_t k) {
    const std::uint64_t yields = clear();
    slots_.resize(k);
    return yields;
  }

  // Build slot i's replica pair from `pts`. Safe concurrently on distinct
  // slots (the bulk-load partition loop).
  void build_slot_at(std::size_t i, const std::vector<point_t>& pts,
                     std::size_t factory_id) {
    slots_[i] = build_slot(pts, factory_id);
  }

  // Insert a freshly built slot at `pos` (split/merge restructuring).
  void insert_slot(std::size_t pos, const std::vector<point_t>& pts,
                   std::size_t factory_id) {
    slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                  build_slot(pts, factory_id));
  }

  // Replace the slot at `pos` with a rebuilt one. The old slot's in-flight
  // replay joins implicitly through move-assignment.
  void replace_slot(std::size_t pos, const std::vector<point_t>& pts,
                    std::size_t factory_id) {
    slots_[pos] = build_slot(pts, factory_id);
  }

  // Erase the slot at `pos`; its in-flight replay joins in the destructor
  // and in-flight *readers* of the live replica stay safe through their
  // own shared_ptr (the RCU grace discipline — dropping a slot never
  // frees a replica a reader still pins).
  void erase_slot(std::size_t pos) {
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  // -------------------------------------------------------------------
  // Observers
  // -------------------------------------------------------------------

  const std::shared_ptr<Index>& live(std::size_t i) const {
    return slots_[i].live;
  }
  std::size_t size_of(std::size_t i) const { return slots_[i].live->size(); }
  std::vector<point_t> flatten(std::size_t i) const {
    return slots_[i].live->flatten();
  }
  // Factory id slot i's replicas were created with (a shard handoff ships
  // this along so the destination rebuilds the same backend type).
  std::size_t origin_of(std::size_t i) const { return slots_[i].origin; }
  // Split-attempt memo (see GroupCommitter::rebalance).
  std::size_t unsplittable_at(std::size_t i) const {
    return slots_[i].unsplittable_at;
  }
  void set_unsplittable_at(std::size_t i, std::size_t n) {
    slots_[i].unsplittable_at = n;
  }
  std::uint64_t replica_rebuilds() const {
    return replica_rebuilds_.load(std::memory_order_relaxed);
  }

  // Telemetry sink for grace/replay stage timings. Shared (not owned):
  // detached replay tasks copy the shared_ptr so the histograms outlive
  // whichever of store and owner dies first.
  void set_metrics(std::shared_ptr<telemetry::ServiceMetrics> m) {
    metrics_ = std::move(m);
  }

  // Tell the store that published views are *retained* beyond the current
  // epoch (ServiceConfig::retained_epochs > 1). A retained view pins the
  // replica the ping-pong writer wants to recycle, so for recently-touched
  // shards the grace wait can never succeed: shrink it to a few yields
  // (cold shards still quiesce on the first check) and fall straight
  // through to the replica rebuild, and skip the pipelined replays whose
  // grace wait would only park a pool worker. Retention must never block
  // the committer — this is the mechanism.
  void set_retention_pinned(bool pinned) { retention_pinned_ = pinned; }

  // -------------------------------------------------------------------
  // The commit path
  // -------------------------------------------------------------------

  // Replay + apply on slot i's standby replica, then swap it live. Safe
  // concurrently on distinct slots. Returns grace-period yields.
  std::uint64_t apply(std::size_t i, std::vector<run_t> group_runs) {
    ShardSlot& s = slots_[i];
    std::uint64_t yields = settle_replay(s);
    if (!s.standby_caught_up) {
      telemetry::ScopedTimer grace_timer(
          metrics_ ? &metrics_->stage_hist(telemetry::Stage::kGrace)
                   : nullptr);
      const GraceResult grace = await_quiescent(
          s.standby, retention_pinned_ ? kPinnedGraceIters : 4096);
      yields += grace.iters;
      if (!grace.quiesced) {
        // A stale reader (possibly this very thread, holding a snapshot
        // across a flush) pins the replica: abandon it and clone live,
        // which already contains the pending log.
        s.standby = make_index(s.origin);
        s.standby->build(s.live->flatten());
        s.pending.clear();
        ++replica_rebuilds_;
      }
    }
    Index& idx = *s.standby;
    for (const run_t& run : s.pending) apply_run(idx, run);
    for (const run_t& run : group_runs) apply_run(idx, run);
    std::swap(s.live, s.standby);
    s.pending = std::move(group_runs);
    s.standby_caught_up = false;  // the new standby is the just-retired live
    return yields;
  }

  // Pipeline stage 2: spawn the asynchronous standby replays for every
  // slot with a pending log. Call after the new live replicas are
  // published, so the grace period the tasks wait out is the one the
  // publication started. With a sequential pool a spawn would execute
  // inline — all cost, no overlap — so fall back to the classic lazy
  // replay-on-next-commit there.
  void spawn_replays() {
    if (!pipelined_ || num_workers() <= 1 || retention_pinned_) return;
    for (auto& s : slots_) {
      if (s.pending.empty() || s.replay.valid() || s.standby_caught_up) {
        continue;
      }
      s.replay_out = std::make_shared<ReplayOutcome>();
      // The runs MOVE into shared ownership (settle_replay moves them back
      // on failure); the standby handle is copied, so the grace wait
      // allows exactly one extra reference — the task's own.
      s.replay_runs =
          std::make_shared<std::vector<run_t>>(std::move(s.pending));
      s.pending.clear();  // moved-from; make the empty state explicit
      s.replay = AsyncTask([out = s.replay_out, standby = s.standby,
                            runs = s.replay_runs, metrics = metrics_] {
        PSI_TRACE_SPAN("replay");
        telemetry::ScopedTimer timer(
            metrics ? &metrics->stage_hist(telemetry::Stage::kReplay)
                    : nullptr);
        // Smaller grace budget than the inline path (4096): a task that
        // cannot quiesce is parking a pool *worker* in the sleep loop, so
        // give up after ~50ms and let the next write retry inline with
        // the full budget. Uncontended replays exit in a few iterations
        // either way.
        const GraceResult grace =
            await_quiescent(standby, 1024, /*allowed_refs=*/2);
        out->yields = grace.iters;
        if (!grace.quiesced) return;
        for (const run_t& run : *runs) apply_run(*standby, run);
        out->replayed = true;
      });
    }
  }

  // Join every in-flight replay task; returns total yields. Needed when
  // the slot array is restructured wholesale (load); individual slot
  // rebuilds join their own task through AsyncTask move-assign/destruction.
  std::uint64_t settle_all() {
    std::uint64_t yields = 0;
    for (auto& s : slots_) yields += settle_replay(s);
    return yields;
  }

 private:
  // Grace budget under view retention: pure yields, no sleeps (see
  // await_quiescent — iterations < 64 only yield), so a pinned standby
  // costs microseconds before the rebuild, not the 4096-iteration
  // sleep-wait of the default budget.
  static constexpr std::uint64_t kPinnedGraceIters = 48;

  // What a detached replay task reports back (shared with the slot so the
  // task stays self-contained if the slot moves in the meantime).
  struct ReplayOutcome {
    bool replayed = false;
    std::uint64_t yields = 0;
  };

  struct ShardSlot {
    std::shared_ptr<Index> live;     // state as of the last publication
    std::shared_ptr<Index> standby;  // lags live by exactly the pending log
    std::vector<run_t> pending;      // runs applied to live but not standby
    // Factory id this slot's replicas were created with; replica rebuilds
    // reuse it so live and standby stay the same backend type even after
    // later splits/merges shifted the slot's position.
    std::size_t origin = 0;
    // Size at which the last split attempt failed (one giant equal-code
    // run). Skips re-paying flatten+sort every commit until the shard's
    // population actually changes.
    std::size_t unsplittable_at = 0;
    // Pipeline stage 2: the in-flight asynchronous replay of the pending
    // runs onto the standby, spawned right after publication. While a task
    // is in flight the runs live in `replay_runs` (shared with the closure
    // — moved there, not copied, and moved back into `pending` if the
    // replay fails); the task never holds a pointer into this slot, so a
    // slot is free to move while its task runs. `standby_caught_up`
    // records a successful replay: the standby equals live and is
    // quiescent.
    AsyncTask replay;
    std::shared_ptr<std::vector<run_t>> replay_runs;
    std::shared_ptr<ReplayOutcome> replay_out;
    bool standby_caught_up = false;
  };

  std::shared_ptr<Index> make_index(std::size_t factory_id) const {
    return std::make_shared<Index>(factory_(factory_id));
  }

  ShardSlot build_slot(const std::vector<point_t>& pts,
                       std::size_t factory_id) const {
    ShardSlot s;
    s.origin = factory_id;
    s.live = make_index(factory_id);
    s.live->build(pts);
    s.standby = make_index(factory_id);
    s.standby->build(pts);
    return s;
  }

  // Join the slot's in-flight replay task (if any) and fold its outcome
  // into the slot: on success the pending log is already on the standby
  // and the grace period has passed; on failure the runs move back into
  // `pending` for the inline slow path. Returns the task's yields.
  std::uint64_t settle_replay(ShardSlot& s) {
    if (!s.replay.valid()) return 0;
    // Fold the outcome into the slot before rethrowing a task exception:
    // the pending log must survive a failed replay (same post-exception
    // state as the inline writer — live intact, pending intact, standby
    // possibly part-applied) instead of being silently dropped.
    std::exception_ptr err;
    try {
      s.replay.join();
    } catch (...) {
      err = std::current_exception();
    }
    std::uint64_t yields = 0;
    if (s.replay_out) {
      yields = s.replay_out->yields;
      if (!err && s.replay_out->replayed) {
        s.standby_caught_up = true;
      } else if (s.replay_runs) {
        s.pending = std::move(*s.replay_runs);
      }
      s.replay_out.reset();
    }
    s.replay_runs.reset();
    if (err) std::rethrow_exception(err);
    return yields;
  }

  static void apply_run(Index& idx, const run_t& run) {
    if (run.pts.empty()) return;
    if (run.is_delete) {
      idx.batch_delete(run.pts);
    } else {
      idx.batch_insert(run.pts);
    }
  }

  factory_t factory_;
  bool pipelined_ = true;
  bool retention_pinned_ = false;
  std::shared_ptr<telemetry::ServiceMetrics> metrics_;
  std::vector<ShardSlot> slots_;
  // Incremented from the parallel per-shard apply, hence atomic.
  std::atomic<std::uint64_t> replica_rebuilds_{0};
};

}  // namespace psi::service
