// PSI-Lib service layer: the replica slot store.
//
// A ShardStore owns the *physical* side of a set of shards: for each slot a
// ping-pong replica pair (live + standby), the pending log between them,
// and the in-flight asynchronous standby replay. It is the piece of the
// group-commit writer that is purely about replica mechanics — grace
// periods, replica rebuilds when a pinned reader wedges the standby, the
// pipelined replay — with no knowledge of shard *identity*: which code
// range, key, owner node, or version a slot corresponds to is its caller's
// business (GroupCommitter keeps slots positionally aligned with its
// ShardDirectory; a net::ShardHost keys them by global shard key).
//
// Extracted from GroupCommitter so the same replica discipline runs both
// in the single-process service and on every node of the distributed
// service: a remote commit batch shipped to a ShardHost lands in exactly
// this apply() — settle the replay, wait the grace period, replay the
// pending log, apply the new runs, swap live — that the in-process writer
// uses.
//
// Thread contract: all mutating calls (apply, insert/erase/replace,
// spawn_replays, settle_all, clear) must be externally serialised per
// store, except that apply() on *distinct* slots may run concurrently
// (the parallel per-shard commit). Readers never touch the store; they
// hold shared_ptrs to live replicas published elsewhere (snapshot.h /
// node.h), which is what the grace periods wait out.

#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "psi/api/concepts.h"
#include "psi/parallel/task_group.h"
#include "psi/service/epoch.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/trace.h"

namespace psi::service {

// ---------------------------------------------------------------------------
// Relocatable-arena dispatch (api::RelocatableIndex, core/arena)
// ---------------------------------------------------------------------------
// One set of helpers usable with both concrete backends (capability known at
// compile time) and api::AnyIndex (capability is the wrapped backend's — a
// runtime relocatable() flag). Callers gate on index_relocatable() and only
// then touch the arena calls; the if-constexpr branches compile out entirely
// for backends without the capability.

template <typename Index>
inline bool index_relocatable(const Index& idx) {
  if constexpr (requires(const Index& c) {
                  { c.relocatable() } -> std::convertible_to<bool>;
                }) {
    return idx.relocatable();  // AnyIndex: ask the wrapped backend
  } else {
    (void)idx;
    return api::RelocatableIndex<Index>;
  }
}

template <typename Index>
inline std::vector<std::uint8_t> serialize_index_arena(const Index& idx) {
  if constexpr (api::RelocatableIndex<Index>) {
    return idx.serialize_arena();
  } else {
    (void)idx;
    return {};
  }
}

template <typename Index>
inline void adopt_index_arena(Index& idx, const std::uint8_t* data,
                              std::size_t n) {
  if constexpr (api::RelocatableIndex<Index>) {
    idx.adopt_arena(data, n);  // AnyIndex throws if the backend can't
  } else {
    (void)idx;
    (void)data;
    (void)n;
    // Routing an arena image at a backend without the capability is a
    // caller bug (callers gate on index_relocatable), never data loss.
    throw std::logic_error("adopt_index_arena: backend is not relocatable");
  }
}

template <typename Index>
inline std::size_t index_arena_bytes(const Index& idx) {
  if constexpr (api::RelocatableIndex<Index>) {
    return index_relocatable(idx) ? idx.arena_bytes() : 0;
  } else {
    (void)idx;
    return 0;
  }
}

template <typename Index>
inline std::size_t index_arena_chunks(const Index& idx) {
  if constexpr (api::RelocatableIndex<Index>) {
    return index_relocatable(idx) ? idx.arena_chunks() : 0;
  } else {
    (void)idx;
    return 0;
  }
}

// A maximal run of same-kind update ops, in FIFO order. The unit of both
// the pending log and the wire format for remote commit batches (wire.h).
template <typename PointT>
struct OpRun {
  bool is_delete = false;
  std::vector<PointT> pts;
};

template <typename Index>
class ShardStore {
 public:
  using point_t = typename Index::point_t;
  using run_t = OpRun<point_t>;
  // Per-shard factory: Index(factory_id). With Index = api::AnyIndex the
  // id selects the backend type; a slot's replicas always come from the
  // same id so live and standby stay the same backend.
  using factory_t = std::function<Index(std::size_t)>;

  explicit ShardStore(factory_t factory, bool pipelined = true)
      : factory_(std::move(factory)), pipelined_(pipelined) {}

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  ~ShardStore() {
    // Outstanding replay tasks reference replica handles; join them before
    // the slots go away. Task exceptions die with the store.
    for (auto& s : slots_) {
      try {
        s.replay.join();
      } catch (...) {
      }
    }
  }

  std::size_t num_slots() const { return slots_.size(); }

  // -------------------------------------------------------------------
  // Slot lifecycle
  // -------------------------------------------------------------------

  // K fresh empty slots with factory ids 0..k-1 (service construction).
  void init_empty(std::size_t k) {
    clear();
    slots_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      slots_[i].origin = i;
      slots_[i].live = make_index(i);
      slots_[i].standby = make_index(i);
    }
  }

  // Settle every replay and drop all slots (bulk load is about to replace
  // them wholesale). Returns the settled replays' grace yields.
  std::uint64_t clear() {
    const std::uint64_t yields = settle_all();
    slots_.clear();
    return yields;
  }

  // Resize to k default (empty, replica-less) slots; pair with
  // build_slot_at from a parallel loop. Settles any in-flight replays
  // first and returns their grace yields.
  std::uint64_t resize_slots(std::size_t k) {
    const std::uint64_t yields = clear();
    slots_.resize(k);
    return yields;
  }

  // Build slot i's replica pair from `pts`. Safe concurrently on distinct
  // slots (the bulk-load partition loop).
  void build_slot_at(std::size_t i, const std::vector<point_t>& pts,
                     std::size_t factory_id) {
    slots_[i] = build_slot(pts, factory_id);
  }

  // Insert a freshly built slot at `pos` (split/merge restructuring).
  void insert_slot(std::size_t pos, const std::vector<point_t>& pts,
                   std::size_t factory_id) {
    slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                  build_slot(pts, factory_id));
  }

  // Replace the slot at `pos` with a rebuilt one. The old slot's in-flight
  // replay joins implicitly through move-assignment.
  void replace_slot(std::size_t pos, const std::vector<point_t>& pts,
                    std::size_t factory_id) {
    slots_[pos] = build_slot(pts, factory_id);
  }

  // ---- raw-arena slot operations (RelocatableIndex fast path) ---------
  // A relocatable slot moves as one CRC-framed arena image: the shard
  // handoff source serializes the live replica, the destination adopts the
  // same image into both replicas — no flatten, no re-sort, no per-point
  // rebuild. adopt_arena validates before install, so a corrupt image
  // throws out of here with the slot array unchanged (insert) or the old
  // slot intact (replace constructs the new slot first).

  bool slot_relocatable(std::size_t i) const {
    return index_relocatable(*slots_[i].live);
  }

  // Serialized arena image of slot i's live replica. Caller must be the
  // (externally serialised) writer; concurrent readers are fine.
  std::vector<std::uint8_t> serialize_slot(std::size_t i) const {
    return serialize_index_arena(*slots_[i].live);
  }

  // Both return the adopted shard's cardinality (the install ack size).
  std::size_t insert_slot_raw(std::size_t pos, const std::uint8_t* data,
                              std::size_t n, std::size_t factory_id) {
    ShardSlot s = build_slot_raw(data, n, factory_id);
    const std::size_t size = s.live->size();
    slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(s));
    return size;
  }

  std::size_t replace_slot_raw(std::size_t pos, const std::uint8_t* data,
                               std::size_t n, std::size_t factory_id) {
    ShardSlot s = build_slot_raw(data, n, factory_id);
    const std::size_t size = s.live->size();
    slots_[pos] = std::move(s);
    return size;
  }

  // Raw arena-image copies performed (slot installs + replica clones).
  std::uint64_t raw_copies() const {
    return raw_copies_.load(std::memory_order_relaxed);
  }
  // Committed arena bytes/chunks across all live replicas (0 for
  // non-relocatable backends).
  std::size_t arena_bytes() const {
    std::size_t total = 0;
    for (const auto& s : slots_) total += index_arena_bytes(*s.live);
    return total;
  }
  std::size_t arena_chunks() const {
    std::size_t total = 0;
    for (const auto& s : slots_) total += index_arena_chunks(*s.live);
    return total;
  }

  // Erase the slot at `pos`; its in-flight replay joins in the destructor
  // and in-flight *readers* of the live replica stay safe through their
  // own shared_ptr (the RCU grace discipline — dropping a slot never
  // frees a replica a reader still pins).
  void erase_slot(std::size_t pos) {
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  // -------------------------------------------------------------------
  // Observers
  // -------------------------------------------------------------------

  const std::shared_ptr<Index>& live(std::size_t i) const {
    return slots_[i].live;
  }
  std::size_t size_of(std::size_t i) const { return slots_[i].live->size(); }
  std::vector<point_t> flatten(std::size_t i) const {
    return slots_[i].live->flatten();
  }
  // Factory id slot i's replicas were created with (a shard handoff ships
  // this along so the destination rebuilds the same backend type).
  std::size_t origin_of(std::size_t i) const { return slots_[i].origin; }
  // Split-attempt memo (see GroupCommitter::rebalance).
  std::size_t unsplittable_at(std::size_t i) const {
    return slots_[i].unsplittable_at;
  }
  void set_unsplittable_at(std::size_t i, std::size_t n) {
    slots_[i].unsplittable_at = n;
  }
  std::uint64_t replica_rebuilds() const {
    return replica_rebuilds_.load(std::memory_order_relaxed);
  }

  // Telemetry sink for grace/replay stage timings. Shared (not owned):
  // detached replay tasks copy the shared_ptr so the histograms outlive
  // whichever of store and owner dies first.
  void set_metrics(std::shared_ptr<telemetry::ServiceMetrics> m) {
    metrics_ = std::move(m);
  }

  // Tell the store that published views are *retained* beyond the current
  // epoch (ServiceConfig::retained_epochs > 1). A retained view pins the
  // replica the ping-pong writer wants to recycle, so for recently-touched
  // shards the grace wait can never succeed: shrink it to a few yields
  // (cold shards still quiesce on the first check) and fall straight
  // through to the replica rebuild, and skip the pipelined replays whose
  // grace wait would only park a pool worker. Retention must never block
  // the committer — this is the mechanism.
  void set_retention_pinned(bool pinned) { retention_pinned_ = pinned; }

  // -------------------------------------------------------------------
  // The commit path
  // -------------------------------------------------------------------

  // Replay + apply on slot i's standby replica, then swap it live. Safe
  // concurrently on distinct slots. Returns grace-period yields.
  std::uint64_t apply(std::size_t i, std::vector<run_t> group_runs) {
    ShardSlot& s = slots_[i];
    std::uint64_t yields = settle_replay(s);
    if (!s.standby_caught_up) {
      telemetry::ScopedTimer grace_timer(
          metrics_ ? &metrics_->stage_hist(telemetry::Stage::kGrace)
                   : nullptr);
      const GraceResult grace = await_quiescent(
          s.standby, retention_pinned_ ? kPinnedGraceIters : 4096);
      yields += grace.iters;
      if (!grace.quiesced) {
        // A stale reader (possibly this very thread, holding a snapshot
        // across a flush) pins the replica: abandon it and clone live,
        // which already contains the pending log. A relocatable backend
        // clones as one raw arena copy (serialize + validate + adopt);
        // everything else pays the flatten + rebuild.
        s.standby = make_index(s.origin);
        clone_into(*s.live, *s.standby);
        s.pending.clear();
        ++replica_rebuilds_;
      }
    }
    Index& idx = *s.standby;
    for (const run_t& run : s.pending) apply_run(idx, run);
    for (const run_t& run : group_runs) apply_run(idx, run);
    std::swap(s.live, s.standby);
    s.pending = std::move(group_runs);
    s.standby_caught_up = false;  // the new standby is the just-retired live
    return yields;
  }

  // Pipeline stage 2: spawn the asynchronous standby replays for every
  // slot with a pending log. Call after the new live replicas are
  // published, so the grace period the tasks wait out is the one the
  // publication started. With a sequential pool a spawn would execute
  // inline — all cost, no overlap — so fall back to the classic lazy
  // replay-on-next-commit there.
  void spawn_replays() {
    if (!pipelined_ || num_workers() <= 1 || retention_pinned_) return;
    for (auto& s : slots_) {
      if (s.pending.empty() || s.replay.valid() || s.standby_caught_up) {
        continue;
      }
      s.replay_out = std::make_shared<ReplayOutcome>();
      // The runs MOVE into shared ownership (settle_replay moves them back
      // on failure); the standby handle is copied, so the grace wait
      // allows exactly one extra reference — the task's own.
      s.replay_runs =
          std::make_shared<std::vector<run_t>>(std::move(s.pending));
      s.pending.clear();  // moved-from; make the empty state explicit
      s.replay = AsyncTask([out = s.replay_out, standby = s.standby,
                            runs = s.replay_runs, metrics = metrics_] {
        PSI_TRACE_SPAN("replay");
        telemetry::ScopedTimer timer(
            metrics ? &metrics->stage_hist(telemetry::Stage::kReplay)
                    : nullptr);
        // Smaller grace budget than the inline path (4096): a task that
        // cannot quiesce is parking a pool *worker* in the sleep loop, so
        // give up after ~50ms and let the next write retry inline with
        // the full budget. Uncontended replays exit in a few iterations
        // either way.
        const GraceResult grace =
            await_quiescent(standby, 1024, /*allowed_refs=*/2);
        out->yields = grace.iters;
        if (!grace.quiesced) return;
        for (const run_t& run : *runs) apply_run(*standby, run);
        out->replayed = true;
      });
    }
  }

  // Join every in-flight replay task; returns total yields. Needed when
  // the slot array is restructured wholesale (load); individual slot
  // rebuilds join their own task through AsyncTask move-assign/destruction.
  std::uint64_t settle_all() {
    std::uint64_t yields = 0;
    for (auto& s : slots_) yields += settle_replay(s);
    return yields;
  }

 private:
  // Grace budget under view retention: pure yields, no sleeps (see
  // await_quiescent — iterations < 64 only yield), so a pinned standby
  // costs microseconds before the rebuild, not the 4096-iteration
  // sleep-wait of the default budget.
  static constexpr std::uint64_t kPinnedGraceIters = 48;

  // What a detached replay task reports back (shared with the slot so the
  // task stays self-contained if the slot moves in the meantime).
  struct ReplayOutcome {
    bool replayed = false;
    std::uint64_t yields = 0;
  };

  struct ShardSlot {
    std::shared_ptr<Index> live;     // state as of the last publication
    std::shared_ptr<Index> standby;  // lags live by exactly the pending log
    std::vector<run_t> pending;      // runs applied to live but not standby
    // Factory id this slot's replicas were created with; replica rebuilds
    // reuse it so live and standby stay the same backend type even after
    // later splits/merges shifted the slot's position.
    std::size_t origin = 0;
    // Size at which the last split attempt failed (one giant equal-code
    // run). Skips re-paying flatten+sort every commit until the shard's
    // population actually changes.
    std::size_t unsplittable_at = 0;
    // Pipeline stage 2: the in-flight asynchronous replay of the pending
    // runs onto the standby, spawned right after publication. While a task
    // is in flight the runs live in `replay_runs` (shared with the closure
    // — moved there, not copied, and moved back into `pending` if the
    // replay fails); the task never holds a pointer into this slot, so a
    // slot is free to move while its task runs. `standby_caught_up`
    // records a successful replay: the standby equals live and is
    // quiescent.
    AsyncTask replay;
    std::shared_ptr<std::vector<run_t>> replay_runs;
    std::shared_ptr<ReplayOutcome> replay_out;
    bool standby_caught_up = false;
  };

  std::shared_ptr<Index> make_index(std::size_t factory_id) const {
    return std::make_shared<Index>(factory_(factory_id));
  }

  ShardSlot build_slot(const std::vector<point_t>& pts,
                       std::size_t factory_id) const {
    ShardSlot s;
    s.origin = factory_id;
    s.live = make_index(factory_id);
    s.live->build(pts);
    s.standby = make_index(factory_id);
    // The standby is a clone of live: a relocatable backend copies the
    // just-built arena instead of paying the full sort + build a second
    // time (every split/merge/load builds a slot, so this halves the
    // rebuild work on those paths).
    clone_into(*s.live, *s.standby);
    return s;
  }

  // Both replicas adopt the same validated image (handoff destination).
  ShardSlot build_slot_raw(const std::uint8_t* data, std::size_t n,
                           std::size_t factory_id) const {
    ShardSlot s;
    s.origin = factory_id;
    s.live = make_index(factory_id);
    adopt_index_arena(*s.live, data, n);
    s.standby = make_index(factory_id);
    adopt_index_arena(*s.standby, data, n);
    raw_copies_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }

  // Make dst contentwise equal to src: raw arena copy when relocatable,
  // flatten + build otherwise. The flatten vector is reserved from the
  // known size inside flatten() and consumed in place — no extra copy.
  void clone_into(const Index& src, Index& dst) const {
    if (index_relocatable(src)) {
      const std::vector<std::uint8_t> image = serialize_index_arena(src);
      adopt_index_arena(dst, image.data(), image.size());
      raw_copies_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    dst.build(src.flatten());
  }

  // Join the slot's in-flight replay task (if any) and fold its outcome
  // into the slot: on success the pending log is already on the standby
  // and the grace period has passed; on failure the runs move back into
  // `pending` for the inline slow path. Returns the task's yields.
  std::uint64_t settle_replay(ShardSlot& s) {
    if (!s.replay.valid()) return 0;
    // Fold the outcome into the slot before rethrowing a task exception:
    // the pending log must survive a failed replay (same post-exception
    // state as the inline writer — live intact, pending intact, standby
    // possibly part-applied) instead of being silently dropped.
    std::exception_ptr err;
    try {
      s.replay.join();
    } catch (...) {
      err = std::current_exception();
    }
    std::uint64_t yields = 0;
    if (s.replay_out) {
      yields = s.replay_out->yields;
      if (!err && s.replay_out->replayed) {
        s.standby_caught_up = true;
      } else if (s.replay_runs) {
        s.pending = std::move(*s.replay_runs);
      }
      s.replay_out.reset();
    }
    s.replay_runs.reset();
    if (err) std::rethrow_exception(err);
    return yields;
  }

  static void apply_run(Index& idx, const run_t& run) {
    if (run.pts.empty()) return;
    if (run.is_delete) {
      idx.batch_delete(run.pts);
    } else {
      idx.batch_insert(run.pts);
    }
  }

  factory_t factory_;
  bool pipelined_ = true;
  bool retention_pinned_ = false;
  std::shared_ptr<telemetry::ServiceMetrics> metrics_;
  std::vector<ShardSlot> slots_;
  // Incremented from the parallel per-shard apply, hence atomic.
  std::atomic<std::uint64_t> replica_rebuilds_{0};
  // Raw arena-image copies (mutable: build_slot/clone_into are const-path
  // helpers; incremented from parallel slot builds, hence atomic).
  mutable std::atomic<std::uint64_t> raw_copies_{0};
};

}  // namespace psi::service
