// PSI-Lib service layer: a small epoch-keyed query cache.
//
// Memoizes the last few range results against the epoch that produced
// them. Entries are only ever returned for the *current* epoch, so a
// commit invalidates the whole cache implicitly — no invalidation walk,
// no stale reads: the epoch is the version tag. Hot dashboards and
// polling readers that re-issue the same box between commits hit; any
// write traffic naturally bounds staleness to zero.
//
// Structure: a fixed-size ring of entries under one mutex (lookups copy a
// shared_ptr, so the critical sections are a few words), replaced
// round-robin. List results are shared_ptr<const vector> — concurrent
// hitters share one materialised result instead of copying it. Counts are
// cached alongside, either from a dedicated count query or derived from a
// cached list.
//
// This is deliberately the miniature of ROADMAP's "service-level caching"
// item: (epoch, range)-keyed, bounded, observable (hit/miss counters
// surface in ServiceStats::json()).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::service {

template <typename Coord, int D>
class QueryCache {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using list_t = std::shared_ptr<const std::vector<point_t>>;

  explicit QueryCache(std::size_t capacity = 16)
      : entries_(capacity == 0 ? 1 : capacity) {}

  // Cached range_list result for (epoch, box), or nullptr on miss.
  list_t find_list(std::uint64_t epoch, const box_t& box) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_) {
      if (e.valid && e.epoch == epoch && e.box == box && e.pts) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return e.pts;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Cached range_count for (epoch, box) — served from either a cached
  // count or a cached list.
  std::optional<std::size_t> find_count(std::uint64_t epoch,
                                        const box_t& box) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_) {
      if (e.valid && e.epoch == epoch && e.box == box) {
        if (e.has_count) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return e.count;
        }
        if (e.pts) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return e.pts->size();
        }
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  void put_list(std::uint64_t epoch, const box_t& box, list_t pts) {
    std::lock_guard<std::mutex> g(mu_);
    Entry& e = slot_for(epoch, box);
    e.pts = std::move(pts);
    e.count = e.pts->size();
    e.has_count = true;
  }

  void put_count(std::uint64_t epoch, const box_t& box, std::size_t count) {
    std::lock_guard<std::mutex> g(mu_);
    Entry& e = slot_for(epoch, box);
    e.count = count;
    e.has_count = true;
  }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t epoch = 0;
    box_t box = box_t::empty();
    list_t pts;
    std::size_t count = 0;
    bool has_count = false;
  };

  // Reuse the key's existing entry, else claim the next ring slot. Caller
  // holds mu_.
  Entry& slot_for(std::uint64_t epoch, const box_t& box) {
    for (auto& e : entries_) {
      if (e.valid && e.epoch == epoch && e.box == box) return e;
    }
    Entry& e = entries_[next_++ % entries_.size()];
    e = Entry{};
    e.valid = true;
    e.epoch = epoch;
    e.box = box;
    return e;
  }

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::size_t next_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace psi::service
