// PSI-Lib service layer: the version-keyed query cache.
//
// Memoizes range, ball, and kNN results against the *contents* they were
// computed from, not just the epoch. Every published view carries a
// per-shard version vector (bumped only for shards a commit actually
// touched) plus a map stamp (bumped on split/merge/load — see
// group_commit.h); a cached entry records the versions of exactly the
// shards its query was routed to. A lookup hits when the current view
// shows the same map stamp and the same versions over that run — so a
// commit only invalidates the entries whose covering shards changed, and
// results survive any number of epochs of write traffic to *other* shards
// (bp-forest's per-subtree versioning, applied to shard runs). Hits across
// an epoch boundary are counted separately (cross_epoch_hits).
//
// Admission is size-aware: list results above `max_entry_bytes` are not
// cached (the caller still gets its answer; oversize_skips counts them),
// so one megabyte scan cannot evict a ring of hot dashboard queries, and
// `bytes()` reports the lists currently held for observability.
//
// Structure: a fixed-size ring of entries under one mutex (lookups copy a
// shared_ptr, so the critical sections are a few words), replaced
// round-robin. List results are shared_ptr<const vector> — concurrent
// hitters share one materialised result instead of copying it. Counts are
// cached alongside, either from a dedicated count query or derived from a
// cached list. All counters surface in ServiceStats::json().

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"

namespace psi::service {

// What a cached result depends on: the shard-map generation and the
// content versions of exactly the shards the query was routed to. Two
// lookups with the same coverage observed identical routing and identical
// shard contents, so the memoized answer is exact even across epochs.
struct CacheCoverage {
  std::uint64_t epoch = 0;      // epoch at fill time (cross-epoch accounting)
  std::uint64_t map_stamp = 0;  // shard topology generation
  std::size_t lo = 0, hi = 0;   // inclusive routed shard run
  std::vector<std::uint64_t> versions;  // versions of shards [lo, hi]

  bool same_contents(const CacheCoverage& o) const {
    return map_stamp == o.map_stamp && lo == o.lo && hi == o.hi &&
           versions == o.versions;
  }
};

// Coverage of the routed shard run [run.first, run.second] under a view
// with the given stamp and version vector. A degenerate query (empty or
// inverted box, so the codec's corner clamp inverts the run) covers no
// shards: its result is empty whatever the contents, so the version slice
// stays empty and the entry is valid under any epoch with the same
// topology. Shared by the in-process cached read path (service.h) and the
// distributed client (net/distributed_service.h).
inline CacheCoverage make_coverage(std::uint64_t epoch,
                                   std::uint64_t map_stamp,
                                   std::pair<std::size_t, std::size_t> run,
                                   const std::vector<std::uint64_t>& versions) {
  CacheCoverage cov;
  cov.epoch = epoch;
  cov.map_stamp = map_stamp;
  cov.lo = run.first;
  cov.hi = run.second;
  if (run.first <= run.second) {
    cov.versions.assign(
        versions.begin() + static_cast<std::ptrdiff_t>(run.first),
        versions.begin() + static_cast<std::ptrdiff_t>(run.second) + 1);
  }
  return cov;
}

// One memo key: a range box, a ball, or a kNN query.
template <typename Coord, int D>
struct QueryKey {
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  enum class Kind : std::uint8_t { kRange, kBall, kKnn };

  Kind kind = Kind::kRange;
  box_t box = box_t::empty();  // kRange
  point_t pt{};                // kBall / kKnn centre
  double radius = 0;           // kBall
  std::size_t k = 0;           // kKnn

  static QueryKey range(const box_t& b) {
    QueryKey key;
    key.kind = Kind::kRange;
    key.box = b;
    return key;
  }
  static QueryKey ball(const point_t& q, double radius) {
    QueryKey key;
    key.kind = Kind::kBall;
    key.pt = q;
    key.radius = radius;
    return key;
  }
  static QueryKey knn(const point_t& q, std::size_t k) {
    QueryKey key;
    key.kind = Kind::kKnn;
    key.pt = q;
    key.k = k;
    return key;
  }

  friend bool operator==(const QueryKey& a, const QueryKey& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case Kind::kRange:
        return a.box == b.box;
      case Kind::kBall:
        return a.pt == b.pt && a.radius == b.radius;
      case Kind::kKnn:
        return a.pt == b.pt && a.k == b.k;
    }
    return false;
  }
};

template <typename Coord, int D>
class QueryCache {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using key_t = QueryKey<Coord, D>;
  using list_t = std::shared_ptr<const std::vector<point_t>>;

  explicit QueryCache(std::size_t capacity = 16,
                      std::size_t max_entry_bytes = std::size_t{1} << 20)
      : entries_(capacity == 0 ? 1 : capacity),
        max_entry_bytes_(max_entry_bytes) {}

  // Cached list result for the key, valid under `cov`, or nullptr on miss.
  list_t find_list(const key_t& key, const CacheCoverage& cov) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_) {
      if (e.valid && e.key == key && e.cov.same_contents(cov) && e.pts) {
        count_hit(e.cov, cov);
        return e.pts;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Cached count for the key — served from either a cached count or a
  // cached list.
  std::optional<std::size_t> find_count(const key_t& key,
                                        const CacheCoverage& cov) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& e : entries_) {
      if (e.valid && e.key == key && e.cov.same_contents(cov)) {
        if (e.has_count) {
          count_hit(e.cov, cov);
          return e.count;
        }
        if (e.pts) {
          count_hit(e.cov, cov);
          return e.pts->size();
        }
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  void put_list(const key_t& key, const CacheCoverage& cov, list_t pts) {
    const std::size_t entry_bytes =
        pts ? pts->size() * sizeof(point_t) : 0;
    if (entry_bytes > max_entry_bytes_) {
      oversize_skips_.fetch_add(1, std::memory_order_relaxed);
      return;  // too big to admit; the caller keeps its result
    }
    std::lock_guard<std::mutex> g(mu_);
    Entry& e = slot_for(key, cov);
    set_bytes(e, entry_bytes);
    e.pts = std::move(pts);
    e.count = e.pts->size();
    e.has_count = true;
  }

  void put_count(const key_t& key, const CacheCoverage& cov,
                 std::size_t count) {
    std::lock_guard<std::mutex> g(mu_);
    Entry& e = slot_for(key, cov);
    e.count = count;
    e.has_count = true;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Hits served across an epoch boundary: the payoff of version keying —
  // commits happened, but none touched the entry's covering shards.
  std::uint64_t cross_epoch_hits() const {
    return cross_epoch_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t oversize_skips() const {
    return oversize_skips_.load(std::memory_order_relaxed);
  }
  // Bytes currently held by cached list results.
  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    bool valid = false;
    key_t key;
    CacheCoverage cov;
    list_t pts;
    std::size_t count = 0;
    bool has_count = false;
    std::size_t bytes = 0;
  };

  void count_hit(const CacheCoverage& entry_cov,
                 const CacheCoverage& now) const {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (entry_cov.epoch != now.epoch) {
      cross_epoch_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Reuse the key's existing entry (resetting it when its coverage went
  // stale), else claim the next ring slot. Caller holds mu_.
  Entry& slot_for(const key_t& key, const CacheCoverage& cov) {
    Entry* e = nullptr;
    for (auto& cand : entries_) {
      if (cand.valid && cand.key == key) {
        e = &cand;
        break;
      }
    }
    if (e == nullptr) e = &entries_[next_++ % entries_.size()];
    if (!e->valid || !(e->key == key) || !e->cov.same_contents(cov)) {
      set_bytes(*e, 0);
      *e = Entry{};
    }
    e->valid = true;
    e->key = key;
    e->cov = cov;
    return *e;
  }

  // Keep the bytes ledger in step with an entry's payload. Caller holds
  // mu_; the ledger itself is atomic only so bytes() reads lock-free.
  void set_bytes(Entry& e, std::size_t b) {
    bytes_.fetch_add(b, std::memory_order_relaxed);
    bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
    e.bytes = b;
  }

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::size_t max_entry_bytes_;
  std::size_t next_ = 0;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> cross_epoch_hits_{0};
  mutable std::atomic<std::uint64_t> oversize_skips_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace psi::service
